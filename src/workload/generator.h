// Synthetic workload generation for the benchmarks and stress tests.
//
// Two layers:
//
//   1. Database populations — builds a full T_Chimera database over the
//      project-management schema (persons/employees/managers, projects
//      referencing them), drives the clock forward, applies random
//      temporal updates and migrations. Used by the consistency, equality,
//      Table 3 and storage benchmarks.
//
//   2. Operation streams — store-agnostic create/update/read/snapshot/
//      history operations over plain attribute bags, applied identically
//      to every TemporalStore baseline. Used by the Table 2 timestamping
//      benchmarks.
#ifndef TCHIMERA_WORKLOAD_GENERATOR_H_
#define TCHIMERA_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "baselines/temporal_store.h"
#include "common/result.h"
#include "core/db/database.h"
#include "workload/random.h"

namespace tchimera {

// --- layer 1: database populations ------------------------------------------

struct PopulationConfig {
  uint64_t seed = 42;
  size_t persons = 50;          // created as employees under person
  size_t projects = 10;
  size_t tasks_per_project = 3;
  // Clock steps simulated after creation; each step applies
  // updates_per_step random temporal updates.
  size_t timesteps = 20;
  size_t updates_per_step = 10;
  // Probability per step that a random employee is promoted to manager or
  // a manager demoted (the Section 5.2 migration scenario).
  double migration_rate = 0.05;
};

struct Population {
  std::vector<Oid> persons;   // employees and managers
  std::vector<Oid> projects;
  std::vector<Oid> tasks;
  size_t updates_applied = 0;
  size_t migrations_applied = 0;
};

// Installs the project schema (if absent) and populates `db` per config.
// The database clock ends at its start + timesteps.
Result<Population> PopulateDatabase(Database* db,
                                    const PopulationConfig& config);

// --- layer 2: store-agnostic operation streams -------------------------------

struct StoreWorkloadConfig {
  uint64_t seed = 42;
  size_t objects = 100;
  size_t attributes = 8;         // attributes per object: a0..a{n-1}
  size_t updates_per_object = 50;
  // Fraction of the attributes that are declared non-temporal for stores
  // supporting the distinction (experiment T2b).
  double static_attr_fraction = 0.0;
  // Updates are skewed: this fraction of updates touches attribute a0
  // (hot attribute), the rest are uniform.
  double hot_fraction = 0.5;
};

struct StoreOp {
  enum class Kind { kCreate, kUpdate };
  Kind kind = Kind::kUpdate;
  size_t object_index = 0;       // index into the per-run id table
  std::string attr;
  Value value;
  TimePoint t = 0;
};

// A deterministic operation stream; kCreate ops come first (one per
// object), then interleaved updates with strictly increasing timestamps.
std::vector<StoreOp> GenerateStoreOps(const StoreWorkloadConfig& config);

// Applies the stream to a store; returns the ids assigned (indexed by
// object_index) and the final timestamp.
struct StoreRunResult {
  std::vector<uint64_t> ids;
  TimePoint end_time = 0;
};
Result<StoreRunResult> ApplyStoreOps(TemporalStore* store,
                                     const std::vector<StoreOp>& ops);

// The attribute names a0..a{n-1} used by the stream, and the subset
// declared static under `config`.
std::vector<std::string> StoreAttributeNames(size_t attributes);
std::set<std::string> StoreStaticAttributeNames(
    const StoreWorkloadConfig& config);

}  // namespace tchimera

#endif  // TCHIMERA_WORKLOAD_GENERATOR_H_
