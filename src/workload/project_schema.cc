#include "workload/project_schema.h"

#include "core/types/type_registry.h"

namespace tchimera {

Status InstallProjectSchema(Database* db) {
  const Type* t_string = types::String();
  const Type* t_int = types::Integer();
  TCH_ASSIGN_OR_RETURN(const Type* temporal_string,
                       types::Temporal(t_string));
  TCH_ASSIGN_OR_RETURN(const Type* temporal_int, types::Temporal(t_int));

  ClassSpec person;
  person.name = "person";
  person.attributes = {{"name", temporal_string}, {"birthyear", t_int}};
  TCH_RETURN_IF_ERROR(db->DefineClass(person));

  ClassSpec employee;
  employee.name = "employee";
  employee.superclasses = {"person"};
  employee.attributes = {{"salary", temporal_int}, {"office", t_string}};
  TCH_RETURN_IF_ERROR(db->DefineClass(employee));

  ClassSpec manager;
  manager.name = "manager";
  manager.superclasses = {"employee"};
  manager.attributes = {{"dependents", temporal_int},
                        {"officialcar", t_string}};
  TCH_RETURN_IF_ERROR(db->DefineClass(manager));

  ClassSpec task;
  task.name = "task";
  task.attributes = {{"description", t_string}, {"effort", temporal_int}};
  TCH_RETURN_IF_ERROR(db->DefineClass(task));

  TCH_ASSIGN_OR_RETURN(const Type* temporal_project,
                       types::Temporal(types::Object("project")));
  TCH_ASSIGN_OR_RETURN(
      const Type* temporal_person_set,
      types::Temporal(types::SetOf(types::Object("person"))));

  ClassSpec project;
  project.name = "project";
  project.attributes = {
      {"name", temporal_string},
      {"objective", t_string},
      {"workplan", types::SetOf(types::Object("task"))},
      {"subproject", temporal_project},
      {"participants", temporal_person_set},
  };
  project.methods = {
      {"add-participant", {types::Object("person")},
       types::Object("project")}};
  project.c_attributes = {{"average-participants", t_int}};
  TCH_RETURN_IF_ERROR(db->DefineClass(project));

  return Status::OK();
}

}  // namespace tchimera
