// Deterministic random helpers for workload generation. Every generator
// takes an explicit seed, so all tests and benchmark sweeps are exactly
// reproducible.
#ifndef TCHIMERA_WORKLOAD_RANDOM_H_
#define TCHIMERA_WORKLOAD_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace tchimera {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);
  // Uniform real in [0, 1).
  double Real01();
  // True with probability p.
  bool Chance(double p);
  // Uniformly picks an element index of a container of size n (n > 0).
  size_t Index(size_t n);
  // A random lowercase identifier-ish string of the given length.
  std::string Name(size_t length);

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tchimera

#endif  // TCHIMERA_WORKLOAD_RANDOM_H_
