#include "workload/generator.h"

#include <algorithm>
#include <set>

#include "workload/project_schema.h"

namespace tchimera {

Result<Population> PopulateDatabase(Database* db,
                                    const PopulationConfig& config) {
  if (db->GetClass("project") == nullptr) {
    TCH_RETURN_IF_ERROR(InstallProjectSchema(db));
  }
  Rng rng(config.seed);
  Population pop;

  // People: employees with a temporal name and salary.
  for (size_t i = 0; i < config.persons; ++i) {
    TCH_ASSIGN_OR_RETURN(
        Oid oid,
        db->CreateObject(
            "employee",
            {{"name", Value::String(rng.Name(8))},
             {"birthyear",
              Value::Integer(rng.Uniform(1950, 2000))},
             {"salary", Value::Integer(rng.Uniform(20000, 80000))},
             {"office", Value::String(rng.Name(4))}}));
    pop.persons.push_back(oid);
  }
  // Projects with tasks and participants.
  for (size_t p = 0; p < config.projects; ++p) {
    std::vector<Value> plan;
    for (size_t k = 0; k < config.tasks_per_project; ++k) {
      TCH_ASSIGN_OR_RETURN(
          Oid task,
          db->CreateObject("task",
                           {{"description", Value::String(rng.Name(12))},
                            {"effort",
                             Value::Integer(rng.Uniform(1, 100))}}));
      pop.tasks.push_back(task);
      plan.push_back(Value::OfOid(task));
    }
    std::vector<Value> participants;
    size_t count = 1 + rng.Index(std::max<size_t>(1, config.persons / 4));
    for (size_t k = 0; k < count && k < pop.persons.size(); ++k) {
      participants.push_back(Value::OfOid(rng.Pick(pop.persons)));
    }
    TCH_ASSIGN_OR_RETURN(
        Oid proj,
        db->CreateObject(
            "project",
            {{"name", Value::String(rng.Name(6))},
             {"objective", Value::String(rng.Name(16))},
             {"workplan", Value::Set(std::move(plan))},
             {"participants", Value::Set(std::move(participants))}}));
    pop.projects.push_back(proj);
  }

  // Time marches; histories accumulate.
  std::set<uint64_t> managers;
  for (size_t step = 0; step < config.timesteps; ++step) {
    db->Tick();
    for (size_t u = 0; u < config.updates_per_step; ++u) {
      // Re-draw when the chosen pool is empty (degenerate configs).
      size_t kind = rng.Index(4);
      if ((kind == 0 && pop.persons.empty()) ||
          (kind == 1 && pop.projects.empty()) ||
          (kind == 2 && pop.tasks.empty()) ||
          (kind == 3 && pop.projects.empty())) {
        if (!pop.tasks.empty()) {
          kind = 2;
        } else if (!pop.projects.empty()) {
          kind = 1;
        } else if (!pop.persons.empty()) {
          kind = 0;
        } else {
          continue;  // nothing to update at all
        }
      }
      switch (kind) {
        case 0: {  // salary raise
          Oid oid = rng.Pick(pop.persons);
          TCH_RETURN_IF_ERROR(db->UpdateAttribute(
              oid, "salary", Value::Integer(rng.Uniform(20000, 120000))));
          break;
        }
        case 1: {  // rename a project
          Oid oid = rng.Pick(pop.projects);
          TCH_RETURN_IF_ERROR(
              db->UpdateAttribute(oid, "name",
                                  Value::String(rng.Name(6))));
          break;
        }
        case 2: {  // task effort re-estimate
          Oid oid = rng.Pick(pop.tasks);
          TCH_RETURN_IF_ERROR(db->UpdateAttribute(
              oid, "effort", Value::Integer(rng.Uniform(1, 100))));
          break;
        }
        default: {  // participants churn
          Oid proj = rng.Pick(pop.projects);
          std::vector<Value> participants;
          size_t count =
              1 + rng.Index(std::max<size_t>(1, config.persons / 4));
          for (size_t k = 0; k < count && k < pop.persons.size(); ++k) {
            participants.push_back(Value::OfOid(rng.Pick(pop.persons)));
          }
          TCH_RETURN_IF_ERROR(db->UpdateAttribute(
              proj, "participants", Value::Set(std::move(participants))));
          break;
        }
      }
      ++pop.updates_applied;
    }
    // Occasional promotion / demotion (Section 5.2).
    if (rng.Chance(config.migration_rate) && !pop.persons.empty()) {
      Oid oid = rng.Pick(pop.persons);
      if (managers.count(oid.id) == 0) {
        TCH_RETURN_IF_ERROR(db->Migrate(
            oid, "manager",
            {{"dependents", Value::Integer(rng.Uniform(0, 5))},
             {"officialcar", Value::String(rng.Name(5))}}));
        managers.insert(oid.id);
      } else {
        TCH_RETURN_IF_ERROR(db->Migrate(oid, "employee"));
        managers.erase(oid.id);
      }
      ++pop.migrations_applied;
    }
  }
  return pop;
}

std::vector<std::string> StoreAttributeNames(size_t attributes) {
  std::vector<std::string> out;
  out.reserve(attributes);
  for (size_t i = 0; i < attributes; ++i) {
    out.push_back("a" + std::to_string(i));
  }
  return out;
}

std::set<std::string> StoreStaticAttributeNames(
    const StoreWorkloadConfig& config) {
  std::set<std::string> out;
  size_t statics = static_cast<size_t>(config.attributes *
                                       config.static_attr_fraction);
  // The static attributes are the trailing ones, so the hot attribute a0
  // stays temporal.
  for (size_t i = config.attributes - statics; i < config.attributes; ++i) {
    out.insert("a" + std::to_string(i));
  }
  return out;
}

std::vector<StoreOp> GenerateStoreOps(const StoreWorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<std::string> attrs = StoreAttributeNames(config.attributes);
  std::vector<StoreOp> ops;
  ops.reserve(config.objects * (1 + config.updates_per_object));
  TimePoint t = 1;
  for (size_t i = 0; i < config.objects; ++i) {
    StoreOp op;
    op.kind = StoreOp::Kind::kCreate;
    op.object_index = i;
    op.t = t;
    ops.push_back(std::move(op));
  }
  ++t;
  size_t total_updates = config.objects * config.updates_per_object;
  for (size_t u = 0; u < total_updates; ++u) {
    StoreOp op;
    op.kind = StoreOp::Kind::kUpdate;
    op.object_index = rng.Index(config.objects);
    op.attr = rng.Chance(config.hot_fraction) ? attrs[0]
                                              : rng.Pick(attrs);
    op.value = Value::Integer(rng.Uniform(0, 1'000'000));
    op.t = t;
    // Advance time every few updates so runs have realistic lengths.
    if (u % 4 == 3) ++t;
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<StoreRunResult> ApplyStoreOps(TemporalStore* store,
                                     const std::vector<StoreOp>& ops) {
  StoreRunResult run;
  for (const StoreOp& op : ops) {
    if (op.kind == StoreOp::Kind::kCreate) {
      // Initialize every attribute to 0 so all stores start comparable.
      TemporalStore::FieldInits init;
      uint64_t id = store->CreateObject(init, op.t);
      if (run.ids.size() <= op.object_index) {
        run.ids.resize(op.object_index + 1);
      }
      run.ids[op.object_index] = id;
    } else {
      TCH_RETURN_IF_ERROR(store->UpdateAttribute(
          run.ids[op.object_index], op.attr, op.value, op.t));
    }
    run.end_time = op.t;
  }
  return run;
}

}  // namespace tchimera
