#include "workload/random.h"

namespace tchimera {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Real01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::Chance(double p) { return Real01() < p; }

size_t Rng::Index(size_t n) {
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
}

std::string Rng::Name(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace tchimera
