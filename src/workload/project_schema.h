// The project-management schema the paper's running examples use
// (Examples 4.1, 5.1, and the employee/manager migration of Section 5.2),
// installed into a Database:
//
//   person    (root)      name:temporal(string), birthyear:integer
//   employee  < person    salary:temporal(integer), office:string
//   manager   < employee  dependents:temporal(integer),
//                         officialcar:string
//   task      (root)      description:string, effort:temporal(integer)
//   project   (root)      name:temporal(string), objective:string,
//                         workplan:set-of(task),
//                         subproject:temporal(project),
//                         participants:temporal(set-of(person)),
//                         c-attribute average-participants:integer,
//                         method add-participant(person):project
//
// This is the shared fixture of the workload generators, the examples and
// several benchmarks.
#ifndef TCHIMERA_WORKLOAD_PROJECT_SCHEMA_H_
#define TCHIMERA_WORKLOAD_PROJECT_SCHEMA_H_

#include "common/status.h"
#include "core/db/database.h"

namespace tchimera {

// Defines the five classes above at the database's current time.
Status InstallProjectSchema(Database* db);

}  // namespace tchimera

#endif  // TCHIMERA_WORKLOAD_PROJECT_SCHEMA_H_
