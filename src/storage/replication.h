// Journal-shipping replication: read replicas fed from the v2 journal.
//
// The v2 journal (per-record seq+len+CRC32 framing, per-file epoch
// headers — storage/journal.h) already totally orders every committed
// statement, so it doubles as a physical replication log. This module
// ships it:
//
//   ReplicationSource — the primary side. Tail-follows the journal
//       directory (live file + rotated epochs) and serves framed records
//       from a follower-supplied cursor, capped at the durable horizon
//       (HorizonProvider, implemented by GroupCommitJournal): records
//       that are appended but not yet fdatasync'd are never shipped,
//       because a crash could drop them and leave a follower ahead of
//       the recovered primary. A partially-written record at the live
//       tail is an append in flight — the source waits (ScanJournalTail),
//       it never salvages; quarantining bytes is recovery's decision.
//
//   Replica — a follower. Persists every received record into its own
//       local journal (same format, same epochs — the shipped copy IS a
//       recoverable database directory), re-verifies seq/epoch/CRC
//       continuity on its side, replays the statement through a private
//       Engine (triggers and constraints fire deterministically, exactly
//       as REPL recovery replays), and publishes MVCC versions that
//       OpenSnapshot() serves lock-free. Epoch rollovers checkpoint the
//       replica locally, mirroring the primary's protocol, so replica
//       recovery after a crash is ordinary RecoveryManager recovery.
//
//   ReplicationShipper — the pump. Drives one source into N replicas,
//       translates failures into bounded-exponential-backoff retries and
//       checkpoint resyncs, and maintains each replica's lease on the
//       primary Engine so Engine::min_replicated_version() /
//       Session::AllowReplicaRead() implement read-your-writes vs
//       eventual read routing (query/session.h).
//
// Failure handling is the point:
//
//   - a stream gap, epoch-header mismatch, or CRC mismatch surfaces as a
//     retryable Status (kUnavailable) — never a crash, never a silent
//     skip — and triggers resync-from-checkpoint after backoff;
//   - a follower whose epoch was checkpointed away on the primary
//     resyncs from the primary's snapshot (FetchCheckpoint), which by
//     the checkpoint protocol covers every deleted epoch;
//   - promotion fences the old primary: EpochFence hands out authority
//     by token, Replica::Promote raises the barrier above every token
//     the old primary can hold, and a fenced GroupCommitJournal rejects
//     every Enqueue and checkpoint (storage/group_commit.h) — a
//     recovered ex-primary cannot double-serve.
//
// Watermark correctness argument (why the lease update is sound): a
// statement's journal record is always enqueued before its version is
// published (both engine commit paths). So if the shipper samples the
// primary version V, then samples a *drained* horizon H (every accepted
// statement durable), every version <= V has its record at or below H;
// a replica that has applied through H therefore reflects every version
// <= V, and V is a safe replicated watermark for it.
//
// See docs/REPLICATION.md for topology, staleness semantics and the
// promotion protocol.
#ifndef TCHIMERA_STORAGE_REPLICATION_H_
#define TCHIMERA_STORAGE_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/result.h"
#include "query/session.h"
#include "storage/journal.h"
#include "storage/recovery.h"

namespace tchimera {

// ---------------------------------------------------------------------------
// Fencing

// A monotone authority barrier shared by the nodes of one replication
// group (in-process here; a lease service in a distributed deployment).
// Writers hold a fixed authority token — the journal epoch at the moment
// they attached (GroupCommitJournal::AttachFence); the token does NOT
// advance with checkpoint rotations, so an ex-primary cannot outrun the
// barrier by checkpointing. Promotion raises the barrier to the new
// primary's token; Authorize then rejects every older token.
class EpochFence {
 public:
  // Raises the barrier to at least `token` (monotone; never lowers).
  void Fence(uint64_t token) {
    uint64_t cur = barrier_.load(std::memory_order_relaxed);
    while (cur < token &&
           !barrier_.compare_exchange_weak(cur, token,
                                           std::memory_order_acq_rel)) {
    }
  }

  // OK iff `token` is at or above the barrier (the current authority).
  Status Authorize(uint64_t token) const {
    uint64_t barrier = barrier_.load(std::memory_order_acquire);
    if (token >= barrier) return Status::OK();
    return Status::FailedPrecondition(
        "authority token " + std::to_string(token) +
        " is fenced (barrier " + std::to_string(barrier) +
        "): a replica was promoted; this node is no longer the primary");
  }

  uint64_t barrier() const {
    return barrier_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> barrier_{0};
};

// ---------------------------------------------------------------------------
// Backoff

// Bounded exponential backoff with deterministic jitter. Deterministic
// (seeded LCG) so failure-path tests reproduce; jitter de-synchronizes
// a fleet of followers hammering a recovering primary.
class ExponentialBackoff {
 public:
  struct Options {
    std::chrono::microseconds initial{1000};
    std::chrono::microseconds max{1'000'000};
    double multiplier = 2.0;
    double jitter = 0.2;  // +/- fraction of the nominal delay
    uint64_t seed = 0x7ee1;
  };

  ExponentialBackoff() : ExponentialBackoff(Options()) {}
  explicit ExponentialBackoff(const Options& options);

  // `options` with its seed folded together with `name` (FNV-1a), so a
  // fleet of followers configured identically still jitters apart.
  // Feeding every replica the same Options::seed verbatim puts their LCG
  // streams in lockstep: after a primary restart all lagging followers
  // would sleep the same jittered delays and retry at the same instants —
  // a thundering herd the jitter exists to prevent.
  static Options SeededFor(const Options& options, std::string_view name);

  // The next delay: min(initial * multiplier^attempts, max), jittered.
  // Always within [0, max].
  std::chrono::microseconds NextDelay();
  void Reset();
  uint64_t attempts() const { return attempts_; }

 private:
  Options options_;
  uint64_t attempts_ = 0;
  uint64_t rng_state_;
};

// ---------------------------------------------------------------------------
// Wire types

// A follower's position in the stream: the next record it needs.
struct ReplicationCursor {
  uint64_t epoch = 0;
  uint64_t next_seq = 1;
  // Byte offset in the epoch's file where next_seq is expected to start;
  // 0 = unknown (the source rescans from the file head). Purely an
  // optimization: a stale hint falls back to a full scan, never an error.
  uint64_t offset_hint = 0;
};

// One shipped record. The framing fields ride along so the follower can
// re-verify integrity end to end (disk -> source -> follower).
struct ReplicationRecord {
  uint64_t epoch = 0;
  uint64_t seq = 0;
  uint32_t crc = 0;  // CRC32 over "<seq> <statement>", as framed
  std::string statement;
};

struct ReplicationBatch {
  std::vector<ReplicationRecord> records;
  // True when the records (plus everything before the cursor) exhaust
  // the cursor's epoch: the epoch's file is rotated and fully consumed,
  // and the follower should roll to epoch+1.
  bool epoch_complete = false;
  // True when this fetch consumed everything the source may ship right
  // now (the durable horizon): an empty at_horizon batch means "caught
  // up, poll again later".
  bool at_horizon = false;
  // The horizon sampled for this fetch (drained flag included) — the
  // shipper's watermark rule needs it.
  JournalHorizon horizon;
  // Cursor after consuming this batch.
  ReplicationCursor next;
};

// ---------------------------------------------------------------------------
// Source

class ReplicationSource {
 public:
  struct Options {
    FileSystem* fs = nullptr;  // nullptr = FileSystem::Default()
    // Durable-frontier oracle. Required when the journal is open for
    // writing (the live GroupCommitJournal); nullptr = offline mode,
    // where everything on disk is shipped (closed journals, copies).
    const HorizonProvider* horizon = nullptr;
    // The primary's snapshot, served to followers that must resync.
    std::string snapshot_path;
  };

  explicit ReplicationSource(std::string journal_path)
      : ReplicationSource(std::move(journal_path), Options()) {}
  ReplicationSource(std::string journal_path, Options options);

  // Serves the next records after `cursor`, capped at `max_records` and
  // at the durable horizon. Statuses a follower must handle:
  //   kUnavailable — the cursor's epoch was checkpointed away, the
  //       stream has a gap, or the epoch header mismatches: back off and
  //       resync from checkpoint (retryable; nothing is wrong with the
  //       primary);
  //   kFailedPrecondition — the follower claims a position ahead of the
  //       primary's durable horizon: divergence (an un-fenced failover
  //       artifact), not retryable.
  // A partially-written live tail is NOT an error: the batch simply ends
  // before it (at_horizon when nothing else is pending).
  Result<ReplicationBatch> Fetch(const ReplicationCursor& cursor,
                                 size_t max_records = 256);

  // The primary's checkpoint image for follower resync. Integrity is
  // verified before shipping (a corrupt snapshot is refused with
  // kUnavailable — the next checkpoint will replace it).
  struct CheckpointImage {
    std::string bytes;
    uint64_t epoch = 0;
  };
  Result<CheckpointImage> FetchCheckpoint() const;

  const std::string& journal_path() const { return journal_path_; }

 private:
  FileSystem* fs() const;
  // The epoch of the live journal right now (from the horizon provider,
  // or the file header in offline mode).
  Result<JournalHorizon> SampleHorizon() const;

  std::string journal_path_;
  Options options_;
};

// ---------------------------------------------------------------------------
// Replica

struct ReplicaOptions {
  FileSystem* fs = nullptr;  // nullptr = FileSystem::Default()
  // Post-recovery/resync audit mode for the replica's own state.
  AuditMode audit = AuditMode::kOff;
  size_t max_cascade_depth = 16;
};

// A follower: a locally-durable shipped journal copy plus a replaying
// Engine serving snapshot-isolated reads. Apply() is single-threaded
// (one shipping pump); reads (OpenSnapshot / read-only Sessions) are
// safe from any thread concurrently with Apply, courtesy of MVCC.
class Replica {
 public:
  // Opens (or re-opens after a crash) the replica at `dir`, recovering
  // whatever the local snapshot + journals hold — ordinary
  // RecoveryManager recovery, torn tails salvaged, definitions restored.
  // The resulting cursor resumes the stream exactly where the local
  // durable copy ends.
  static Result<std::unique_ptr<Replica>> Open(std::string dir,
                                               ReplicaOptions options = {});

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Validates and applies one shipped batch: epoch must match the
  // cursor, sequences must be contiguous, CRCs must verify — any
  // violation returns kUnavailable (retryable; the shipper resyncs) and
  // applies nothing further. Each record is journaled locally first,
  // then replayed; the batch is fdatasync'd once at the end, so a crash
  // loses at most the (unacknowledged) tail of this batch. An
  // epoch_complete batch rolls the local journal to the next epoch via a
  // local checkpoint (rotate + snapshot + prune), mirroring the primary.
  Status Apply(const ReplicationBatch& batch);

  // Discards local state and reseeds from a primary checkpoint image:
  // the snapshot is written atomically, local journals are removed, the
  // engine is rebuilt from the image (definitions included), and the
  // cursor restarts at (image.epoch, 1).
  Status InstallCheckpoint(const ReplicationSource::CheckpointImage& image);

  // The stream position the replica needs next.
  const ReplicationCursor& cursor() const { return cursor_; }

  // Snapshot-isolated reads at the replicated watermark. Lock-free.
  ReadSnapshot OpenSnapshot() const { return engine_->OpenSnapshot(); }
  // Read-only sessions over the replica's engine (the replica accepts no
  // writes until promoted; executing writes through this engine is the
  // caller's responsibility to avoid).
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  // Replica-local MVCC version (one bump per applied statement since
  // open/resync). Monotone; purely informational — cross-node watermark
  // comparisons use primary versions via the shipper's leases.
  uint64_t applied_version() const { return engine_->version(); }
  uint64_t statements_applied() const { return statements_applied_; }
  uint64_t checkpoints_installed() const { return checkpoints_installed_; }
  const std::string& dir() const { return dir_; }

  // Promotes this replica: raises `fence` above every authority token
  // the old primary can hold (its tokens never exceed the epochs it
  // shipped, all <= cursor().epoch) and returns the epoch + token the
  // new primary must adopt (open its GroupCommitJournal at
  // `epoch`, AttachFence with `token`). After promotion this Replica
  // object must no longer Apply() — it is the primary now; keep using
  // engine() and the local journal directory.
  struct Promotion {
    uint64_t epoch = 0;  // epoch for the new primary's live journal
    uint64_t token = 0;  // authority token for AttachFence
  };
  Result<Promotion> Promote(EpochFence* fence);

 private:
  Replica(std::string dir, ReplicaOptions options);

  FileSystem* fs() const;
  Status RecoverLocal();
  std::string snapshot_path() const { return dir_ + "/snapshot.tchdb"; }
  std::string journal_path() const { return dir_ + "/journal.tql"; }
  // Removes local journal files (live + rotated); used by resync.
  Status RemoveLocalJournals();

  std::string dir_;
  ReplicaOptions options_;
  std::unique_ptr<Engine> engine_;
  Journal journal_;  // the local shipped copy (the replica's WAL)
  ReplicationCursor cursor_;
  uint64_t statements_applied_ = 0;
  uint64_t checkpoints_installed_ = 0;
  bool promoted_ = false;
};

// ---------------------------------------------------------------------------
// Shipper

// Drives one source into N replicas: fetch, apply, translate failures
// into backoff + resync, maintain the primary-side leases that feed
// Engine::min_replicated_version(). Single-threaded per shipper (run it
// on its own thread to pump continuously); multiple shippers may share a
// source.
class ReplicationShipper {
 public:
  struct Options {
    size_t max_records_per_fetch = 256;
    ExponentialBackoff::Options backoff;
    // Consecutive failures on a replica before resync-from-checkpoint is
    // attempted (transient glitches get a plain retry first).
    size_t resync_after_failures = 1;
    // Injected sleeper for the backoff delays (tests pass a recorder;
    // the default really sleeps).
    std::function<void(std::chrono::microseconds)> sleeper;
  };

  // `primary` may be null (no watermark maintenance — offline shipping).
  ReplicationShipper(ReplicationSource* source, Engine* primary)
      : ReplicationShipper(source, primary, Options()) {}
  ReplicationShipper(ReplicationSource* source, Engine* primary,
                     Options options);

  // Registers a follower. A lease named `name` is taken on the primary
  // engine (when one is attached) and released when the shipper is
  // destroyed or the replica removed.
  void AddReplica(Replica* replica, std::string name);

  // One fetch+apply round per replica. Returns the first hard
  // (non-retryable) failure; retryable conditions are handled internally
  // (backoff, resync) and reported via counters.
  Status PumpOnce();

  // Pumps until every replica sits at a drained horizon (fully caught
  // up) or a hard failure occurs. `max_rounds` bounds runaway loops.
  Status DrainAll(size_t max_rounds = 100000);

  uint64_t resyncs() const { return resyncs_; }
  uint64_t retries() const { return retries_; }

 private:
  struct Follower {
    Replica* replica = nullptr;
    std::string name;
    std::shared_ptr<ReplicaLease> lease;  // null without a primary engine
    ExponentialBackoff backoff;
    size_t consecutive_failures = 0;
    bool caught_up = false;  // last pump ended at a drained horizon
  };

  // Handles a retryable failure on `f`: backoff sleep, then (past the
  // threshold) resync from checkpoint. Returns a hard error only when
  // resync itself fails non-retryably.
  Status HandleRetryable(Follower* f, const Status& cause);

  ReplicationSource* source_;
  Engine* primary_;
  Options options_;
  std::vector<Follower> followers_;
  uint64_t resyncs_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_REPLICATION_H_
