// Crash-consistent recovery and checkpointing over the snapshot+journal
// persistence pair (serializer.h / journal.h).
//
// Epochs tie the two together. Every journal carries an epoch in its
// header; a snapshot written with EPOCH e contains the effects of every
// journal with epoch < e. The checkpoint protocol is:
//
//   1. Rotate the live journal (epoch k) aside to `<journal>.e<k>` and
//      start a fresh live journal with epoch k+1.
//   2. Write the snapshot with EPOCH k+1, atomically (tmp + fsync +
//      rename + dir fsync).
//   3. Only now delete the journal files with epoch < k+1 — they are
//      redundant, the durable snapshot covers them.
//
// A crash at any point leaves a recoverable disk: before step 2 commits,
// the old snapshot plus the rotated and live journals replay to the same
// state; after it, the rotated files are stale and recovery deletes them.
//
// Recovery inverts the protocol:
//
//   1. Load the snapshot (epoch S). A v2 snapshot is checksum-verified
//      before any state is built; corruption fails recovery (the snapshot
//      write is atomic, so a bad snapshot is bit rot, not a crash
//      artifact). A leftover `<snapshot>.tmp` is deleted.
//   2. Delete rotated journals with epoch < S (covered by the snapshot),
//      then replay the remaining rotated journals in epoch order followed
//      by the live journal (iff its epoch >= S). Torn v2 tails are
//      salvaged (quarantined to `<file>.corrupt`), and replay applies the
//      longest valid prefix. Missing epochs in [S, live) fail with
//      Corruption — that is lost data, not a crash artifact.
//   3. Audit the recovered database against the paper's consistency
//      notions (Definitions 5.3-5.6, Invariants 5.1/5.2/6.1/6.2) per
//      AuditMode.
#ifndef TCHIMERA_STORAGE_RECOVERY_H_
#define TCHIMERA_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/result.h"
#include "core/db/database.h"
#include "storage/journal.h"

namespace tchimera {

// What to do with the post-recovery consistency audit.
enum class AuditMode {
  kOff,         // trust the replay
  kFail,        // any inconsistency fails recovery (fail-safe default)
  kQuarantine,  // evict objects that fail their per-object check (plus
                // any left dangling by the eviction) and carry on; fails
                // only if the database cannot be healed that way
};

struct RecoveryOptions {
  AuditMode audit = AuditMode::kFail;
  FileSystem* fs = nullptr;  // nullptr = FileSystem::Default()
};

// What recovery found and did; every field is best-effort filled even
// when recovery fails partway.
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_epoch = 0;
  size_t journals_replayed = 0;     // journal files executed (even if empty)
  size_t statements_applied = 0;
  uint64_t salvaged_bytes = 0;      // corrupt tail bytes quarantined
  size_t stale_files_removed = 0;   // snapshot tmp + pre-snapshot journals
  size_t quarantined_objects = 0;   // kQuarantine only
  // Epoch to open the live journal with after recovery (JournalOptions::
  // epoch); matters only when the live journal file is missing.
  uint64_t next_epoch = 0;
  std::vector<std::string> notes;   // human-readable recovery log
};

class RecoveryManager {
 public:
  // Executes one replayed statement; any failure aborts recovery with
  // Corruption (the journal only ever contains statements that applied
  // cleanly when first executed).
  using StatementExecutor = std::function<Status(const std::string&)>;

  RecoveryManager(std::string snapshot_path, std::string journal_path,
                  RecoveryOptions options = {});

  // Full recovery: snapshot, journal replay through a private
  // interpreter, audit. On failure the disk may already be partially
  // repaired (salvaged tails, deleted stale files) — both are
  // information-preserving — but no half-recovered database escapes.
  Result<std::unique_ptr<Database>> Recover(RecoveryStats* stats = nullptr);

  // Phase API for embedders that replay through their own facade (the
  // REPL uses ActiveDatabase so journaled trigger/constraint definitions
  // are restored too). Call in order: LoadSnapshot, replay
  // snapshot_definitions() through the facade, ReplayJournals with an
  // executor bound to the returned database, then Audit.
  Result<std::unique_ptr<Database>> LoadSnapshot(RecoveryStats* stats);
  Status ReplayJournals(const StatementExecutor& exec, RecoveryStats* stats);
  static Status Audit(Database* db, AuditMode mode, RecoveryStats* stats);

  // The v3 snapshot's DEFINE statements (trigger / constraint
  // declarations), in snapshot order; filled by LoadSnapshot, empty for
  // v1/v2 snapshots. They address the execution facade, so LoadSnapshot
  // cannot apply them itself — phase-API callers replay them through
  // their ActiveDatabase before ReplayJournals; Recover() (which has no
  // facade) notes and skips them.
  const std::vector<std::string>& snapshot_definitions() const {
    return snapshot_definitions_;
  }

  // The checkpoint protocol above. `fs` must be the same filesystem the
  // journal writes through (nullptr = FileSystem::Default()). On failure
  // the disk remains recoverable: rotated journals are deleted only after
  // the new snapshot is durable. `definitions` (typically
  // ActiveDatabase::DefinitionStatements()) are persisted as the
  // snapshot's DEFINE records.
  static Status Checkpoint(const Database& db, Journal* journal,
                           const std::string& snapshot_path,
                           FileSystem* fs = nullptr,
                           const std::vector<std::string>& definitions = {});

 private:
  FileSystem* fs() const;

  std::string snapshot_path_;
  std::string journal_path_;
  RecoveryOptions options_;
  uint64_t snapshot_epoch_ = 0;  // set by LoadSnapshot
  std::vector<std::string> snapshot_definitions_;  // set by LoadSnapshot
};

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_RECOVERY_H_
