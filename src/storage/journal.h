// A durable journal of TQL statements. Every successfully executed
// mutating statement is appended (and synced per policy) before the
// caller is acknowledged; recovery is deterministic replay through the
// interpreter — oids are assigned sequentially, so a replayed journal
// reproduces the exact database state.
//
// On-disk formats:
//
//   v1 (legacy, still replayable): one bare statement per line, no
//   framing. A torn tail is undetectable; replay is fail-fast.
//
//   v2 (written by this version): a header line followed by framed,
//   checksummed records —
//
//     TCHIMERA-JOURNAL 2 <epoch>
//     R <seq> <len> <crc32> <statement>
//
//   <seq> is 1-based and contiguous, <len> the statement's byte length,
//   <crc32> eight hex digits over "<seq> <statement>". Any torn or
//   bit-flipped record invalidates exactly the tail from that record on;
//   ScanJournal finds the longest valid prefix and SalvageJournal
//   quarantines the rest to `<journal>.corrupt`.
//
//   <epoch> orders a journal against snapshots: a snapshot written with
//   epoch E contains the effects of every journal with epoch < E, so
//   recovery replays only journals with epoch >= E (see recovery.h for
//   the full checkpoint protocol).
//
// Durability is governed by SyncPolicy: kEveryAppend issues a real
// fdatasync per record (Append returning OK means the record survives a
// crash), kBatched amortizes the sync over n records, kNone leaves
// flushing to the OS.
#ifndef TCHIMERA_STORAGE_JOURNAL_H_
#define TCHIMERA_STORAGE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_fs.h"
#include "common/result.h"
#include "query/interpreter.h"

namespace tchimera {

// True when the statement's first whitespace-delimited token is exactly
// one of the mutating TQL verbs (define, drop, create, update, migrate,
// delete, tick, advance) — the statements a write-ahead journal must
// capture. Matching is token-exact: `deletion_report ...` or `ticket ...`
// are not mutations.
bool IsMutatingStatement(std::string_view statement);

// The first whitespace-delimited token of `statement`, lowercased
// (callers with extra journaled verbs — the REPL journals `trigger` and
// `constraint` definitions — compare against it directly).
std::string FirstTokenLower(std::string_view statement);

enum class SyncPolicy {
  kEveryAppend,  // fdatasync per record: Append OK == durable
  kBatched,      // fdatasync every batch_size records
  kNone,         // never sync; the OS decides
};

struct JournalOptions {
  SyncPolicy sync = SyncPolicy::kEveryAppend;
  size_t batch_size = 32;     // for kBatched
  uint64_t epoch = 0;         // epoch stamped on a newly created journal
  FileSystem* fs = nullptr;   // nullptr = FileSystem::Default()
};

// The parse of one journal file: everything up to (not including) the
// first invalid byte.
struct JournalScan {
  int format = 0;        // 0 = empty file, 1 or 2
  uint64_t epoch = 0;    // v2 only; 0 for v1
  uint64_t last_seq = 0;  // v2 only
  std::vector<std::string> statements;
  uint64_t valid_bytes = 0;    // byte length of the valid prefix
  uint64_t dropped_bytes = 0;  // byte length of the corrupt tail (v2)
  Status tail_error;  // OK when the whole file parsed; else why it stopped
};

// Parses a journal file without executing anything. IoError if the file
// cannot be read; a corrupt v2 tail is reported via `tail_error` /
// `dropped_bytes`, not as a failure. v1 files cannot self-detect
// corruption: every non-blank line is taken as a statement.
Result<JournalScan> ScanJournal(const std::string& path,
                                FileSystem* fs = nullptr);

// Moves the corrupt tail of a v2 journal (if any) to `<path>.corrupt`
// (appending, so repeated salvages accumulate evidence) and truncates the
// journal to its longest valid prefix. Returns the scan describing what
// was kept. No-op beyond the scan for clean files and v1 files.
//
// RECOVERY-ONLY: salvage decides that the file will never grow again and
// amputates its tail. A journal that is still being appended to routinely
// shows a partially-written final record; live-tail readers (replication,
// tail-follow) must use ScanJournalTail below, which reports such a tail
// as retryable instead of quarantining acknowledged-in-flight bytes.
Result<JournalScan> SalvageJournal(const std::string& path,
                                   FileSystem* fs = nullptr);

// One framed record as seen by a tail-follower: the statement plus the
// framing fields a follower re-verifies on its own side.
struct TailRecord {
  uint64_t seq = 0;
  uint32_t crc = 0;  // CRC32 over "<seq> <statement>", as framed on disk
  std::string statement;
};

// The result of one incremental live-tail read (see ScanJournalTail).
struct TailScan {
  int format = 0;        // 0 = empty file (header not yet durable), 1 or 2
  uint64_t epoch = 0;    // v2 header epoch (valid once format == 2)
  std::vector<TailRecord> records;
  // Byte offset just past the last complete record consumed (or past the
  // header when no record was). Pass it back as the next read's `offset`.
  uint64_t end_offset = 0;
  // Trailing bytes after end_offset form an incomplete record (no
  // terminating newline yet): an append in flight, or a torn tail that
  // recovery has not yet adjudicated. The reader retries later — it must
  // never salvage (that decision belongs to recovery alone).
  bool partial_tail = false;
  // Non-OK only for damage that cannot be an append in flight: a
  // *complete* line with malformed framing, a length or CRC mismatch, or
  // a sequence discontinuity. The scan stops at the damaged record.
  Status error;
};

// Incrementally parses the framed records of a v2 journal starting at
// byte `offset` (0 = start of file; the header is parsed and skipped),
// expecting the first record to carry `expected_seq` (0 = accept whatever
// sequence the first record carries, then require contiguity). Reads at
// most `max_records` records. Purely observational: never truncates,
// renames, or quarantines anything — safe against a journal that another
// process is appending to. v1 files cannot be tail-followed
// (FailedPrecondition).
Result<TailScan> ScanJournalTail(const std::string& path, uint64_t offset,
                                 uint64_t expected_seq, size_t max_records,
                                 FileSystem* fs = nullptr);

// The durable frontier of a journal as sampled by a replication source:
// every record up to (epoch, seq) is fdatasync-durable and safe to ship.
// `drained` reports whether every statement accepted for commit had
// reached disk at sampling time (the condition under which a follower
// that catches up to this horizon has seen *everything* committed).
struct JournalHorizon {
  // `handoff_seq` value meaning "the previous epoch's extent is unknown".
  static constexpr uint64_t kNoHandoff = ~0ULL;

  uint64_t epoch = 0;
  uint64_t seq = 0;   // last durable record of `epoch`; 0 = none yet
  bool drained = true;
  // The final seq of epoch `epoch - 1`, when the provider witnessed the
  // rotation that ended it (kNoHandoff otherwise). Lets a follower that
  // had fully consumed the previous epoch roll to `epoch` even after a
  // checkpoint deleted the rotated file — without this, every checkpoint
  // would force a snapshot resync on followers that missed nothing.
  uint64_t handoff_seq = kNoHandoff;
};

// Implemented by journal owners that know their durable frontier
// (GroupCommitJournal). A ReplicationSource constructed without one falls
// back to shipping whatever is on disk — correct only for files no
// writer holds open (offline copies, a closed journal).
class HorizonProvider {
 public:
  virtual ~HorizonProvider() = default;
  virtual JournalHorizon ReplicationHorizon() const = 0;
};

class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal() { Close(); }

  // Opens (creating or appending to) the journal file. An existing v2
  // file with a torn tail is salvaged first (tail quarantined to
  // `<path>.corrupt`) so new records are never appended after corrupt
  // bytes; an existing v1 file is continued in v1 format; a new or empty
  // file starts a v2 journal stamped with options.epoch.
  Status Open(const std::string& path, const JournalOptions& options = {});
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  int format() const { return format_; }
  uint64_t epoch() const { return epoch_; }

  // Appends one statement (write-ahead: call before applying the
  // statement to the database) and syncs per the configured SyncPolicy.
  // Statements cannot contain raw newlines (string literals escape them),
  // so the framing is unambiguous.
  Status Append(std::string_view statement);

  // Forces an fdatasync of everything appended so far (used by kBatched /
  // kNone callers at commit points).
  Status Sync();

  // Number of statements appended through this handle.
  size_t appended() const { return appended_; }

  // Sequence number of the last record in the current epoch (0 when the
  // epoch is still empty). Replication sources use it to bound shipping.
  uint64_t last_seq() const { return next_seq_ - 1; }

  // Number of fdatasyncs issued through Sync() on this handle (including
  // the per-record syncs of kEveryAppend) — the denominator group commit
  // optimizes; benchmarks report it as a counter.
  size_t sync_count() const { return sync_count_; }

  // Renames the live journal aside to RotatedPath(path, epoch) and starts
  // a fresh journal at `path` with epoch+1. The rotated file is the
  // durable record of this epoch until a snapshot covering it lands; see
  // RecoveryManager::Checkpoint for the protocol. Returns the rotated
  // path.
  Result<std::string> Rotate();

  // Where Rotate parks the journal of `epoch`.
  static std::string RotatedPath(const std::string& path, uint64_t epoch);

  // DEPRECATED: truncating the journal while the latest snapshot may not
  // be durable loses every statement since the previous snapshot. Use
  // RecoveryManager::Checkpoint (rotate, snapshot, then delete) instead.
  // Kept for legacy callers; rewrites the v2 header with the same epoch.
  Status Truncate();

  void Close();

  // Replays a journal file into `interp`, statement by statement. Returns
  // the number of statements applied. Fails fast (Corruption) on the
  // first statement the interpreter rejects, and on a torn v2 tail —
  // strict semantics for callers that need an exact transaction count;
  // recovery goes through RecoveryManager, which salvages instead.
  static Result<size_t> Replay(const std::string& path, Interpreter* interp);

  // Replays at most the first `max_statements` statements. Since the
  // journal totally orders all transactions, a prefix replay reconstructs
  // the database *as of transaction n* — a transaction-time travel
  // primitive on top of the valid-time model (the "different notions of
  // time" extension the paper's Section 1.1 anticipates).
  static Result<size_t> ReplayPrefix(const std::string& path,
                                     Interpreter* interp,
                                     size_t max_statements);

 private:
  Status WriteHeader();
  FileSystem* fs() const;

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  JournalOptions options_;
  int format_ = 2;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 1;
  size_t appended_ = 0;
  size_t unsynced_ = 0;
  size_t sync_count_ = 0;
};

// A convenience facade bundling a database, an interpreter and a journal:
// Execute() applies a mutating statement and journals it on success, so
// the log contains exactly the statements that applied cleanly (replay
// failures are then always corruption). Callers are acknowledged only
// after the append returns, so an acknowledged statement is durable per
// the journal's sync policy.
class JournaledDatabase {
 public:
  explicit JournaledDatabase(const std::string& journal_path,
                             const JournalOptions& options = {});

  Status status() const { return status_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }
  Journal& journal() { return journal_; }

  // Journals (if mutating) then executes.
  Result<std::string> Execute(std::string_view statement);

 private:
  Database db_;
  Interpreter interp_;
  Journal journal_;
  Status status_;
};

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_JOURNAL_H_
