// A write-ahead journal of TQL statements. Every mutating statement is
// appended (one per line) before execution; recovery is deterministic
// replay through the interpreter — oids are assigned sequentially, so a
// replayed journal reproduces the exact database state.
//
// Together with snapshots (serializer.h) this gives the classic
// checkpoint+log persistence scheme: snapshot periodically, truncate the
// journal, replay the tail on recovery.
#ifndef TCHIMERA_STORAGE_JOURNAL_H_
#define TCHIMERA_STORAGE_JOURNAL_H_

#include <fstream>
#include <string>
#include <string_view>

#include "common/result.h"
#include "query/interpreter.h"

namespace tchimera {

class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens (creating or appending to) the journal file.
  Status Open(const std::string& path);
  bool is_open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  // Appends one statement and flushes (write-ahead: call before applying
  // the statement to the database).
  Status Append(std::string_view statement);

  // Number of statements appended through this handle.
  size_t appended() const { return appended_; }

  // Truncates the journal (after a successful snapshot).
  Status Truncate();

  void Close();

  // Replays a journal file into `interp`, statement by statement. Returns
  // the number of statements applied. Fails fast on the first statement
  // the interpreter rejects.
  static Result<size_t> Replay(const std::string& path,
                               Interpreter* interp);

  // Replays at most the first `max_statements` statements. Since the
  // journal totally orders all transactions, a prefix replay reconstructs
  // the database *as of transaction n* — a transaction-time travel
  // primitive on top of the valid-time model (the "different notions of
  // time" extension the paper's Section 1.1 anticipates).
  static Result<size_t> ReplayPrefix(const std::string& path,
                                     Interpreter* interp,
                                     size_t max_statements);

 private:
  std::string path_;
  std::ofstream out_;
  size_t appended_ = 0;
};

// A convenience facade bundling a database, an interpreter and a journal:
// Execute() journals mutating statements before applying them.
class JournaledDatabase {
 public:
  explicit JournaledDatabase(const std::string& journal_path);

  Status status() const { return status_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // Journals (if mutating) then executes.
  Result<std::string> Execute(std::string_view statement);

 private:
  Database db_;
  Interpreter interp_;
  Journal journal_;
  Status status_;
};

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_JOURNAL_H_
