#include "storage/serializer.h"

#include <set>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/string_util.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

std::string JoinTypes(const std::vector<const Type*>& types) {
  if (types.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(types.size());
  for (const Type* t : types) parts.push_back(t->ToString());
  return Join(parts, ",");
}

void WriteClass(const Database& db, const ClassDef& cls, std::ostream* out) {
  *out << "CLASS " << cls.name() << "\n";
  *out << "SUPERS "
       << (cls.direct_superclasses().empty()
               ? "-"
               : Join(cls.direct_superclasses(), ","))
       << "\n";
  *out << "LIFESPAN " << cls.lifespan().ToString() << "\n";
  for (const AttributeDef& a : cls.attributes()) {
    *out << "ATTR " << a.name << " " << a.type->ToString() << "\n";
  }
  for (const MethodDef& m : cls.methods()) {
    *out << "METHOD " << m.name << " " << JoinTypes(m.inputs) << " "
         << m.output->ToString() << "\n";
  }
  for (const AttributeDef& a : cls.c_attributes()) {
    *out << "CATTR " << a.name << " " << a.type->ToString() << "\n";
  }
  for (const MethodDef& m : cls.c_methods()) {
    *out << "CMETHOD " << m.name << " " << JoinTypes(m.inputs) << " "
         << m.output->ToString() << "\n";
  }
  for (const AttributeDef& a : cls.c_attributes()) {
    Result<Value> v = cls.CAttributeValue(a.name);
    if (v.ok()) {
      *out << "CATTRVAL " << a.name << " " << v->ToString() << "\n";
    }
  }
  *out << "EXT " << cls.ext().ToString() << "\n";
  *out << "PEXT " << cls.proper_ext().ToString() << "\n";
  *out << "END\n";
  (void)db;
}

void WriteObject(const Object& obj, std::ostream* out) {
  *out << "OBJECT " << obj.id().id << " " << obj.lifespan().ToString()
       << "\n";
  *out << "CLASSHIST " << obj.class_history().ToString() << "\n";
  for (const std::string& name : obj.AttributeNames()) {
    const Value* v = obj.Attribute(name);
    // The T/S marker disambiguates an empty temporal function from an
    // empty set (both print "{}").
    *out << "ATTRVAL " << name << " "
         << (v->kind() == ValueKind::kTemporal ? "T " : "S ")
         << v->ToString() << "\n";
  }
  *out << "END\n";
}

// Writes header through NEXT-OID (everything the footer checksums) and
// reports the CLASS+OBJECT record count.
Status SaveDatabaseBody(const Database& db, std::ostream* out,
                        uint64_t epoch,
                        const std::vector<std::string>& definitions,
                        size_t* records) {
  *out << "TCHIMERA-SNAPSHOT 4\n";
  *out << "EPOCH " << epoch << "\n";
  *out << "NOW " << db.now() << "\n";
  // Emit classes in an ISA-respecting order: repeatedly flush classes
  // whose superclasses were already written.
  std::vector<std::string> pending = db.ClassNames();
  std::vector<std::string> ordered;
  std::set<std::string> written;
  while (!pending.empty()) {
    bool progress = false;
    std::vector<std::string> next;
    for (const std::string& name : pending) {
      const ClassDef* cls = db.GetClass(name);
      bool ready = true;
      for (const std::string& super : cls->direct_superclasses()) {
        if (written.count(super) == 0) {
          ready = false;
          break;
        }
      }
      if (ready) {
        ordered.push_back(name);
        written.insert(name);
        progress = true;
      } else {
        next.push_back(name);
      }
    }
    if (!progress) {
      return Status::Internal("ISA cycle detected while serializing");
    }
    pending = std::move(next);
  }
  for (const std::string& name : ordered) {
    WriteClass(db, *db.GetClass(name), out);
  }
  for (Oid oid : db.AllOids()) {
    WriteObject(*db.GetObject(oid), out);
  }
  // DEFINE records after all schema/objects (a trigger or constraint may
  // reference any class), inside the checksummed body; excluded from the
  // footer's record count, which stays CLASS+OBJECT for v2 parity.
  for (const std::string& stmt : definitions) {
    if (stmt.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "definition statement contains a newline");
    }
    *out << "DEFINE " << stmt << "\n";
  }
  // v4: index definitions, after classes and objects (CreateIndex on
  // restore validates against the loaded schema and rebuilds from the
  // loaded objects). Only definitions are persisted — index data is a
  // pure function of object state and is rebuilt deterministically
  // (docs/INDEXING.md) — and, like DEFINE, these are excluded from the
  // footer's CLASS+OBJECT record count.
  for (const IndexDef& def : db.IndexDefs()) {
    *out << "INDEX " << def.name << " " << IndexKindName(def.kind) << " "
         << def.class_name << " " << (def.attr.empty() ? "-" : def.attr)
         << "\n";
  }
  // NEXT-OID last so restore can clamp upward regardless of object order.
  *out << "NEXT-OID " << db.next_oid() << "\n";
  if (!out->good()) return Status::IoError("write failed");
  *records = ordered.size() + db.object_count();
  return Status::OK();
}

}  // namespace

Status SaveDatabase(const Database& db, std::ostream* out, uint64_t epoch,
                    const std::vector<std::string>& definitions) {
  // The footer checksums every byte above it, so the body is staged in
  // memory first (snapshots are line-oriented text; the whole database
  // already round-trips through strings in tests and benches).
  std::ostringstream body;
  size_t records = 0;
  TCH_RETURN_IF_ERROR(
      SaveDatabaseBody(db, &body, epoch, definitions, &records));
  std::string text = body.str();
  *out << text << "CHECKSUM " << records << " " << Crc32Hex(Crc32(text))
       << "\nEOF\n";
  if (!out->good()) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveDatabaseToFile(const Database& db, const std::string& path,
                          uint64_t epoch, FileSystem* fs,
                          const std::vector<std::string>& definitions) {
  if (fs == nullptr) fs = FileSystem::Default();
  TCH_ASSIGN_OR_RETURN(std::string text,
                       SaveDatabaseToString(db, epoch, definitions));
  std::string tmp = path + ".tmp";
  {
    TCH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                         fs->OpenWritable(tmp, /*truncate=*/true));
    TCH_RETURN_IF_ERROR(out->Append(text));
    TCH_RETURN_IF_ERROR(out->Sync());
    TCH_RETURN_IF_ERROR(out->Close());
  }
  // Durable rename: the snapshot becomes visible atomically, and the
  // parent directory is fsynced so the rename itself survives a crash.
  return fs->RenameFile(tmp, path);
}

Result<std::string> SaveDatabaseToString(
    const Database& db, uint64_t epoch,
    const std::vector<std::string>& definitions) {
  std::ostringstream out;
  TCH_RETURN_IF_ERROR(SaveDatabase(db, &out, epoch, definitions));
  return out.str();
}

Result<uint32_t> DatabaseStateHash(
    const Database& db, const std::vector<std::string>& definitions) {
  // Epoch 0 on purpose: the hash compares logical state across nodes
  // whose checkpoint cadence (and hence epoch counter) differs.
  TCH_ASSIGN_OR_RETURN(std::string text,
                       SaveDatabaseToString(db, /*epoch=*/0, definitions));
  return Crc32(text);
}

}  // namespace tchimera
