#include "storage/recovery.h"

#include <algorithm>
#include <utility>

#include "core/db/consistency.h"
#include "storage/deserializer.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

std::pair<std::string, std::string> SplitPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return {".", path};
  if (slash == 0) return {"/", path.substr(1)};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

// Parses the epoch out of a rotated-journal file name
// ("<base>.e<digits>"); false for everything else.
bool ParseRotatedName(const std::string& name, const std::string& base,
                      uint64_t* epoch) {
  const std::string prefix = base + ".e";
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

void Note(RecoveryStats* stats, std::string message) {
  if (stats != nullptr) stats->notes.push_back(std::move(message));
}

}  // namespace

RecoveryManager::RecoveryManager(std::string snapshot_path,
                                 std::string journal_path,
                                 RecoveryOptions options)
    : snapshot_path_(std::move(snapshot_path)),
      journal_path_(std::move(journal_path)),
      options_(options) {}

FileSystem* RecoveryManager::fs() const {
  return options_.fs == nullptr ? FileSystem::Default() : options_.fs;
}

Result<std::unique_ptr<Database>> RecoveryManager::LoadSnapshot(
    RecoveryStats* stats) {
  snapshot_epoch_ = 0;
  snapshot_definitions_.clear();
  // A leftover tmp file is a checkpoint that died before its rename; the
  // real snapshot is intact, the tmp is garbage.
  std::string tmp = snapshot_path_ + ".tmp";
  if (fs()->FileExists(tmp)) {
    TCH_RETURN_IF_ERROR(fs()->RemoveFile(tmp));
    if (stats != nullptr) ++stats->stale_files_removed;
    Note(stats, "removed interrupted snapshot " + tmp);
  }
  if (!fs()->FileExists(snapshot_path_)) {
    Note(stats, "no snapshot; recovering from the journals alone");
    return std::make_unique<Database>();
  }
  TCH_ASSIGN_OR_RETURN(std::string text,
                       fs()->ReadFileToString(snapshot_path_));
  TCH_ASSIGN_OR_RETURN(SnapshotInfo info, ProbeSnapshot(text));
  // Snapshot writes are atomic, so a failed integrity check is bit rot,
  // not a crash artifact — refuse to build any state from it.
  TCH_RETURN_IF_ERROR(info.integrity);
  TCH_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadSnapshotFromString(text));
  snapshot_epoch_ = info.epoch;
  snapshot_definitions_ = std::move(loaded.definitions);
  if (stats != nullptr) {
    stats->snapshot_loaded = true;
    stats->snapshot_epoch = info.epoch;
  }
  Note(stats, "loaded v" + std::to_string(info.version) +
                  " snapshot at epoch " + std::to_string(info.epoch));
  if (!snapshot_definitions_.empty()) {
    Note(stats, "snapshot carries " +
                    std::to_string(snapshot_definitions_.size()) +
                    " definition statement(s)");
  }
  return std::move(loaded.db);
}

Status RecoveryManager::ReplayJournals(const StatementExecutor& exec,
                                       RecoveryStats* stats) {
  const uint64_t snapshot_epoch = snapshot_epoch_;
  auto [dir, base] = SplitPath(journal_path_);

  // Discover the rotated journals next to the live one.
  TCH_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       fs()->ListDirectory(dir));
  std::vector<uint64_t> rotated;
  for (const std::string& name : names) {
    uint64_t epoch = 0;
    if (!ParseRotatedName(name, base, &epoch)) continue;
    if (epoch < snapshot_epoch) {
      // Fully contained in the snapshot: stale leftover of a checkpoint
      // that crashed between writing the snapshot and deleting these.
      TCH_RETURN_IF_ERROR(
          fs()->RemoveFile(Journal::RotatedPath(journal_path_, epoch)));
      if (stats != nullptr) ++stats->stale_files_removed;
      Note(stats, "removed stale journal " + name + " (epoch " +
                      std::to_string(epoch) + " < snapshot epoch " +
                      std::to_string(snapshot_epoch) + ")");
    } else {
      rotated.push_back(epoch);
    }
  }
  std::sort(rotated.begin(), rotated.end());

  // The live journal, if present and carrying a readable header, bounds
  // the epoch sequence from above. A live journal with no valid header
  // (empty, or a header torn by a crash during Rotate/Open before the
  // sync) carries no epoch information: it has no statements either, so
  // it is sequenced like a missing live journal and merely salvaged.
  bool live_exists = fs()->FileExists(journal_path_);
  uint64_t live_epoch = 0;
  bool live_has_header = false;
  if (live_exists) {
    TCH_ASSIGN_OR_RETURN(JournalScan scan,
                         ScanJournal(journal_path_, fs()));
    live_epoch = scan.epoch;  // 0 for v1
    live_has_header =
        scan.format == 1 || (scan.format == 2 && scan.valid_bytes > 0);
    if (live_has_header && live_epoch < snapshot_epoch) {
      // The checkpoint protocol always leaves the live journal at an
      // epoch >= the snapshot's; an older live journal means files from
      // different histories were mixed together, and its statements are
      // already (differently) reflected in the snapshot.
      return Status::Corruption(
          "live journal epoch " + std::to_string(live_epoch) +
          " predates snapshot epoch " + std::to_string(snapshot_epoch));
    }
    if (!live_has_header) {
      Note(stats, "live journal has no readable header (crash during "
                  "rotation); sequencing from the rotated journals");
    }
  }

  // Every epoch in [snapshot_epoch, live_epoch) must be present as a
  // rotated file, exactly once, and nothing above the live epoch may
  // exist — any other shape means journals were lost or mixed up, and
  // replaying around the hole would silently drop transactions.
  std::vector<uint64_t> expected;
  if (live_exists && live_has_header) {
    for (uint64_t e = snapshot_epoch; e < live_epoch; ++e) {
      expected.push_back(e);
    }
    if (rotated != expected) {
      return Status::Corruption(
          "journal epochs are not contiguous: snapshot epoch " +
          std::to_string(snapshot_epoch) + ", live journal epoch " +
          std::to_string(live_epoch) + ", " +
          std::to_string(rotated.size()) + " rotated file(s)");
    }
  } else if (!rotated.empty()) {
    // No live epoch to anchor on (missing live journal, or one with no
    // readable header): the rotated files themselves must be gapless.
    for (uint64_t e = rotated.front(); e <= rotated.back(); ++e) {
      expected.push_back(e);
    }
    if (rotated != expected || rotated.front() != snapshot_epoch) {
      return Status::Corruption(
          "rotated journals do not start at snapshot epoch " +
          std::to_string(snapshot_epoch) + " or have gaps");
    }
  }

  if (stats != nullptr) {
    stats->next_epoch = (live_exists && live_has_header)
                            ? live_epoch
                            : (rotated.empty() ? snapshot_epoch
                                               : rotated.back() + 1);
  }

  // Replay: rotated files in epoch order, then the live journal. Torn v2
  // tails are salvaged first, so replay sees the longest valid prefix and
  // the corrupt bytes are preserved in `<file>.corrupt`.
  std::vector<std::string> files;
  for (uint64_t epoch : rotated) {
    files.push_back(Journal::RotatedPath(journal_path_, epoch));
  }
  if (live_exists) files.push_back(journal_path_);
  for (const std::string& file : files) {
    TCH_ASSIGN_OR_RETURN(JournalScan scan, SalvageJournal(file, fs()));
    if (scan.dropped_bytes > 0) {
      if (stats != nullptr) stats->salvaged_bytes += scan.dropped_bytes;
      Note(stats, "salvaged " + file + ": dropped " +
                      std::to_string(scan.dropped_bytes) +
                      " corrupt tail byte(s) (" +
                      scan.tail_error.message() + ")");
    }
    size_t replayed = 0;
    for (const std::string& statement : scan.statements) {
      Status s = exec(statement);
      if (!s.ok()) {
        return Status::Corruption(
            "journal " + file + " statement " +
            std::to_string(replayed + 1) +
            " failed to replay: " + s.ToString());
      }
      ++replayed;
      if (stats != nullptr) ++stats->statements_applied;
    }
    if (stats != nullptr) ++stats->journals_replayed;
  }
  return Status::OK();
}

Status RecoveryManager::Audit(Database* db, AuditMode mode,
                              RecoveryStats* stats) {
  if (mode == AuditMode::kOff) return Status::OK();
  Status st = CheckDatabaseConsistency(*db);
  if (st.ok() || mode == AuditMode::kFail) return st;

  // kQuarantine: evict every object that fails its own consistency check
  // and retry. Evictions can orphan references *to* the evicted objects
  // (their extents are scrubbed, so referencing values become illegal),
  // which the next round catches — the loop is bounded by the object
  // count since every round removes at least one object.
  while (!st.ok()) {
    bool removed = false;
    for (Oid oid : db->AllOids()) {
      if (CheckObjectConsistency(*db, oid).ok()) continue;
      TCH_RETURN_IF_ERROR(db->QuarantineObject(oid));
      if (stats != nullptr) ++stats->quarantined_objects;
      Note(stats, "quarantined inconsistent object " + oid.ToString());
      removed = true;
    }
    if (!removed) {
      // The inconsistency is not attributable to any single object
      // (e.g. a schema-level invariant violation): not healable here.
      return st;
    }
    st = CheckDatabaseConsistency(*db);
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> RecoveryManager::Recover(
    RecoveryStats* stats) {
  TCH_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, LoadSnapshot(stats));
  if (!snapshot_definitions_.empty()) {
    // A plain Interpreter cannot execute trigger/constraint definitions;
    // they are harmless to skip for state reconstruction (they guard
    // future mutations, and replay re-applies journaled effects as-is).
    Note(stats, "skipping " +
                    std::to_string(snapshot_definitions_.size()) +
                    " definition statement(s); use the phase API with an "
                    "ActiveDatabase to restore them");
  }
  Interpreter interp(db.get());
  TCH_RETURN_IF_ERROR(ReplayJournals(
      [&interp](const std::string& statement) {
        return interp.Execute(statement).status();
      },
      stats));
  TCH_RETURN_IF_ERROR(Audit(db.get(), options_.audit, stats));
  return db;
}

Status RecoveryManager::Checkpoint(const Database& db, Journal* journal,
                                   const std::string& snapshot_path,
                                   FileSystem* fs,
                                   const std::vector<std::string>& definitions) {
  if (fs == nullptr) fs = FileSystem::Default();
  if (journal == nullptr || !journal->is_open()) {
    return Status::FailedPrecondition("checkpoint requires an open journal");
  }
  // Step 1: park the live journal under its epoch; appends now go to a
  // fresh journal with the next epoch. Nothing is lost if we crash here —
  // recovery replays the rotated file like any other epoch.
  TCH_ASSIGN_OR_RETURN(std::string rotated, journal->Rotate());
  (void)rotated;
  // Step 2: the snapshot, stamped with the new epoch, lands atomically.
  uint64_t epoch = journal->epoch();
  TCH_RETURN_IF_ERROR(
      SaveDatabaseToFile(db, snapshot_path, epoch, fs, definitions));
  // Step 3: only now are the older journals redundant. Oldest first, so a
  // crash mid-loop leaves a contiguous (stale) tail for recovery to
  // finish deleting.
  for (uint64_t e = 0; e < epoch; ++e) {
    std::string path = Journal::RotatedPath(journal->path(), e);
    if (fs->FileExists(path)) TCH_RETURN_IF_ERROR(fs->RemoveFile(path));
  }
  return Status::OK();
}

}  // namespace tchimera
