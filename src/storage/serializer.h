// Persistence for T_Chimera databases: a line-oriented text snapshot
// format that round-trips the full database state (schema with effective
// members, extent histories, c-attribute values, objects with complete
// attribute histories and class histories, clock and oid counter).
//
// Format sketch (one record per line; values/types in their canonical
// textual syntax, which never contains newlines):
//
//   TCHIMERA-SNAPSHOT 4
//   EPOCH <e>
//   NOW <t>
//   CLASS <name>
//   SUPERS <name>,<name> | SUPERS -
//   LIFESPAN [a,b]
//   ATTR <name> <type>
//   METHOD <name> <in1,in2|-> <out>
//   CATTR <name> <type>
//   CMETHOD <name> <in1,in2|-> <out>
//   CATTRVAL <name> <value>
//   EXT <temporal-value>
//   PEXT <temporal-value>
//   END
//   OBJECT <oid> [a,b]
//   CLASSHIST <temporal-value>
//   ATTRVAL <name> <value>
//   END
//   DEFINE <statement>
//   INDEX <name> <kind> <class> <attr|->
//   NEXT-OID <n>
//   CHECKSUM <records> <crc32>
//   EOF
//
// The v2+ footer carries the CLASS+OBJECT record count and a CRC32 over
// every byte above it, so a truncated or bit-flipped snapshot is rejected
// before a single record is parsed (v1 snapshots — no EPOCH, no CHECKSUM,
// header version 1 — still load; v2 snapshots — no DEFINE records — also
// still load). EPOCH orders the snapshot against journals: it contains
// the effects of every journal with epoch < e (see storage/recovery.h).
//
// v3 adds DEFINE records: caller-supplied definition statements (the
// ActiveDatabase's `trigger` / `constraint` declarations, which live
// outside the Database proper) carried verbatim, one per line, inside the
// checksummed body. They are replayed through the execution facade on
// restore; the record count in the footer stays CLASS+OBJECT only.
//
// v4 adds INDEX records: temporal secondary index definitions (name,
// kind, class, attribute) written after DEFINE. Only the definition is
// persisted — index *data* is a pure function of object state and is
// rebuilt deterministically on restore (docs/INDEXING.md). Like DEFINE,
// INDEX records are excluded from the footer's record count.
//
// Classes are emitted in topological (ISA) order so restore never sees a
// dangling superclass.
#ifndef TCHIMERA_STORAGE_SERIALIZER_H_
#define TCHIMERA_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/status.h"
#include "core/db/database.h"

namespace tchimera {

// Writes a full v4 snapshot of `db` (footer included). `definitions` are
// extra statements (trigger / constraint declarations) emitted as DEFINE
// records; each must be newline-free (statements always are — string
// literals escape newlines) or InvalidArgument is returned.
Status SaveDatabase(const Database& db, std::ostream* out,
                    uint64_t epoch = 0,
                    const std::vector<std::string>& definitions = {});
// Convenience: snapshot to a file, atomically and durably — the bytes are
// written to `<path>.tmp`, fsynced, renamed over `path`, and the parent
// directory fsynced; a crash at any point leaves either the old snapshot
// or the new one, never a torn file.
Status SaveDatabaseToFile(const Database& db, const std::string& path,
                          uint64_t epoch = 0, FileSystem* fs = nullptr,
                          const std::vector<std::string>& definitions = {});
// Snapshot into a string (tests, benchmarks).
Result<std::string> SaveDatabaseToString(
    const Database& db, uint64_t epoch = 0,
    const std::vector<std::string>& definitions = {});

// A content hash of the full logical state (schema, extents, objects,
// histories, clock, oid counter, plus `definitions`): CRC32 over the
// canonical snapshot serialization at epoch 0, so the epoch a node
// happens to be at never perturbs the hash. Two databases hash equal iff
// they serialize identically — the equality check replication uses to
// assert a replica converged to its primary (tests,
// `tchimera_recover verify-replica`).
Result<uint32_t> DatabaseStateHash(
    const Database& db, const std::vector<std::string>& definitions = {});

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_SERIALIZER_H_
