// Persistence for T_Chimera databases: a line-oriented text snapshot
// format that round-trips the full database state (schema with effective
// members, extent histories, c-attribute values, objects with complete
// attribute histories and class histories, clock and oid counter).
//
// Format sketch (one record per line; values/types in their canonical
// textual syntax, which never contains newlines):
//
//   TCHIMERA-SNAPSHOT 2
//   EPOCH <e>
//   NOW <t>
//   CLASS <name>
//   SUPERS <name>,<name> | SUPERS -
//   LIFESPAN [a,b]
//   ATTR <name> <type>
//   METHOD <name> <in1,in2|-> <out>
//   CATTR <name> <type>
//   CMETHOD <name> <in1,in2|-> <out>
//   CATTRVAL <name> <value>
//   EXT <temporal-value>
//   PEXT <temporal-value>
//   END
//   OBJECT <oid> [a,b]
//   CLASSHIST <temporal-value>
//   ATTRVAL <name> <value>
//   END
//   NEXT-OID <n>
//   CHECKSUM <records> <crc32>
//   EOF
//
// The v2 footer carries the CLASS+OBJECT record count and a CRC32 over
// every byte above it, so a truncated or bit-flipped snapshot is rejected
// before a single record is parsed (v1 snapshots — no EPOCH, no CHECKSUM,
// header version 1 — still load). EPOCH orders the snapshot against
// journals: it contains the effects of every journal with epoch < e (see
// storage/recovery.h).
//
// Classes are emitted in topological (ISA) order so restore never sees a
// dangling superclass.
#ifndef TCHIMERA_STORAGE_SERIALIZER_H_
#define TCHIMERA_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/fault_fs.h"
#include "common/status.h"
#include "core/db/database.h"

namespace tchimera {

// Writes a full v2 snapshot of `db` (footer included).
Status SaveDatabase(const Database& db, std::ostream* out,
                    uint64_t epoch = 0);
// Convenience: snapshot to a file, atomically and durably — the bytes are
// written to `<path>.tmp`, fsynced, renamed over `path`, and the parent
// directory fsynced; a crash at any point leaves either the old snapshot
// or the new one, never a torn file.
Status SaveDatabaseToFile(const Database& db, const std::string& path,
                          uint64_t epoch = 0, FileSystem* fs = nullptr);
// Snapshot into a string (tests, benchmarks).
Result<std::string> SaveDatabaseToString(const Database& db,
                                         uint64_t epoch = 0);

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_SERIALIZER_H_
