// Persistence for T_Chimera databases: a line-oriented text snapshot
// format that round-trips the full database state (schema with effective
// members, extent histories, c-attribute values, objects with complete
// attribute histories and class histories, clock and oid counter).
//
// Format sketch (one record per line; values/types in their canonical
// textual syntax, which never contains newlines):
//
//   TCHIMERA-SNAPSHOT 1
//   NOW <t>
//   NEXT-OID <n>
//   CLASS <name>
//   SUPERS <name>,<name> | SUPERS -
//   LIFESPAN [a,b]
//   ATTR <name> <type>
//   METHOD <name> <in1,in2|-> <out>
//   CATTR <name> <type>
//   CMETHOD <name> <in1,in2|-> <out>
//   CATTRVAL <name> <value>
//   EXT <temporal-value>
//   PEXT <temporal-value>
//   END
//   OBJECT <oid> [a,b]
//   CLASSHIST <temporal-value>
//   ATTRVAL <name> <value>
//   END
//
// Classes are emitted in topological (ISA) order so restore never sees a
// dangling superclass.
#ifndef TCHIMERA_STORAGE_SERIALIZER_H_
#define TCHIMERA_STORAGE_SERIALIZER_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "core/db/database.h"

namespace tchimera {

// Writes a full snapshot of `db`.
Status SaveDatabase(const Database& db, std::ostream* out);
// Convenience: snapshot to a file (atomically via rename of a temp file).
Status SaveDatabaseToFile(const Database& db, const std::string& path);
// Snapshot into a string (tests, benchmarks).
Result<std::string> SaveDatabaseToString(const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_SERIALIZER_H_
