#include "storage/group_commit.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "storage/replication.h"

namespace tchimera {

Status GroupCommitJournal::Open(const std::string& path,
                                const JournalOptions& journal_options,
                                const GroupCommitOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_.is_open()) {
    return Status::FailedPrecondition("group-commit journal is open");
  }
  JournalOptions opts = journal_options;
  opts.sync = SyncPolicy::kNone;  // the sink owns every sync point
  TCH_RETURN_IF_ERROR(journal_.Open(path, opts));
  options_ = options;
  if (options_.max_batch == 0) options_.max_batch = 1;
  pending_.clear();
  enqueued_ = taken_ = durable_ = batches_ = 0;
  leader_active_ = false;
  sticky_ = Status::OK();
  // Records already in the file (a reopened journal) were synced by their
  // original writer or survived salvage: durable, shippable. Whatever
  // ended the previous epoch happened before this sink existed.
  horizon_epoch_ = journal_.epoch();
  horizon_seq_ = journal_.last_seq();
  horizon_handoff_seq_ = JournalHorizon::kNoHandoff;
  return Status::OK();
}

bool GroupCommitJournal::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_.is_open();
}

void GroupCommitJournal::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  // Best effort: drain what we can (Close is a shutdown path; errors are
  // already sticky for anyone still awaiting).
  while (sticky_.ok() && durable_ < enqueued_) {
    if (leader_active_) {
      cv_.wait(lock);
    } else {
      LeadBatch(lock);
    }
  }
  if (durable_ < enqueued_ && sticky_.ok()) {
    // Unreachable today (the drain only stops on poison or empty), but
    // cheap insurance: a ticket enqueued before Close whose batch never
    // got a leader must observe a sticky failure, never block forever.
    sticky_ = Status::FailedPrecondition(
        "group-commit journal closed with unflushed backlog");
  }
  journal_.Close();
  // Wake every parked waiter so it re-checks against the closed journal
  // (and the sticky status, if the drain poisoned). Without this, a
  // waiter that last observed an in-flight leader could sleep until the
  // next enqueue — which, after Close, never comes.
  cv_.notify_all();
}

CommitSink::Ticket GroupCommitJournal::Enqueue(std::string_view statement) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fence_ != nullptr) {
    Status authority = fence_->Authorize(authority_token_);
    if (!authority.ok()) {
      // Fenced by a replica promotion: this node is no longer the
      // primary. Reject outright — nothing may be journaled (and so
      // nothing committed) under a revoked authority.
      Ticket rejected;
      rejected.status = authority;
      return rejected;
    }
  }
  // Fail fast instead of handing out a ticket whose Await would drive
  // LeadBatch into appends on a closed journal (or pointlessly queue
  // behind a write that is already known lost).
  if (!journal_.is_open()) {
    Ticket rejected;
    rejected.status = Status::FailedPrecondition(
        "group-commit journal is closed; statement not enqueued");
    return rejected;
  }
  if (!sticky_.ok()) {
    Ticket rejected;
    rejected.status = sticky_;
    return rejected;
  }
  pending_.emplace_back(statement);
  ++enqueued_;
  return Ticket{enqueued_};
}

Status GroupCommitJournal::Await(Ticket ticket) {
  if (ticket.seq == 0) return ticket.status;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (durable_ >= ticket.seq) return Status::OK();
    if (!sticky_.ok()) return sticky_;
    if (!journal_.is_open()) {
      // Closed with our statement still pending (Close drains what it
      // can; a poison during the drain is reported above).
      return Status::FailedPrecondition(
          "group-commit journal closed before the statement became "
          "durable");
    }
    if (!leader_active_ && taken_ < enqueued_) {
      // Elect ourselves leader for the next batch (it necessarily covers
      // the oldest pending statement; ours is pending, so repeating this
      // loop eventually flushes it or poisons the sink).
      LeadBatch(lock);
      continue;
    }
    cv_.wait(lock);
  }
}

void GroupCommitJournal::LeadBatch(std::unique_lock<std::mutex>& lock) {
  leader_active_ = true;
  // Linger only when the pending statements are NOT already the whole
  // non-durable backlog — i.e. only while another batch is still in
  // flight, so stragglers riding its completion are plausibly imminent.
  // When pending_ covers everything outstanding (the single-writer case
  // in particular: one statement, one waiter), waiting max_delay buys
  // nothing and used to tax every lone commit with the full delay;
  // cross-session batching still happens from commits piling up during
  // the previous sync.
  if (options_.max_delay.count() > 0 &&
      pending_.size() < options_.max_batch &&
      pending_.size() < enqueued_ - durable_) {
    // cv_.wait_for releases the lock, so Enqueue can add to the batch
    // while we wait; spurious wakeups just shorten the linger, which is
    // harmless.
    cv_.wait_for(lock, options_.max_delay);
  }
  std::vector<std::string> batch;
  batch.reserve(std::min(pending_.size(), options_.max_batch));
  while (!pending_.empty() && batch.size() < options_.max_batch) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  const uint64_t batch_high = taken_ + batch.size();
  taken_ = batch_high;

  lock.unlock();
  // The expensive part, off the lock: concurrent sessions keep enqueueing
  // (they hold the writer lock, not ours) and will ride the next batch.
  Status result;
  for (const std::string& statement : batch) {
    result = journal_.Append(statement);
    if (!result.ok()) break;
  }
  if (result.ok()) result = journal_.Sync();
  lock.lock();

  if (result.ok()) {
    durable_ = batch_high;
    ++batches_;
    // No concurrent appends exist (appends happen only under
    // leader_active_, which is ours), so the journal counters are stable
    // here: everything appended is now synced.
    horizon_epoch_ = journal_.epoch();
    horizon_seq_ = journal_.last_seq();
  } else if (sticky_.ok()) {
    // Poison: some prefix of this batch may or may not be on disk; no
    // later append may be acknowledged over that uncertainty.
    sticky_ = result;
  }
  leader_active_ = false;
  cv_.notify_all();
}

Status GroupCommitJournal::WithQuiesced(
    const std::function<Status(Journal&)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!journal_.is_open()) {
    return Status::FailedPrecondition("group-commit journal is not open");
  }
  while (durable_ < enqueued_) {
    if (!sticky_.ok()) return sticky_;
    if (leader_active_) {
      cv_.wait(lock);
    } else {
      LeadBatch(lock);
    }
  }
  if (fence_ != nullptr) {
    Status authority = fence_->Authorize(authority_token_);
    if (!authority.ok()) return authority;  // fenced: no checkpoints either
  }
  // Everything enqueued is durable and we hold the mutex, so no leader
  // can be flushing: the journal is exclusively ours for `fn`.
  const uint64_t epoch_before = journal_.epoch();
  const uint64_t seq_before = journal_.last_seq();
  Status result = fn(journal_);
  // `fn` may have rotated the journal (the checkpoint path): re-sample
  // the frontier. Rotation syncs before renaming, so everything on disk
  // is durable. A single rotation hands the old epoch's extent to the
  // horizon, so caught-up followers can roll without the rotated file.
  horizon_epoch_ = journal_.epoch();
  horizon_seq_ = journal_.last_seq();
  if (horizon_epoch_ == epoch_before + 1) {
    horizon_handoff_seq_ = seq_before;
  } else if (horizon_epoch_ != epoch_before) {
    horizon_handoff_seq_ = JournalHorizon::kNoHandoff;
  }
  return result;
}

JournalHorizon GroupCommitJournal::ReplicationHorizon() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalHorizon h;
  h.epoch = horizon_epoch_;
  h.seq = horizon_seq_;
  h.drained = durable_ == enqueued_ && sticky_.ok();
  h.handoff_seq = horizon_handoff_seq_;
  return h;
}

void GroupCommitJournal::AttachFence(const EpochFence* fence,
                                     uint64_t authority_token) {
  std::lock_guard<std::mutex> lock(mu_);
  fence_ = fence;
  authority_token_ = authority_token;
}

uint64_t GroupCommitJournal::enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueued_;
}

uint64_t GroupCommitJournal::durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

uint64_t GroupCommitJournal::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

}  // namespace tchimera
