#include "storage/replication.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/crc32.h"
#include "storage/deserializer.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

// The CRC payload of a framed record, exactly as journal.cc frames it —
// the follower recomputes it to verify integrity end to end.
std::string FramedPayload(uint64_t seq, std::string_view statement) {
  std::string payload = std::to_string(seq);
  payload += ' ';
  payload.append(statement.data(), statement.size());
  return payload;
}

Status ExecuteViaEngine(Engine* engine, const std::string& statement) {
  return engine->WithExclusive(
      [&statement](Database&, ActiveDatabase& active) {
        return active.Execute(statement).status();
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// ExponentialBackoff

ExponentialBackoff::ExponentialBackoff(const Options& options)
    : options_(options), rng_state_(options.seed ? options.seed : 1) {}

std::chrono::microseconds ExponentialBackoff::NextDelay() {
  // Nominal delay: initial * multiplier^attempts, saturating at max.
  double nominal = static_cast<double>(options_.initial.count());
  const double max = static_cast<double>(options_.max.count());
  for (uint64_t i = 0; i < attempts_ && nominal < max; ++i) {
    nominal *= options_.multiplier;
  }
  nominal = std::min(nominal, max);
  // Deterministic jitter in [1 - j, 1 + j] from a 64-bit LCG
  // (Knuth MMIX constants); the top bits make a uniform in [0, 1).
  rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  double uniform =
      static_cast<double>(rng_state_ >> 11) / 9007199254740992.0;
  double jittered =
      nominal * (1.0 + options_.jitter * (2.0 * uniform - 1.0));
  jittered = std::min(std::max(jittered, 0.0), max);
  ++attempts_;
  return std::chrono::microseconds(static_cast<int64_t>(jittered));
}

void ExponentialBackoff::Reset() { attempts_ = 0; }

ExponentialBackoff::Options ExponentialBackoff::SeededFor(
    const Options& options, std::string_view name) {
  // FNV-1a over the replica name, folded into the configured seed. The
  // result stays deterministic per (seed, name) — failure-path tests
  // still reproduce — while distinct replicas get distinct LCG streams.
  uint64_t h = 14695981039346656037ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  Options seeded = options;
  seeded.seed = (options.seed ? options.seed : 1) ^ h;
  if (seeded.seed == 0) seeded.seed = 1;  // the LCG treats 0 as "unseeded"
  return seeded;
}

// ---------------------------------------------------------------------------
// ReplicationSource

ReplicationSource::ReplicationSource(std::string journal_path,
                                     Options options)
    : journal_path_(std::move(journal_path)), options_(std::move(options)) {}

FileSystem* ReplicationSource::fs() const {
  return options_.fs != nullptr ? options_.fs : FileSystem::Default();
}

Result<JournalHorizon> ReplicationSource::SampleHorizon() const {
  if (options_.horizon != nullptr) {
    return options_.horizon->ReplicationHorizon();
  }
  // Offline mode: no writer holds the journal, so everything on disk is
  // durable by assumption. Read the live header for the epoch; the seq
  // cap is infinite (ship to EOF).
  TCH_ASSIGN_OR_RETURN(
      TailScan scan,
      ScanJournalTail(journal_path_, /*offset=*/0, /*expected_seq=*/0,
                      /*max_records=*/0, fs()));
  if (scan.format != 2) {
    return Status::Unavailable("journal " + journal_path_ +
                               " has no durable v2 header yet");
  }
  JournalHorizon horizon;
  horizon.epoch = scan.epoch;
  horizon.seq = UINT64_MAX;
  horizon.drained = true;
  return horizon;
}

Result<ReplicationBatch> ReplicationSource::Fetch(
    const ReplicationCursor& cursor, size_t max_records) {
  if (max_records == 0) max_records = 1;
  TCH_ASSIGN_OR_RETURN(JournalHorizon horizon, SampleHorizon());
  if (cursor.epoch > horizon.epoch) {
    return Status::FailedPrecondition(
        "follower cursor is at epoch " + std::to_string(cursor.epoch) +
        " but the primary's durable horizon is epoch " +
        std::to_string(horizon.epoch) +
        ": the follower holds state this primary never shipped "
        "(divergence — was a promotion not fenced?)");
  }
  const bool live = cursor.epoch == horizon.epoch;
  const uint64_t cap = live ? horizon.seq : UINT64_MAX;
  // next_seq - 1 (not cap + 1): cap is UINT64_MAX for an offline source.
  if (live && cursor.next_seq - 1 > cap) {
    return Status::FailedPrecondition(
        "follower cursor expects seq " + std::to_string(cursor.next_seq) +
        " of epoch " + std::to_string(cursor.epoch) +
        " but the primary's durable horizon is seq " + std::to_string(cap) +
        " (divergence — the follower is ahead of the primary)");
  }

  ReplicationBatch batch;
  batch.horizon = horizon;
  batch.next = cursor;
  batch.next.offset_hint = 0;

  const std::string file =
      live ? journal_path_ : Journal::RotatedPath(journal_path_, cursor.epoch);
  if (!fs()->FileExists(file)) {
    if (live) {
      // The live journal vanished mid-sample (a rotation race): the next
      // fetch re-resolves against the new horizon.
      return Status::Unavailable("live journal " + file +
                                 " disappeared (rotation in progress)");
    }
    // A checkpoint deleted this rotated epoch. If the horizon attests the
    // epoch's final seq and the cursor sits exactly past it, the follower
    // missed nothing: hand it the epoch boundary instead of forcing a
    // snapshot resync.
    if (cursor.epoch + 1 == horizon.epoch &&
        horizon.handoff_seq != JournalHorizon::kNoHandoff &&
        cursor.next_seq == horizon.handoff_seq + 1) {
      batch.epoch_complete = true;
      batch.next.epoch = cursor.epoch + 1;
      batch.next.next_seq = 1;
      batch.next.offset_hint = 0;
      return batch;
    }
    return Status::Unavailable(
        "journal epoch " + std::to_string(cursor.epoch) +
        " was checkpointed away on the primary; resync from the "
        "checkpoint snapshot");
  }

  // Scan loop. `offset`/`expect` track a position in the file; a stale
  // or damaged hinted position falls back to one full rescan from the
  // head (seqs in an epoch file start at 1, so records below
  // cursor.next_seq are skipped). The loop makes progress every
  // iteration (offset strictly advances) and stops at the horizon cap,
  // EOF, a partial tail, damage, or a full batch.
  uint64_t offset = cursor.offset_hint;
  bool hinted = offset != 0;
  uint64_t expect = hinted ? cursor.next_seq : 1;
  bool epoch_checked = false;
  bool capped = false;       // stopped at the durable horizon
  bool reached_eof = false;  // consumed every complete record in the file
  bool partial = false;      // stopped at an append in flight (live only)
  Status defect;  // damage at the stop point (complete-line corruption)

  while (batch.records.size() < max_records) {
    // Ask for exactly what this iteration can use: the records still to
    // be skipped plus the room left in the batch — so end_offset always
    // lands on the boundary of the last record we consumed.
    const uint64_t skip =
        cursor.next_seq > expect ? cursor.next_seq - expect : 0;
    const size_t want =
        static_cast<size_t>(skip) + (max_records - batch.records.size());
    Result<TailScan> scanned =
        ScanJournalTail(file, offset, offset == 0 ? 1 : expect, want, fs());
    Status failure =
        scanned.ok() ? scanned.value().error : scanned.status();
    if (failure.ok() && scanned.value().format == 2 && offset == 0 &&
        !epoch_checked) {
      epoch_checked = true;
      if (scanned.value().epoch != cursor.epoch) {
        failure = Status::Unavailable(
            "journal " + file + " carries epoch " +
            std::to_string(scanned.value().epoch) + ", cursor expects " +
            std::to_string(cursor.epoch) +
            " (the file was rotated underneath the stream)");
      }
    }
    if (!failure.ok()) {
      if (hinted) {
        // The hint may be stale (rotation swapped the file under it):
        // one authoritative rescan from the head before reporting.
        hinted = false;
        offset = 0;
        expect = 1;
        epoch_checked = false;
        batch.records.clear();
        continue;
      }
      if (failure.code() == StatusCode::kFailedPrecondition) {
        return failure;  // v1 journal: never tail-followable
      }
      defect = failure;
      break;
    }
    TailScan& scan = scanned.value();
    if (scan.format == 0) {
      partial = true;  // header not durable yet: nothing to ship, retry
      break;
    }
    for (TailRecord& rec : scan.records) {
      if (rec.seq < cursor.next_seq) continue;  // already applied
      if (rec.seq > cap) {
        // On disk beyond the durable horizon: unsynced bytes a crash
        // could still drop. Never shipped; revisit after the next sync.
        capped = true;
        break;
      }
      ReplicationRecord out;
      out.epoch = cursor.epoch;
      out.seq = rec.seq;
      out.crc = rec.crc;
      out.statement = std::move(rec.statement);
      batch.records.push_back(std::move(out));
    }
    if (capped) break;
    if (scan.partial_tail) {
      if (live) {
        partial = true;  // append in flight: retry later, NEVER salvage
      } else {
        // A rotated file never grows again, so its torn tail is damage
        // recovery has not adjudicated yet — retryable for us.
        defect = Status::Unavailable("rotated journal " + file +
                                     " has a torn tail; resync from the "
                                     "checkpoint snapshot");
      }
      break;
    }
    // The scan stopped short of `want` only at EOF (errors and partial
    // tails were handled above).
    if (scan.records.size() < want) {
      reached_eof = true;
      break;
    }
    expect = scan.records.back().seq + 1;
    offset = scan.end_offset;
  }

  if (!defect.ok() && batch.records.empty()) {
    // Damage (or a shrunk file) right at the cursor with nothing
    // shippable before it: retryable — the primary's own recovery (or
    // the next rotation) adjudicates the bytes; the follower backs off
    // and resyncs.
    if (defect.code() == StatusCode::kUnavailable) return defect;
    return Status::Unavailable(defect.message());
  }

  // Advance the cursor past what we shipped.
  if (!batch.records.empty()) {
    batch.next.next_seq = batch.records.back().seq + 1;
    // end_offset is a valid hint only when the scan consumed exactly the
    // shipped records (not when capped — the capped record was scanned
    // past it).
    if (!capped && defect.ok()) batch.next.offset_hint = offset;
  }

  if (live) {
    // Caught up = everything durable has been shipped: past the horizon
    // seq (capped counts — records beyond it are unsynced bytes), or, in
    // offline mode (no seq bound), at the end of what is on disk.
    batch.at_horizon =
        defect.ok() && (cap == UINT64_MAX ? (reached_eof || partial)
                                          : batch.next.next_seq > cap);
  } else if (reached_eof && defect.ok()) {
    // A rotated epoch consumed to EOF is complete: the primary rotated
    // it at exactly this record boundary, so the follower rolls too. (An
    // empty epoch_complete batch happens when a restarted follower had
    // already consumed the whole file, or the epoch rotated empty.)
    batch.epoch_complete = true;
    batch.next.epoch = cursor.epoch + 1;
    batch.next.next_seq = 1;
    batch.next.offset_hint = 0;
  }
  return batch;
}

Result<ReplicationSource::CheckpointImage>
ReplicationSource::FetchCheckpoint() const {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "replication source has no snapshot path configured; followers "
        "cannot resync");
  }
  if (!fs()->FileExists(options_.snapshot_path)) {
    return Status::Unavailable("primary has no checkpoint snapshot yet at " +
                               options_.snapshot_path);
  }
  TCH_ASSIGN_OR_RETURN(std::string bytes,
                       fs()->ReadFileToString(options_.snapshot_path));
  TCH_ASSIGN_OR_RETURN(SnapshotInfo info, ProbeSnapshot(bytes));
  if (!info.integrity.ok()) {
    // Refuse to propagate damage; the primary's next checkpoint rewrites
    // the file atomically, so this heals on its own.
    return Status::Unavailable("primary checkpoint failed integrity: " +
                               info.integrity.message());
  }
  CheckpointImage image;
  image.bytes = std::move(bytes);
  image.epoch = info.epoch;
  return image;
}

// ---------------------------------------------------------------------------
// Replica

Replica::Replica(std::string dir, ReplicaOptions options)
    : dir_(std::move(dir)), options_(options) {}

FileSystem* Replica::fs() const {
  return options_.fs != nullptr ? options_.fs : FileSystem::Default();
}

Result<std::unique_ptr<Replica>> Replica::Open(std::string dir,
                                               ReplicaOptions options) {
  std::unique_ptr<Replica> replica(new Replica(std::move(dir), options));
  TCH_RETURN_IF_ERROR(replica->RecoverLocal());
  return replica;
}

Status Replica::RecoverLocal() {
  // Ordinary local recovery over the shipped copy: the replica's
  // directory is a normal snapshot+journal pair, so the crash story is
  // the primary's crash story.
  RecoveryOptions ropts;
  ropts.audit = options_.audit;
  ropts.fs = options_.fs;
  RecoveryManager manager(snapshot_path(), journal_path(), ropts);
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> db = manager.LoadSnapshot(&stats);
  if (!db.ok()) return db.status();
  engine_ = std::make_unique<Engine>(std::move(db.value()),
                                     options_.max_cascade_depth);
  for (const std::string& definition : manager.snapshot_definitions()) {
    TCH_RETURN_IF_ERROR(ExecuteViaEngine(engine_.get(), definition));
  }
  TCH_RETURN_IF_ERROR(manager.ReplayJournals(
      [this](const std::string& statement) {
        return ExecuteViaEngine(engine_.get(), statement);
      },
      &stats));
  TCH_RETURN_IF_ERROR(
      RecoveryManager::Audit(&engine_->writer_db(), options_.audit, &stats));

  JournalOptions jopts;
  jopts.sync = SyncPolicy::kNone;  // Apply() syncs once per batch
  jopts.epoch = stats.next_epoch;
  jopts.fs = options_.fs;
  TCH_RETURN_IF_ERROR(journal_.Open(journal_path(), jopts));
  cursor_.epoch = journal_.epoch();
  cursor_.next_seq = journal_.last_seq() + 1;
  cursor_.offset_hint = 0;
  return Status::OK();
}

Status Replica::Apply(const ReplicationBatch& batch) {
  if (promoted_) {
    return Status::FailedPrecondition(
        "replica was promoted to primary; it no longer applies the "
        "stream");
  }
  for (const ReplicationRecord& record : batch.records) {
    // Follower-side validation: the source (or the pipe) may hand us
    // anything; every violation is a retryable stream fault, never a
    // crash and never a silent skip.
    if (record.epoch != cursor_.epoch) {
      return Status::Unavailable(
          "shipped record carries epoch " + std::to_string(record.epoch) +
          ", replica expects epoch " + std::to_string(cursor_.epoch) +
          " (epoch mismatch in the shipping stream)");
    }
    if (record.seq != cursor_.next_seq) {
      return Status::Unavailable(
          "shipped record carries seq " + std::to_string(record.seq) +
          ", replica expects seq " + std::to_string(cursor_.next_seq) +
          " (sequence gap in the shipping stream)");
    }
    if (Crc32(FramedPayload(record.seq, record.statement)) != record.crc) {
      return Status::Unavailable(
          "shipped record " + std::to_string(record.seq) + " of epoch " +
          std::to_string(record.epoch) +
          " fails its checksum (corruption in the shipping stream)");
    }
    // Journal first (the local copy is the replica's WAL), then apply.
    // The local journal assigns exactly record.seq: cursor_.next_seq ==
    // journal_.last_seq() + 1 is a class invariant.
    TCH_RETURN_IF_ERROR(journal_.Append(record.statement));
    Status applied = ExecuteViaEngine(engine_.get(), record.statement);
    if (!applied.ok()) {
      // The primary executed this statement successfully, so a replay
      // failure means the replica's state diverged. Not retryable as-is;
      // the shipper escalates to a checkpoint resync.
      return Status::Unavailable(
          "replica failed to replay shipped statement (seq " +
          std::to_string(record.seq) + "): " + applied.message() +
          " — state diverged; resync required");
    }
    ++cursor_.next_seq;
    ++statements_applied_;
  }
  // One sync per batch: a crash loses at most this batch's tail, which
  // was never acknowledged to the source (the cursor re-requests it).
  TCH_RETURN_IF_ERROR(journal_.Sync());

  if (batch.epoch_complete) {
    // Mirror the primary's rotation with a local checkpoint: rotate the
    // local journal to the incoming epoch, persist a snapshot covering
    // everything applied, prune covered epochs. Keeps the replica
    // directory bounded and its recovery cheap.
    TCH_RETURN_IF_ERROR(engine_->WithExclusive(
        [this](Database& live, ActiveDatabase& active) {
          return RecoveryManager::Checkpoint(live, &journal_,
                                             snapshot_path(), fs(),
                                             active.DefinitionStatements());
        }));
    cursor_.epoch += 1;
    cursor_.next_seq = 1;
    cursor_.offset_hint = 0;
    return Status::OK();
  }
  // Adopt the source's offset hint only when it describes exactly our
  // new position (it always does when this batch came from our cursor).
  if (batch.next.epoch == cursor_.epoch &&
      batch.next.next_seq == cursor_.next_seq) {
    cursor_.offset_hint = batch.next.offset_hint;
  } else {
    cursor_.offset_hint = 0;
  }
  return Status::OK();
}

Status Replica::RemoveLocalJournals() {
  TCH_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       fs()->ListDirectory(dir_));
  for (const std::string& name : names) {
    // The live journal, rotated epochs, and any salvage quarantine — all
    // superseded by the incoming checkpoint image.
    if (name.rfind("journal.tql", 0) == 0) {
      TCH_RETURN_IF_ERROR(fs()->RemoveFile(dir_ + "/" + name));
    }
  }
  return Status::OK();
}

Status Replica::InstallCheckpoint(
    const ReplicationSource::CheckpointImage& image) {
  if (promoted_) {
    return Status::FailedPrecondition(
        "replica was promoted to primary; it no longer resyncs");
  }
  // Parse before destroying anything: a bad image must leave the replica
  // untouched.
  TCH_ASSIGN_OR_RETURN(LoadedSnapshot loaded,
                       LoadSnapshotFromString(image.bytes));
  journal_.Close();
  TCH_RETURN_IF_ERROR(RemoveLocalJournals());
  // Persist the image atomically (tmp + sync + durable rename), exactly
  // like a local checkpoint, so a crash mid-resync recovers to either
  // the old state (journals already gone => empty) or the new image.
  const std::string tmp = snapshot_path() + ".tmp";
  {
    TCH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                         fs()->OpenWritable(tmp, /*truncate=*/true));
    TCH_RETURN_IF_ERROR(out->Append(image.bytes));
    TCH_RETURN_IF_ERROR(out->Sync());
    TCH_RETURN_IF_ERROR(out->Close());
  }
  TCH_RETURN_IF_ERROR(fs()->RenameFile(tmp, snapshot_path()));

  engine_ = std::make_unique<Engine>(std::move(loaded.db),
                                     options_.max_cascade_depth);
  for (const std::string& definition : loaded.definitions) {
    TCH_RETURN_IF_ERROR(ExecuteViaEngine(engine_.get(), definition));
  }
  JournalOptions jopts;
  jopts.sync = SyncPolicy::kNone;
  jopts.epoch = image.epoch;
  jopts.fs = options_.fs;
  TCH_RETURN_IF_ERROR(journal_.Open(journal_path(), jopts));
  cursor_.epoch = image.epoch;
  cursor_.next_seq = 1;
  cursor_.offset_hint = 0;
  ++checkpoints_installed_;
  return Status::OK();
}

Result<Replica::Promotion> Replica::Promote(EpochFence* fence) {
  if (fence == nullptr) {
    return Status::InvalidArgument("promotion requires the group's fence");
  }
  if (promoted_) {
    return Status::FailedPrecondition("replica is already promoted");
  }
  // Roll the local journal to an epoch the old primary can never have
  // written: every authority token it holds is <= the epochs it shipped
  // us, all <= cursor_.epoch. The checkpoint also persists everything
  // applied, so the new primary starts from a clean, covered state.
  TCH_RETURN_IF_ERROR(engine_->WithExclusive(
      [this](Database& live, ActiveDatabase& active) {
        return RecoveryManager::Checkpoint(live, &journal_, snapshot_path(),
                                           fs(),
                                           active.DefinitionStatements());
      }));
  Promotion promotion;
  promotion.epoch = journal_.epoch();  // cursor_.epoch + 1 after the rotate
  promotion.token = promotion.epoch;
  // Raise the barrier FIRST: from this instant the old primary's
  // enqueues and checkpoints are rejected; only then does the new
  // primary start accepting writes under its own token.
  fence->Fence(promotion.token);
  cursor_.epoch = promotion.epoch;
  cursor_.next_seq = 1;
  cursor_.offset_hint = 0;
  promoted_ = true;
  // Hand the journal file over: the new primary re-opens it through its
  // own GroupCommitJournal (and attaches the fence with this token).
  journal_.Close();
  return promotion;
}

// ---------------------------------------------------------------------------
// ReplicationShipper

ReplicationShipper::ReplicationShipper(ReplicationSource* source,
                                       Engine* primary, Options options)
    : source_(source), primary_(primary), options_(std::move(options)) {
  if (!options_.sleeper) {
    options_.sleeper = [](std::chrono::microseconds delay) {
      std::this_thread::sleep_for(delay);
    };
  }
  if (options_.resync_after_failures == 0) options_.resync_after_failures = 1;
  if (options_.max_records_per_fetch == 0) options_.max_records_per_fetch = 1;
}

void ReplicationShipper::AddReplica(Replica* replica, std::string name) {
  Follower follower;
  follower.replica = replica;
  follower.name = name;
  // Per-replica seed: identically configured followers must not share a
  // jitter stream (see SeededFor) — after a primary restart they would
  // all retry in lockstep.
  follower.backoff =
      ExponentialBackoff(ExponentialBackoff::SeededFor(options_.backoff, name));
  if (primary_ != nullptr) {
    follower.lease = primary_->RegisterReplica(std::move(name));
  }
  followers_.push_back(std::move(follower));
}

Status ReplicationShipper::PumpOnce() {
  for (Follower& follower : followers_) {
    // Sample the primary tip BEFORE the fetch: if the fetch then ends at
    // a drained horizon, every version <= tip is covered by what the
    // replica has applied (see the watermark argument in the header).
    const uint64_t tip = primary_ != nullptr ? primary_->version() : 0;
    Result<ReplicationBatch> fetched = source_->Fetch(
        follower.replica->cursor(), options_.max_records_per_fetch);
    Status failure;
    if (fetched.ok()) {
      failure = follower.replica->Apply(fetched.value());
    } else {
      failure = fetched.status();
    }
    if (failure.ok()) {
      follower.backoff.Reset();
      follower.consecutive_failures = 0;
      const ReplicationBatch& batch = fetched.value();
      follower.caught_up = batch.at_horizon && batch.horizon.drained;
      if (follower.caught_up && follower.lease != nullptr) {
        follower.lease->AdvanceReplicatedVersion(tip);
      }
      continue;
    }
    follower.caught_up = false;
    if (failure.code() != StatusCode::kUnavailable) {
      return failure;  // divergence, local I/O death: not retryable
    }
    TCH_RETURN_IF_ERROR(HandleRetryable(&follower, failure));
  }
  return Status::OK();
}

Status ReplicationShipper::HandleRetryable(Follower* follower,
                                           const Status& /*cause*/) {
  ++retries_;
  ++follower->consecutive_failures;
  options_.sleeper(follower->backoff.NextDelay());
  if (follower->consecutive_failures < options_.resync_after_failures) {
    return Status::OK();  // plain retry on the next pump
  }
  Result<ReplicationSource::CheckpointImage> image =
      source_->FetchCheckpoint();
  if (!image.ok()) {
    if (image.status().code() == StatusCode::kUnavailable) {
      // No (valid) checkpoint to resync from yet; keep backing off.
      return Status::OK();
    }
    return image.status();
  }
  TCH_RETURN_IF_ERROR(follower->replica->InstallCheckpoint(image.value()));
  ++resyncs_;
  follower->consecutive_failures = 0;
  follower->backoff.Reset();
  return Status::OK();
}

Status ReplicationShipper::DrainAll(size_t max_rounds) {
  for (size_t round = 0; round < max_rounds; ++round) {
    TCH_RETURN_IF_ERROR(PumpOnce());
    bool all_caught_up = true;
    for (const Follower& follower : followers_) {
      all_caught_up = all_caught_up && follower.caught_up;
    }
    if (all_caught_up) return Status::OK();
  }
  return Status::Internal(
      "replication drain did not converge within " +
      std::to_string(max_rounds) +
      " rounds (a follower keeps failing or the primary keeps moving)");
}

}  // namespace tchimera
