#include "storage/deserializer.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/string_util.h"
#include "core/types/type_parser.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/value_parser.h"

namespace tchimera {
namespace {

Status Corrupt(size_t line_no, const std::string& what) {
  return Status::Corruption("snapshot line " + std::to_string(line_no) +
                            ": " + what);
}

class SnapshotReader {
 public:
  SnapshotReader(std::istream* in, int version)
      : in_(in), version_(version) {}

  Result<std::unique_ptr<Database>> Load() {
    auto db = std::make_unique<Database>();
    TCH_ASSIGN_OR_RETURN(std::string header, NextLine());
    if (header != "TCHIMERA-SNAPSHOT " + std::to_string(version_)) {
      return Corrupt(line_no_, "bad header '" + header + "'");
    }
    TimePoint now = 0;
    uint64_t next_oid = 1;
    size_t records = 0;
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "EOF" && version_ == 1) break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "CHECKSUM" && version_ >= 2) {
        // Already verified by the caller; the record count is
        // cross-checked as a parser self-test.
        size_t footer_records = std::strtoull(rest.c_str(), nullptr, 10);
        if (footer_records != records) {
          return Corrupt(line_no_, "record count mismatch");
        }
        TCH_ASSIGN_OR_RETURN(std::string eof_line, NextLine());
        if (eof_line != "EOF") {
          return Corrupt(line_no_, "missing EOF terminator");
        }
        break;
      }
      if (tag == "NOW") {
        now = std::strtoll(rest.c_str(), nullptr, 10);
      } else if (tag == "EPOCH") {
        // Checkpoint ordering metadata; see ProbeSnapshot / recovery.h.
      } else if (tag == "NEXT-OID") {
        next_oid = std::strtoull(rest.c_str(), nullptr, 10);
      } else if (tag == "CLASS") {
        ++records;
        TCH_RETURN_IF_ERROR(LoadClass(rest, db.get()));
      } else if (tag == "OBJECT") {
        ++records;
        TCH_RETURN_IF_ERROR(LoadObject(rest, db.get()));
      } else if (tag == "DEFINE" && version_ >= 3) {
        // Carried, not applied: trigger/constraint statements address the
        // execution facade, which the reader has no access to.
        definitions_.push_back(rest);
      } else if (tag == "INDEX" && version_ >= 4) {
        // Applied immediately: INDEX records follow every CLASS and
        // OBJECT record, so CreateIndex validates against the restored
        // schema and rebuilds the index data from the restored objects
        // (only definitions are persisted — data is a pure function of
        // object state; docs/INDEXING.md).
        TCH_RETURN_IF_ERROR(LoadIndex(rest, db.get()));
      } else {
        return Corrupt(line_no_, "unexpected record '" + tag + "'");
      }
    }
    db->RestoreClock(now);
    db->RestoreNextOid(next_oid);
    return db;
  }

  std::vector<std::string> take_definitions() {
    return std::move(definitions_);
  }

 private:
  Result<std::string> NextLine() {
    std::string line;
    if (!std::getline(*in_, line)) {
      return Corrupt(line_no_, "unexpected end of snapshot");
    }
    ++line_no_;
    return line;
  }

  static std::pair<std::string, std::string> SplitTag(
      const std::string& line) {
    size_t sp = line.find(' ');
    if (sp == std::string::npos) return {line, ""};
    return {line.substr(0, sp), line.substr(sp + 1)};
  }

  // "name rest" -> (name, rest).
  static std::pair<std::string, std::string> SplitName(
      const std::string& text) {
    return SplitTag(text);
  }

  Result<Interval> ParseIntervalText(const std::string& text) {
    // "[a,b]" or "[]".
    if (text == "[]") return Interval::Empty();
    if (text.size() < 5 || text.front() != '[' || text.back() != ']') {
      return Corrupt(line_no_, "bad interval '" + text + "'");
    }
    std::vector<std::string> parts =
        Split(text.substr(1, text.size() - 2), ',');
    if (parts.size() != 2) {
      return Corrupt(line_no_, "bad interval '" + text + "'");
    }
    auto parse_instant = [](const std::string& s) -> TimePoint {
      return s == "now" ? kNow : std::strtoll(s.c_str(), nullptr, 10);
    };
    return Interval(parse_instant(parts[0]), parse_instant(parts[1]));
  }

  Result<TemporalFunction> ParseTemporalText(const std::string& text,
                                             const Type* hint) {
    TCH_ASSIGN_OR_RETURN(Value v, ParseValue(text, hint));
    if (v.kind() == ValueKind::kSet && v.Elements().empty()) {
      return TemporalFunction();  // "{}" without a usable hint
    }
    if (v.kind() != ValueKind::kTemporal) {
      return Corrupt(line_no_, "expected a temporal value, got '" + text +
                                   "'");
    }
    return v.AsTemporal();
  }

  Result<std::vector<const Type*>> ParseTypeList(const std::string& text) {
    std::vector<const Type*> out;
    if (text == "-") return out;
    // Types can nest commas inside parentheses; split at depth 0.
    std::string cur;
    int depth = 0;
    for (char c : text) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(cur));
        out.push_back(t);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) {
      TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(cur));
      out.push_back(t);
    }
    return out;
  }

  Status LoadClass(const std::string& name, Database* db) {
    ClassSpec spec;
    spec.name = name;
    Interval lifespan;
    TemporalFunction ext, pext;
    std::vector<Value::Field> c_values;
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "END") break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "SUPERS") {
        if (rest != "-") spec.superclasses = Split(rest, ',');
      } else if (tag == "LIFESPAN") {
        TCH_ASSIGN_OR_RETURN(lifespan, ParseIntervalText(rest));
      } else if (tag == "ATTR" || tag == "CATTR") {
        auto [attr_name, type_text] = SplitName(rest);
        TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(type_text));
        (tag == "ATTR" ? spec.attributes : spec.c_attributes)
            .push_back({attr_name, t});
      } else if (tag == "METHOD" || tag == "CMETHOD") {
        auto [m_name, sig] = SplitName(rest);
        auto [ins_text, out_text] = SplitName(sig);
        MethodDef m;
        m.name = m_name;
        TCH_ASSIGN_OR_RETURN(m.inputs, ParseTypeList(ins_text));
        TCH_ASSIGN_OR_RETURN(m.output, ParseType(out_text));
        (tag == "METHOD" ? spec.methods : spec.c_methods)
            .push_back(std::move(m));
      } else if (tag == "CATTRVAL") {
        auto [attr_name, value_text] = SplitName(rest);
        const Type* hint = nullptr;
        for (const AttributeDef& a : spec.c_attributes) {
          if (a.name == attr_name) hint = a.type;
        }
        TCH_ASSIGN_OR_RETURN(Value v, ParseValue(value_text, hint));
        c_values.emplace_back(attr_name, std::move(v));
      } else if (tag == "EXT" || tag == "PEXT") {
        const Type* hint =
            types::Temporal(types::SetOf(types::Any())).value();
        TCH_ASSIGN_OR_RETURN(TemporalFunction f,
                             ParseTemporalText(rest, hint));
        (tag == "EXT" ? ext : pext) = std::move(f);
      } else {
        return Corrupt(line_no_, "unexpected class record '" + tag + "'");
      }
    }
    return db->RestoreClass(spec, lifespan, std::move(ext), std::move(pext),
                            std::move(c_values));
  }

  // "INDEX <name> <kind> <class> <attr|->" (v4).
  Status LoadIndex(const std::string& rest, Database* db) {
    auto [name, after_name] = SplitName(rest);
    auto [kind_text, after_kind] = SplitName(after_name);
    auto [class_name, attr_text] = SplitName(after_kind);
    IndexDef def;
    def.name = name;
    def.class_name = class_name;
    def.attr = attr_text == "-" ? "" : attr_text;
    if (kind_text == "value") {
      def.kind = IndexKind::kValue;
    } else if (kind_text == "lifespan") {
      def.kind = IndexKind::kLifespan;
    } else {
      return Corrupt(line_no_, "bad index kind '" + kind_text + "'");
    }
    Status s = db->CreateIndex(def);
    if (!s.ok()) {
      return Corrupt(line_no_, "index '" + name +
                                   "' failed to restore: " + s.message());
    }
    return Status::OK();
  }

  Status LoadObject(const std::string& header, Database* db) {
    auto [oid_text, lifespan_text] = SplitName(header);
    Oid oid{std::strtoull(oid_text.c_str(), nullptr, 10)};
    TCH_ASSIGN_OR_RETURN(Interval lifespan,
                         ParseIntervalText(lifespan_text));
    TemporalFunction class_history;
    std::vector<Value::Field> attrs;
    // The object's class (for attribute type hints) is known only after
    // CLASSHIST; hints matter only for the "{}" ambiguity, so resolve
    // hints lazily from the restored schema.
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "END") break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "CLASSHIST") {
        const Type* hint = types::Temporal(types::String()).value();
        TCH_ASSIGN_OR_RETURN(class_history, ParseTemporalText(rest, hint));
      } else if (tag == "ATTRVAL") {
        auto [attr_name, marked] = SplitName(rest);
        auto [marker, value_text] = SplitName(marked);
        if (marker != "T" && marker != "S") {
          return Corrupt(line_no_, "bad ATTRVAL marker '" + marker + "'");
        }
        const Type* hint = nullptr;
        if (!class_history.empty()) {
          const auto& last = class_history.segments().back();
          if (last.value.kind() == ValueKind::kString) {
            const ClassDef* cls = db->GetClass(last.value.AsString());
            if (cls != nullptr) {
              const AttributeDef* a = cls->FindAttribute(attr_name);
              if (a != nullptr) hint = a->type;
            }
          }
        }
        TCH_ASSIGN_OR_RETURN(Value v, ParseValue(value_text, hint));
        if (marker == "T" && v.kind() != ValueKind::kTemporal) {
          if (v.kind() == ValueKind::kSet && v.Elements().empty()) {
            v = Value::Temporal(TemporalFunction());
          } else {
            return Corrupt(line_no_, "attribute '" + attr_name +
                                         "' marked temporal but value is " +
                                         ValueKindName(v.kind()));
          }
        }
        attrs.emplace_back(attr_name, std::move(v));
      } else {
        return Corrupt(line_no_, "unexpected object record '" + tag + "'");
      }
    }
    return db->RestoreObject(oid, lifespan, std::move(class_history),
                             std::move(attrs));
  }

  std::istream* in_;
  int version_;
  size_t line_no_ = 0;
  std::vector<std::string> definitions_;
};

// Returns the first line of `text` (without the newline).
std::string FirstLine(const std::string& text) {
  size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

}  // namespace

Result<SnapshotInfo> ProbeSnapshot(const std::string& text) {
  SnapshotInfo info;
  info.byte_size = text.size();
  info.integrity = Status::OK();
  const std::string kMagic = "TCHIMERA-SNAPSHOT ";
  std::string header = FirstLine(text);
  if (header.rfind(kMagic, 0) != 0) {
    info.integrity =
        Status::Corruption("bad snapshot header '" + header + "'");
    return info;
  }
  std::string version_text = header.substr(kMagic.size());
  if (version_text == "1") {
    info.version = 1;
  } else if (version_text == "2") {
    info.version = 2;
  } else if (version_text == "3") {
    info.version = 3;
  } else if (version_text == "4") {
    info.version = 4;
  } else {
    info.integrity = Status::Corruption("unsupported snapshot version '" +
                                        version_text + "'");
    return info;
  }
  const std::string kEof = "EOF\n";
  if (text.size() < header.size() + 1 + kEof.size() ||
      text.compare(text.size() - kEof.size(), kEof.size(), kEof) != 0) {
    info.integrity =
        Status::Corruption("snapshot is truncated (missing EOF terminator)");
    return info;
  }
  if (info.version == 1) return info;  // v1 has no checksum to verify.

  // v2+ footer: "...body...\nCHECKSUM <records> <crc32>\nEOF\n". The CRC
  // covers every byte of the body, newline included.
  size_t footer_nl = text.rfind("\nCHECKSUM ");
  if (footer_nl == std::string::npos) {
    info.integrity = Status::Corruption("snapshot has no CHECKSUM footer");
    return info;
  }
  size_t footer_start = footer_nl + 1;
  size_t footer_end = text.find('\n', footer_start);
  if (footer_end == std::string::npos ||
      text.substr(footer_end + 1) != kEof) {
    info.integrity =
        Status::Corruption("snapshot footer is not followed by EOF");
    return info;
  }
  std::istringstream footer(
      text.substr(footer_start, footer_end - footer_start));
  std::string tag, records_text, crc_text;
  footer >> tag >> records_text >> crc_text;
  uint32_t want_crc = 0;
  char* end = nullptr;
  unsigned long long records =
      std::strtoull(records_text.c_str(), &end, 10);
  if (records_text.empty() || end == nullptr || *end != '\0' ||
      !ParseCrc32Hex(crc_text, &want_crc)) {
    info.integrity = Status::Corruption("malformed CHECKSUM footer");
    return info;
  }
  info.records = static_cast<size_t>(records);
  uint32_t got_crc = Crc32(std::string_view(text).substr(0, footer_start));
  if (got_crc != want_crc) {
    info.integrity = Status::Corruption(
        "snapshot checksum mismatch: footer says " + crc_text +
        ", body hashes to " + Crc32Hex(got_crc));
    return info;
  }
  // The body is now known intact, so the EPOCH line (if present) is
  // exactly as written.
  size_t second = header.size() + 1;
  std::string line2 = FirstLine(text.substr(second));
  const std::string kEpoch = "EPOCH ";
  if (line2.rfind(kEpoch, 0) == 0) {
    info.epoch = std::strtoull(line2.c_str() + kEpoch.size(), nullptr, 10);
  }
  return info;
}

Result<SnapshotInfo> ProbeSnapshotFile(const std::string& path,
                                       FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  TCH_ASSIGN_OR_RETURN(std::string text, fs->ReadFileToString(path));
  return ProbeSnapshot(text);
}

Result<std::unique_ptr<Database>> LoadDatabase(std::istream* in) {
  std::ostringstream buf;
  buf << in->rdbuf();
  if (!in->good() && !in->eof()) {
    return Status::IoError("failed to read snapshot stream");
  }
  return LoadDatabaseFromString(buf.str());
}

Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path) {
  TCH_ASSIGN_OR_RETURN(std::string text,
                       FileSystem::Default()->ReadFileToString(path));
  return LoadDatabaseFromString(text);
}

Result<std::unique_ptr<Database>> LoadDatabaseFromString(
    const std::string& text) {
  TCH_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadSnapshotFromString(text));
  return std::move(loaded.db);
}

Result<LoadedSnapshot> LoadSnapshotFromString(const std::string& text) {
  TCH_ASSIGN_OR_RETURN(SnapshotInfo info, ProbeSnapshot(text));
  // Integrity failures (bad header, truncation, checksum mismatch) are
  // surfaced before any database state is built.
  TCH_RETURN_IF_ERROR(info.integrity);
  std::istringstream in(text);
  SnapshotReader reader(&in, info.version);
  LoadedSnapshot loaded;
  TCH_ASSIGN_OR_RETURN(loaded.db, reader.Load());
  loaded.definitions = reader.take_definitions();
  return loaded;
}

}  // namespace tchimera
