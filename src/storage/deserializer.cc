#include "storage/deserializer.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "core/types/type_parser.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/value_parser.h"

namespace tchimera {
namespace {

Status Corrupt(size_t line_no, const std::string& what) {
  return Status::Corruption("snapshot line " + std::to_string(line_no) +
                            ": " + what);
}

class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream* in) : in_(in) {}

  Result<std::unique_ptr<Database>> Load() {
    auto db = std::make_unique<Database>();
    TCH_ASSIGN_OR_RETURN(std::string header, NextLine());
    if (header != "TCHIMERA-SNAPSHOT 1") {
      return Corrupt(line_no_, "bad header '" + header + "'");
    }
    TimePoint now = 0;
    uint64_t next_oid = 1;
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "EOF") break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "NOW") {
        now = std::strtoll(rest.c_str(), nullptr, 10);
      } else if (tag == "NEXT-OID") {
        next_oid = std::strtoull(rest.c_str(), nullptr, 10);
      } else if (tag == "CLASS") {
        TCH_RETURN_IF_ERROR(LoadClass(rest, db.get()));
      } else if (tag == "OBJECT") {
        TCH_RETURN_IF_ERROR(LoadObject(rest, db.get()));
      } else {
        return Corrupt(line_no_, "unexpected record '" + tag + "'");
      }
    }
    db->RestoreClock(now);
    db->RestoreNextOid(next_oid);
    return db;
  }

 private:
  Result<std::string> NextLine() {
    std::string line;
    if (!std::getline(*in_, line)) {
      return Corrupt(line_no_, "unexpected end of snapshot");
    }
    ++line_no_;
    return line;
  }

  static std::pair<std::string, std::string> SplitTag(
      const std::string& line) {
    size_t sp = line.find(' ');
    if (sp == std::string::npos) return {line, ""};
    return {line.substr(0, sp), line.substr(sp + 1)};
  }

  // "name rest" -> (name, rest).
  static std::pair<std::string, std::string> SplitName(
      const std::string& text) {
    return SplitTag(text);
  }

  Result<Interval> ParseIntervalText(const std::string& text) {
    // "[a,b]" or "[]".
    if (text == "[]") return Interval::Empty();
    if (text.size() < 5 || text.front() != '[' || text.back() != ']') {
      return Corrupt(line_no_, "bad interval '" + text + "'");
    }
    std::vector<std::string> parts =
        Split(text.substr(1, text.size() - 2), ',');
    if (parts.size() != 2) {
      return Corrupt(line_no_, "bad interval '" + text + "'");
    }
    auto parse_instant = [](const std::string& s) -> TimePoint {
      return s == "now" ? kNow : std::strtoll(s.c_str(), nullptr, 10);
    };
    return Interval(parse_instant(parts[0]), parse_instant(parts[1]));
  }

  Result<TemporalFunction> ParseTemporalText(const std::string& text,
                                             const Type* hint) {
    TCH_ASSIGN_OR_RETURN(Value v, ParseValue(text, hint));
    if (v.kind() == ValueKind::kSet && v.Elements().empty()) {
      return TemporalFunction();  // "{}" without a usable hint
    }
    if (v.kind() != ValueKind::kTemporal) {
      return Corrupt(line_no_, "expected a temporal value, got '" + text +
                                   "'");
    }
    return v.AsTemporal();
  }

  Result<std::vector<const Type*>> ParseTypeList(const std::string& text) {
    std::vector<const Type*> out;
    if (text == "-") return out;
    // Types can nest commas inside parentheses; split at depth 0.
    std::string cur;
    int depth = 0;
    for (char c : text) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(cur));
        out.push_back(t);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) {
      TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(cur));
      out.push_back(t);
    }
    return out;
  }

  Status LoadClass(const std::string& name, Database* db) {
    ClassSpec spec;
    spec.name = name;
    Interval lifespan;
    TemporalFunction ext, pext;
    std::vector<Value::Field> c_values;
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "END") break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "SUPERS") {
        if (rest != "-") spec.superclasses = Split(rest, ',');
      } else if (tag == "LIFESPAN") {
        TCH_ASSIGN_OR_RETURN(lifespan, ParseIntervalText(rest));
      } else if (tag == "ATTR" || tag == "CATTR") {
        auto [attr_name, type_text] = SplitName(rest);
        TCH_ASSIGN_OR_RETURN(const Type* t, ParseType(type_text));
        (tag == "ATTR" ? spec.attributes : spec.c_attributes)
            .push_back({attr_name, t});
      } else if (tag == "METHOD" || tag == "CMETHOD") {
        auto [m_name, sig] = SplitName(rest);
        auto [ins_text, out_text] = SplitName(sig);
        MethodDef m;
        m.name = m_name;
        TCH_ASSIGN_OR_RETURN(m.inputs, ParseTypeList(ins_text));
        TCH_ASSIGN_OR_RETURN(m.output, ParseType(out_text));
        (tag == "METHOD" ? spec.methods : spec.c_methods)
            .push_back(std::move(m));
      } else if (tag == "CATTRVAL") {
        auto [attr_name, value_text] = SplitName(rest);
        const Type* hint = nullptr;
        for (const AttributeDef& a : spec.c_attributes) {
          if (a.name == attr_name) hint = a.type;
        }
        TCH_ASSIGN_OR_RETURN(Value v, ParseValue(value_text, hint));
        c_values.emplace_back(attr_name, std::move(v));
      } else if (tag == "EXT" || tag == "PEXT") {
        const Type* hint =
            types::Temporal(types::SetOf(types::Any())).value();
        TCH_ASSIGN_OR_RETURN(TemporalFunction f,
                             ParseTemporalText(rest, hint));
        (tag == "EXT" ? ext : pext) = std::move(f);
      } else {
        return Corrupt(line_no_, "unexpected class record '" + tag + "'");
      }
    }
    return db->RestoreClass(spec, lifespan, std::move(ext), std::move(pext),
                            std::move(c_values));
  }

  Status LoadObject(const std::string& header, Database* db) {
    auto [oid_text, lifespan_text] = SplitName(header);
    Oid oid{std::strtoull(oid_text.c_str(), nullptr, 10)};
    TCH_ASSIGN_OR_RETURN(Interval lifespan,
                         ParseIntervalText(lifespan_text));
    TemporalFunction class_history;
    std::vector<Value::Field> attrs;
    // The object's class (for attribute type hints) is known only after
    // CLASSHIST; hints matter only for the "{}" ambiguity, so resolve
    // hints lazily from the restored schema.
    while (true) {
      TCH_ASSIGN_OR_RETURN(std::string line, NextLine());
      if (line == "END") break;
      auto [tag, rest] = SplitTag(line);
      if (tag == "CLASSHIST") {
        const Type* hint = types::Temporal(types::String()).value();
        TCH_ASSIGN_OR_RETURN(class_history, ParseTemporalText(rest, hint));
      } else if (tag == "ATTRVAL") {
        auto [attr_name, marked] = SplitName(rest);
        auto [marker, value_text] = SplitName(marked);
        if (marker != "T" && marker != "S") {
          return Corrupt(line_no_, "bad ATTRVAL marker '" + marker + "'");
        }
        const Type* hint = nullptr;
        if (!class_history.empty()) {
          const auto& last = class_history.segments().back();
          if (last.value.kind() == ValueKind::kString) {
            const ClassDef* cls = db->GetClass(last.value.AsString());
            if (cls != nullptr) {
              const AttributeDef* a = cls->FindAttribute(attr_name);
              if (a != nullptr) hint = a->type;
            }
          }
        }
        TCH_ASSIGN_OR_RETURN(Value v, ParseValue(value_text, hint));
        if (marker == "T" && v.kind() != ValueKind::kTemporal) {
          if (v.kind() == ValueKind::kSet && v.Elements().empty()) {
            v = Value::Temporal(TemporalFunction());
          } else {
            return Corrupt(line_no_, "attribute '" + attr_name +
                                         "' marked temporal but value is " +
                                         ValueKindName(v.kind()));
          }
        }
        attrs.emplace_back(attr_name, std::move(v));
      } else {
        return Corrupt(line_no_, "unexpected object record '" + tag + "'");
      }
    }
    return db->RestoreObject(oid, lifespan, std::move(class_history),
                             std::move(attrs));
  }

  std::istream* in_;
  size_t line_no_ = 0;
};

}  // namespace

Result<std::unique_ptr<Database>> LoadDatabase(std::istream* in) {
  return SnapshotReader(in).Load();
}

Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  return LoadDatabase(&in);
}

Result<std::unique_ptr<Database>> LoadDatabaseFromString(
    const std::string& text) {
  std::istringstream in(text);
  return LoadDatabase(&in);
}

}  // namespace tchimera
