#include "storage/journal.h"

#include <cctype>
#include <cstdio>
#include <limits>

#include "common/string_util.h"

namespace tchimera {
namespace {

// Statements that change database state and therefore must be journaled.
bool IsMutatingStatement(std::string_view statement) {
  std::string_view s = StripWhitespace(statement);
  std::string head;
  for (char c : s) {
    if (head.size() >= 8) break;
    head.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (std::string_view kw :
       {"define", "drop", "create", "update", "migrate", "delete", "tick",
        "advance"}) {
    if (StartsWith(head, kw)) return true;
  }
  return false;
}

}  // namespace

Status Journal::Open(const std::string& path) {
  if (out_.is_open()) return Status::FailedPrecondition("journal is open");
  out_.open(path, std::ios::app);
  if (!out_.is_open()) {
    return Status::IoError("cannot open journal " + path);
  }
  path_ = path;
  return Status::OK();
}

Status Journal::Append(std::string_view statement) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("journal is not open");
  }
  // One statement per line; statements cannot contain raw newlines
  // (string literals escape them), so the framing is unambiguous.
  out_ << statement << "\n";
  out_.flush();
  if (!out_.good()) return Status::IoError("journal append failed");
  ++appended_;
  return Status::OK();
}

Status Journal::Truncate() {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("journal is not open");
  }
  out_.close();
  out_.open(path_, std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot truncate journal " + path_);
  }
  appended_ = 0;
  return Status::OK();
}

void Journal::Close() {
  if (out_.is_open()) out_.close();
}

Result<size_t> Journal::Replay(const std::string& path, Interpreter* interp) {
  return ReplayPrefix(path, interp, std::numeric_limits<size_t>::max());
}

Result<size_t> Journal::ReplayPrefix(const std::string& path,
                                     Interpreter* interp,
                                     size_t max_statements) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open journal " + path);
  }
  size_t applied = 0;
  std::string line;
  size_t line_no = 0;
  while (applied < max_statements && std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    Result<std::string> r = interp->Execute(line);
    if (!r.ok()) {
      return Status::Corruption("journal " + path + " line " +
                                std::to_string(line_no) +
                                " failed to replay: " + r.status().ToString());
    }
    ++applied;
  }
  return applied;
}

JournaledDatabase::JournaledDatabase(const std::string& journal_path)
    : interp_(&db_) {
  status_ = journal_.Open(journal_path);
}

Result<std::string> JournaledDatabase::Execute(std::string_view statement) {
  TCH_RETURN_IF_ERROR(status_);
  if (IsMutatingStatement(statement)) {
    TCH_RETURN_IF_ERROR(journal_.Append(statement));
  }
  return interp_.Execute(statement);
}

}  // namespace tchimera
