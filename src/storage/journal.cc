#include "storage/journal.h"

#include <cctype>
#include <limits>

#include "common/crc32.h"
#include "common/string_util.h"

namespace tchimera {
namespace {

constexpr std::string_view kJournalMagic = "TCHIMERA-JOURNAL";

// Strict all-digits parse (no sign, no trailing junk).
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Consumes the next space-delimited token of `line` starting at `pos`.
bool NextToken(std::string_view line, size_t* pos, std::string_view* token) {
  size_t start = *pos;
  size_t space = line.find(' ', start);
  if (space == std::string_view::npos) return false;
  *token = line.substr(start, space - start);
  *pos = space + 1;
  return true;
}

std::string RecordPayload(uint64_t seq, std::string_view statement) {
  std::string payload = std::to_string(seq);
  payload.push_back(' ');
  payload.append(statement);
  return payload;
}

// Parses the v2 records of `content` starting at `offset` into `scan`.
void ScanV2Records(std::string_view content, size_t offset,
                   JournalScan* scan) {
  scan->valid_bytes = offset;
  uint64_t expected_seq = 1;
  while (offset < content.size()) {
    size_t newline = content.find('\n', offset);
    if (newline == std::string_view::npos) {
      scan->tail_error = Status::Corruption("torn record (no newline)");
      break;
    }
    std::string_view line = content.substr(offset, newline - offset);
    size_t pos = 0;
    std::string_view tag, seq_text, len_text, crc_text;
    uint64_t seq = 0, len = 0;
    uint32_t crc = 0;
    if (!NextToken(line, &pos, &tag) || tag != "R" ||
        !NextToken(line, &pos, &seq_text) || !ParseU64(seq_text, &seq) ||
        !NextToken(line, &pos, &len_text) || !ParseU64(len_text, &len) ||
        !NextToken(line, &pos, &crc_text) || !ParseCrc32Hex(crc_text, &crc)) {
      scan->tail_error = Status::Corruption("malformed record framing");
      break;
    }
    std::string_view statement = line.substr(pos);
    if (statement.size() != len) {
      scan->tail_error = Status::Corruption(
          "record length mismatch (framed " + std::to_string(len) +
          ", actual " + std::to_string(statement.size()) + ")");
      break;
    }
    if (seq != expected_seq) {
      scan->tail_error = Status::Corruption(
          "sequence gap (expected " + std::to_string(expected_seq) +
          ", found " + std::to_string(seq) + ")");
      break;
    }
    if (Crc32(RecordPayload(seq, statement)) != crc) {
      scan->tail_error = Status::Corruption(
          "checksum mismatch at record " + std::to_string(seq));
      break;
    }
    scan->statements.emplace_back(statement);
    scan->last_seq = seq;
    ++expected_seq;
    offset = newline + 1;
    scan->valid_bytes = offset;
  }
  scan->dropped_bytes = content.size() - scan->valid_bytes;
}

}  // namespace

std::string FirstTokenLower(std::string_view statement) {
  std::string_view s = StripWhitespace(statement);
  size_t end = 0;
  while (end < s.size() &&
         std::isspace(static_cast<unsigned char>(s[end])) == 0) {
    ++end;
  }
  std::string token;
  token.reserve(end);
  for (char c : s.substr(0, end)) {
    token.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return token;
}

bool IsMutatingStatement(std::string_view statement) {
  std::string token = FirstTokenLower(statement);
  for (std::string_view kw : {"define", "drop", "create", "update",
                              "migrate", "delete", "tick", "advance"}) {
    if (token == kw) return true;
  }
  return false;
}

Result<JournalScan> ScanJournal(const std::string& path, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  TCH_ASSIGN_OR_RETURN(std::string content, fs->ReadFileToString(path));
  JournalScan scan;
  if (content.empty()) return scan;  // format 0: a fresh, empty journal

  // v2 files start with the magic; a file whose bytes are a proper prefix
  // of the magic is a v2 header torn at creation time.
  size_t probe = std::min(content.size(), kJournalMagic.size());
  if (std::string_view(content).substr(0, probe) !=
      kJournalMagic.substr(0, probe)) {
    // v1: bare statements, one per line, nothing to verify.
    scan.format = 1;
    size_t offset = 0;
    while (offset < content.size()) {
      size_t newline = content.find('\n', offset);
      size_t end = newline == std::string::npos ? content.size() : newline;
      std::string_view line =
          std::string_view(content).substr(offset, end - offset);
      if (!StripWhitespace(line).empty()) scan.statements.emplace_back(line);
      offset = newline == std::string::npos ? content.size() : newline + 1;
    }
    scan.valid_bytes = content.size();
    return scan;
  }

  scan.format = 2;
  size_t header_end = content.find('\n');
  if (header_end == std::string::npos) {
    scan.tail_error = Status::Corruption("torn journal header");
    scan.dropped_bytes = content.size();
    return scan;
  }
  std::string_view header = std::string_view(content).substr(0, header_end);
  size_t pos = 0;
  std::string_view magic, version_text;
  uint64_t version = 0;
  if (!NextToken(header, &pos, &magic) || magic != kJournalMagic ||
      !NextToken(header, &pos, &version_text) ||
      !ParseU64(version_text, &version)) {
    scan.tail_error = Status::Corruption("malformed journal header");
    scan.dropped_bytes = content.size();
    return scan;
  }
  if (version != 2) {
    return Status::Corruption("unsupported journal version " +
                              std::to_string(version) + " in " + path);
  }
  if (!ParseU64(header.substr(pos), &scan.epoch)) {
    scan.tail_error = Status::Corruption("malformed journal epoch");
    scan.dropped_bytes = content.size();
    return scan;
  }
  ScanV2Records(content, header_end + 1, &scan);
  return scan;
}

Result<TailScan> ScanJournalTail(const std::string& path, uint64_t offset,
                                 uint64_t expected_seq, size_t max_records,
                                 FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  TCH_ASSIGN_OR_RETURN(std::string content, fs->ReadFileToString(path));
  TailScan scan;
  if (offset > content.size()) {
    // The file shrank below our position: it was rotated or truncated
    // underneath us. Not corruption — the caller re-resolves its cursor.
    scan.error = Status::Unavailable(
        "journal " + path + " is shorter (" +
        std::to_string(content.size()) + " bytes) than the read offset " +
        std::to_string(offset) + "; the file was rotated or truncated");
    return scan;
  }
  if (offset == 0) {
    if (content.empty()) {
      // Created but header not yet durable — an open in flight.
      scan.partial_tail = true;
      return scan;
    }
    size_t probe = std::min(content.size(), kJournalMagic.size());
    if (std::string_view(content).substr(0, probe) !=
        kJournalMagic.substr(0, probe)) {
      return Status::FailedPrecondition(
          "journal " + path + " is v1 (unframed); v1 journals cannot be "
          "tail-followed");
    }
    size_t header_end = content.find('\n');
    if (header_end == std::string::npos) {
      // The header line itself is mid-append.
      scan.partial_tail = true;
      return scan;
    }
    std::string_view header = std::string_view(content).substr(0, header_end);
    size_t pos = 0;
    std::string_view magic, version_text;
    uint64_t version = 0;
    if (!NextToken(header, &pos, &magic) || magic != kJournalMagic ||
        !NextToken(header, &pos, &version_text) ||
        !ParseU64(version_text, &version) || version != 2 ||
        !ParseU64(header.substr(pos), &scan.epoch)) {
      scan.error = Status::Corruption("malformed journal header in " + path);
      return scan;
    }
    scan.format = 2;
    offset = header_end + 1;
  } else {
    scan.format = 2;
  }
  scan.end_offset = offset;

  std::string_view body(content);
  while (offset < body.size() && scan.records.size() < max_records) {
    size_t newline = body.find('\n', offset);
    if (newline == std::string_view::npos) {
      // An append in flight (or a torn tail recovery has not yet seen):
      // retryable, never salvageable from here.
      scan.partial_tail = true;
      break;
    }
    std::string_view line = body.substr(offset, newline - offset);
    size_t pos = 0;
    std::string_view tag, seq_text, len_text, crc_text;
    uint64_t seq = 0, len = 0;
    uint32_t crc = 0;
    if (!NextToken(line, &pos, &tag) || tag != "R" ||
        !NextToken(line, &pos, &seq_text) || !ParseU64(seq_text, &seq) ||
        !NextToken(line, &pos, &len_text) || !ParseU64(len_text, &len) ||
        !NextToken(line, &pos, &crc_text) || !ParseCrc32Hex(crc_text, &crc)) {
      // A complete line that does not frame: real damage, not a torn
      // append (torn appends have no newline).
      scan.error = Status::Corruption("malformed record framing at offset " +
                                      std::to_string(offset) + " in " + path);
      break;
    }
    std::string_view statement = line.substr(pos);
    if (statement.size() != len) {
      scan.error = Status::Corruption(
          "record length mismatch at offset " + std::to_string(offset) +
          " in " + path);
      break;
    }
    if (expected_seq != 0 && seq != expected_seq) {
      scan.error = Status::Corruption(
          "sequence discontinuity in " + path + " (expected " +
          std::to_string(expected_seq) + ", found " + std::to_string(seq) +
          ")");
      break;
    }
    if (Crc32(RecordPayload(seq, statement)) != crc) {
      scan.error = Status::Corruption("checksum mismatch at record " +
                                      std::to_string(seq) + " in " + path);
      break;
    }
    TailRecord record;
    record.seq = seq;
    record.crc = crc;
    record.statement.assign(statement);
    scan.records.push_back(std::move(record));
    expected_seq = seq + 1;
    offset = newline + 1;
    scan.end_offset = offset;
  }
  return scan;
}

Result<JournalScan> SalvageJournal(const std::string& path, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  TCH_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(path, fs));
  if (scan.format != 2 || scan.tail_error.ok() || scan.dropped_bytes == 0) {
    return scan;
  }
  TCH_ASSIGN_OR_RETURN(std::string content, fs->ReadFileToString(path));
  std::string_view tail =
      std::string_view(content).substr(scan.valid_bytes);
  {
    TCH_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> corrupt,
        fs->OpenWritable(path + ".corrupt", /*truncate=*/false));
    TCH_RETURN_IF_ERROR(corrupt->Append(tail));
    TCH_RETURN_IF_ERROR(corrupt->Sync());
    TCH_RETURN_IF_ERROR(corrupt->Close());
  }
  TCH_RETURN_IF_ERROR(fs->TruncateFile(path, scan.valid_bytes));
  return scan;
}

FileSystem* Journal::fs() const {
  return options_.fs == nullptr ? FileSystem::Default() : options_.fs;
}

Status Journal::WriteHeader() {
  std::string header(kJournalMagic);
  header += " 2 " + std::to_string(epoch_) + "\n";
  TCH_RETURN_IF_ERROR(file_->Append(header));
  // The header (and the file's existence) must be durable before any
  // record: a record without its header would replay as v1 garbage.
  TCH_RETURN_IF_ERROR(file_->Sync());
  size_t slash = path_.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
  if (dir.empty()) dir = "/";
  return fs()->SyncDir(dir);
}

Status Journal::Open(const std::string& path, const JournalOptions& options) {
  if (file_ != nullptr) return Status::FailedPrecondition("journal is open");
  options_ = options;
  path_ = path;
  format_ = 2;
  epoch_ = options.epoch;
  next_seq_ = 1;
  appended_ = 0;
  unsynced_ = 0;

  bool needs_header = true;
  if (fs()->FileExists(path)) {
    // Never append after corrupt bytes: quarantine a torn tail first.
    TCH_ASSIGN_OR_RETURN(JournalScan scan, SalvageJournal(path, fs()));
    if (scan.format == 1) {
      format_ = 1;
      epoch_ = 0;
      needs_header = false;
    } else if (scan.format == 2) {
      epoch_ = scan.epoch;
      next_seq_ = scan.last_seq + 1;
      needs_header = false;
    }
  }
  TCH_ASSIGN_OR_RETURN(file_, fs()->OpenWritable(path, /*truncate=*/false));
  if (needs_header) {
    Status s = WriteHeader();
    if (!s.ok()) {
      file_.reset();
      return s;
    }
  }
  return Status::OK();
}

Status Journal::Append(std::string_view statement) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  if (statement.find('\n') != std::string_view::npos) {
    return Status::InvalidArgument(
        "journaled statements cannot contain raw newlines");
  }
  std::string line;
  if (format_ == 1) {
    line.assign(statement);
    line.push_back('\n');
  } else {
    uint64_t seq = next_seq_;
    uint32_t crc = Crc32(RecordPayload(seq, statement));
    line = "R " + std::to_string(seq) + " " +
           std::to_string(statement.size()) + " " + Crc32Hex(crc) + " ";
    line.append(statement);
    line.push_back('\n');
  }
  TCH_RETURN_IF_ERROR(file_->Append(line));
  if (format_ == 2) ++next_seq_;
  ++appended_;
  ++unsynced_;
  switch (options_.sync) {
    case SyncPolicy::kEveryAppend:
      return Sync();
    case SyncPolicy::kBatched:
      if (unsynced_ >= options_.batch_size) return Sync();
      return Status::OK();
    case SyncPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status Journal::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  TCH_RETURN_IF_ERROR(file_->Sync());
  unsynced_ = 0;
  ++sync_count_;
  return Status::OK();
}

std::string Journal::RotatedPath(const std::string& path, uint64_t epoch) {
  return path + ".e" + std::to_string(epoch);
}

Result<std::string> Journal::Rotate() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  // The rotated file must carry everything appended so far, whatever the
  // sync policy.
  TCH_RETURN_IF_ERROR(file_->Sync());
  TCH_RETURN_IF_ERROR(file_->Close());
  file_.reset();
  std::string rotated = RotatedPath(path_, epoch_);
  TCH_RETURN_IF_ERROR(fs()->RenameFile(path_, rotated));
  ++epoch_;
  format_ = 2;
  next_seq_ = 1;
  unsynced_ = 0;
  TCH_ASSIGN_OR_RETURN(file_, fs()->OpenWritable(path_, /*truncate=*/false));
  TCH_RETURN_IF_ERROR(WriteHeader());
  return rotated;
}

Status Journal::Truncate() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open");
  }
  TCH_RETURN_IF_ERROR(file_->Close());
  file_.reset();
  TCH_ASSIGN_OR_RETURN(file_, fs()->OpenWritable(path_, /*truncate=*/true));
  format_ = 2;
  next_seq_ = 1;
  appended_ = 0;
  unsynced_ = 0;
  return WriteHeader();
}

void Journal::Close() {
  if (file_ != nullptr) {
    (void)file_->Sync();
    (void)file_->Close();
    file_.reset();
  }
}

Result<size_t> Journal::Replay(const std::string& path, Interpreter* interp) {
  return ReplayPrefix(path, interp, std::numeric_limits<size_t>::max());
}

Result<size_t> Journal::ReplayPrefix(const std::string& path,
                                     Interpreter* interp,
                                     size_t max_statements) {
  TCH_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(path));
  size_t applied = 0;
  for (const std::string& statement : scan.statements) {
    if (applied >= max_statements) break;
    Result<std::string> r = interp->Execute(statement);
    if (!r.ok()) {
      return Status::Corruption(
          "journal " + path + " statement " + std::to_string(applied + 1) +
          " failed to replay: " + r.status().ToString());
    }
    ++applied;
  }
  // Strict semantics: a torn tail is an error here — but only if the
  // requested prefix actually reaches into it.
  if (!scan.tail_error.ok() && applied < max_statements) {
    return Status::Corruption("journal " + path + " has a corrupt tail: " +
                              scan.tail_error.message());
  }
  return applied;
}

JournaledDatabase::JournaledDatabase(const std::string& journal_path,
                                     const JournalOptions& options)
    : interp_(&db_) {
  status_ = journal_.Open(journal_path, options);
}

Result<std::string> JournaledDatabase::Execute(std::string_view statement) {
  TCH_RETURN_IF_ERROR(status_);
  if (!IsMutatingStatement(statement)) return interp_.Execute(statement);
  // Execute first, journal on success: the journal then contains exactly
  // the statements that applied cleanly, so strict replay can treat any
  // replay failure as corruption. Durability is not weakened — callers
  // are acknowledged only after Append (and its sync policy) returns, so
  // an acknowledged statement is always on disk; a crash between
  // execution and append loses only a statement nobody was told about.
  TCH_ASSIGN_OR_RETURN(std::string result, interp_.Execute(statement));
  TCH_RETURN_IF_ERROR(journal_.Append(statement));
  return result;
}

}  // namespace tchimera
