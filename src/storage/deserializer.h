// Restores a Database from the snapshot format written by serializer.h.
#ifndef TCHIMERA_STORAGE_DESERIALIZER_H_
#define TCHIMERA_STORAGE_DESERIALIZER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>

#include "common/fault_fs.h"
#include "common/result.h"
#include "core/db/database.h"

namespace tchimera {

// Structural metadata of a snapshot, read without parsing any record.
struct SnapshotInfo {
  int version = 0;      // 1 or 2
  uint64_t epoch = 0;   // v2 only; v1 snapshots are epoch 0
  size_t records = 0;   // CLASS+OBJECT count from the v2 footer
  uint64_t byte_size = 0;
  // OK when the snapshot is structurally sound. For v2 this means the
  // footer is present and the CRC32 over the body matches — a truncated
  // or bit-flipped snapshot fails here, before any record is parsed. v1
  // has no checksum; only the header and terminator are checked.
  Status integrity;
};

// Inspects snapshot text / a snapshot file. Fails only when the input
// cannot be read at all; corruption is reported via `integrity`.
Result<SnapshotInfo> ProbeSnapshot(const std::string& text);
Result<SnapshotInfo> ProbeSnapshotFile(const std::string& path,
                                       FileSystem* fs = nullptr);

// Parses a snapshot; fails with Corruption on any malformed record. A v2
// snapshot is checksum-verified up front, so corruption is rejected
// before any state is built.
Result<std::unique_ptr<Database>> LoadDatabase(std::istream* in);
Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path);
Result<std::unique_ptr<Database>> LoadDatabaseFromString(
    const std::string& text);

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_DESERIALIZER_H_
