// Restores a Database from the snapshot format written by serializer.h.
#ifndef TCHIMERA_STORAGE_DESERIALIZER_H_
#define TCHIMERA_STORAGE_DESERIALIZER_H_

#include <istream>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/db/database.h"

namespace tchimera {

// Parses a snapshot; fails with Corruption on any malformed record.
Result<std::unique_ptr<Database>> LoadDatabase(std::istream* in);
Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path);
Result<std::unique_ptr<Database>> LoadDatabaseFromString(
    const std::string& text);

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_DESERIALIZER_H_
