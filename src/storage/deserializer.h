// Restores a Database from the snapshot format written by serializer.h.
#ifndef TCHIMERA_STORAGE_DESERIALIZER_H_
#define TCHIMERA_STORAGE_DESERIALIZER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/result.h"
#include "core/db/database.h"

namespace tchimera {

// Structural metadata of a snapshot, read without parsing any record.
struct SnapshotInfo {
  int version = 0;      // 1, 2 or 3
  uint64_t epoch = 0;   // v2+ only; v1 snapshots are epoch 0
  size_t records = 0;   // CLASS+OBJECT count from the v2+ footer
  uint64_t byte_size = 0;
  // OK when the snapshot is structurally sound. For v2+ this means the
  // footer is present and the CRC32 over the body matches — a truncated
  // or bit-flipped snapshot fails here, before any record is parsed. v1
  // has no checksum; only the header and terminator are checked.
  Status integrity;
};

// Inspects snapshot text / a snapshot file. Fails only when the input
// cannot be read at all; corruption is reported via `integrity`.
Result<SnapshotInfo> ProbeSnapshot(const std::string& text);
Result<SnapshotInfo> ProbeSnapshotFile(const std::string& path,
                                       FileSystem* fs = nullptr);

// Parses a snapshot; fails with Corruption on any malformed record. A v2+
// snapshot is checksum-verified up front, so corruption is rejected
// before any state is built. These drop any v3 DEFINE records; callers
// that need them use LoadSnapshotFromString below.
Result<std::unique_ptr<Database>> LoadDatabase(std::istream* in);
Result<std::unique_ptr<Database>> LoadDatabaseFromFile(
    const std::string& path);
Result<std::unique_ptr<Database>> LoadDatabaseFromString(
    const std::string& text);

// A fully parsed snapshot: the database plus the v3 DEFINE statements
// (trigger / constraint declarations) in snapshot order, empty for
// v1/v2. The definitions are NOT applied — they address the execution
// facade (ActiveDatabase), not the Database; replay them through it
// after restoring (see RecoveryManager::LoadSnapshot).
struct LoadedSnapshot {
  std::unique_ptr<Database> db;
  std::vector<std::string> definitions;
};

Result<LoadedSnapshot> LoadSnapshotFromString(const std::string& text);

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_DESERIALIZER_H_
