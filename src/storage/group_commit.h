// Cross-session group commit on top of the v2 journal (journal.h).
//
// The per-handle SyncPolicy::kBatched amortizes fdatasync over one
// caller's appends; a multi-client front end wants more: commits from
// *concurrent sessions* batched into one fdatasync, with every caller's
// acknowledgement released only after the batch is durable. That is what
// GroupCommitJournal provides, as the CommitSink of a query Engine
// (query/session.h):
//
//   - Enqueue(stmt) is called by the engine while it holds the writer
//     lock: the statement is buffered and assigned the next sequence
//     number, so buffer order == commit order == journal order. A
//     closed or poisoned sink rejects the enqueue outright (ticket with
//     seq == 0 and the failure in Ticket::status) — no ticket is ever
//     issued that could drive a flush against a dead journal.
//   - Await(ticket) blocks until the statement is on disk. The first
//     awaiting thread with pending work elects itself *leader*: it takes
//     up to max_batch pending statements (optionally waiting max_delay
//     for more to arrive), appends them all, issues ONE fdatasync, marks
//     them durable and wakes every waiter. Threads that arrive while a
//     leader is flushing simply wait — their statements ride the next
//     batch. Under contention the fdatasync count approaches
//     (commits / batch size); a lone committer degenerates to one sync
//     per statement, same as SyncPolicy::kEveryAppend.
//
// Failure model: if an append or sync fails, the sink is poisoned — the
// failed batch's waiters and every later Await get the sticky error.
// Nothing after a lost write can be acknowledged, so the journal prefix
// property (acknowledged => durable => replayable) survives any crash:
// recovery lands on a whole-batch boundary (modulo torn-tail salvage of
// never-acknowledged records).
//
// On-disk format is untouched: this is journal v2, opened with
// SyncPolicy::kNone so that the sink owns every sync point.
#ifndef TCHIMERA_STORAGE_GROUP_COMMIT_H_
#define TCHIMERA_STORAGE_GROUP_COMMIT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "query/session.h"
#include "storage/journal.h"

namespace tchimera {

struct GroupCommitOptions {
  // Most statements one batch may carry.
  size_t max_batch = 64;
  // How long a leader lingers for followers before flushing a non-full
  // batch. 0 (default) = flush immediately: batching then comes purely
  // from commits that piled up while the previous batch was syncing —
  // no added latency, and still one sync per pile-up. Even when set, a
  // leader whose pending statements already cover the entire non-durable
  // backlog (in particular a lone committer) skips the linger: there is
  // nobody to wait for, so single-writer latency never pays max_delay.
  std::chrono::microseconds max_delay{0};
};

class EpochFence;  // storage/replication.h

class GroupCommitJournal final : public CommitSink, public HorizonProvider {
 public:
  GroupCommitJournal() = default;
  GroupCommitJournal(const GroupCommitJournal&) = delete;
  GroupCommitJournal& operator=(const GroupCommitJournal&) = delete;

  // Opens the underlying journal (same semantics as Journal::Open;
  // `journal_options.sync` is overridden to kNone — the sink owns sync
  // points).
  Status Open(const std::string& path,
              const JournalOptions& journal_options = {},
              const GroupCommitOptions& options = {});
  bool is_open() const;
  void Close();

  // CommitSink: see class comment. Thread-safe.
  Ticket Enqueue(std::string_view statement) override;
  Status Await(Ticket ticket) override;

  // HorizonProvider: the durable frontier replication may ship up to.
  // Updated after every successful batch sync and after WithQuiesced
  // returns (a checkpoint may have rotated the journal). Records beyond
  // the horizon exist only as unsynced bytes a crash could drop — a
  // source that shipped them could make a follower run ahead of a
  // recovered primary, which is divergence.
  JournalHorizon ReplicationHorizon() const override;

  // Fences this sink under `fence` with the given authority token
  // (typically the journal's epoch at open/attach time — the token stays
  // fixed across rotations; see storage/replication.h). Once a replica
  // promotion fences the token, every Enqueue is rejected and WithQuiesced
  // (the checkpoint path) fails: a recovered ex-primary cannot
  // double-serve. Call during single-threaded setup.
  void AttachFence(const EpochFence* fence, uint64_t authority_token);
  uint64_t authority_token() const { return authority_token_; }

  // Drains every pending statement to disk, then runs `fn` on the
  // underlying journal with all group-commit activity excluded — the
  // checkpoint path (Rotate + snapshot need the journal quiesced).
  // Callers must also hold the engine's writer lock (WithExclusive) so
  // no new Enqueue can race; that lock ordering (writer lock, then sink
  // mutex) matches the write path and cannot deadlock.
  Status WithQuiesced(const std::function<Status(Journal&)>& fn);

  // Diagnostics / benchmarks (racy reads are fine for reporting).
  uint64_t enqueued() const;
  uint64_t durable() const;
  // Completed group commits: exactly the number of fdatasyncs issued for
  // statement batches.
  uint64_t batches() const;

 private:
  // Leads one batch: takes pending statements, appends + syncs them with
  // `lock` released, publishes the result. Pre: lock held, no leader
  // active, pending work exists. Post: lock held, leader flag cleared,
  // waiters notified.
  void LeadBatch(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Journal journal_;
  GroupCommitOptions options_;
  std::deque<std::string> pending_;  // statements not yet taken by a batch
  uint64_t enqueued_ = 0;            // last ticket issued
  uint64_t taken_ = 0;               // last statement handed to a batch
  uint64_t durable_ = 0;             // last statement known on disk
  uint64_t batches_ = 0;
  bool leader_active_ = false;
  Status sticky_;  // first append/sync failure; poisons the sink

  // Durable frontier (see ReplicationHorizon). Guarded by mu_ — the
  // journal's own counters cannot be read while a leader appends off-lock.
  uint64_t horizon_epoch_ = 0;
  uint64_t horizon_seq_ = 0;
  // Final seq of epoch horizon_epoch_ - 1 if this sink witnessed the
  // rotation that ended it (see JournalHorizon::handoff_seq).
  uint64_t horizon_handoff_seq_ = JournalHorizon::kNoHandoff;

  const EpochFence* fence_ = nullptr;  // not owned
  uint64_t authority_token_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_STORAGE_GROUP_COMMIT_H_
