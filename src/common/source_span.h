// A half-open byte range [begin, end) into a source text. The parser
// records spans on the AST nodes that fix-it rewrites need to anchor to
// (analysis/fixer.h); a default-constructed span is invalid and means "no
// span recorded" (e.g. an AST built programmatically rather than parsed).
#ifndef TCHIMERA_COMMON_SOURCE_SPAN_H_
#define TCHIMERA_COMMON_SOURCE_SPAN_H_

#include <cstddef>

namespace tchimera {

struct SourceSpan {
  size_t begin = 0;
  size_t end = 0;

  bool valid() const { return end > begin; }
  size_t length() const { return end - begin; }
};

}  // namespace tchimera

#endif  // TCHIMERA_COMMON_SOURCE_SPAN_H_
