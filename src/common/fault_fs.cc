#include "common/fault_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace tchimera {
namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      // Short writes are legal (quota boundaries, signals): loop until
      // every byte is handed to the OS. EINTR restarts the same write.
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      if (n == 0) return Status::IoError("write " + path_ + ": wrote 0 bytes");
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed");
    // A signal during fdatasync (a client disconnect delivering SIGIO/
    // SIGPIPE-adjacent wakeups, a profiler tick) must not surface as a
    // durability failure: EINTR means "not done", so go again.
    while (::fdatasync(fd_) != 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("fdatasync", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    // POSIX leaves the fd state unspecified on EINTR, but Linux
    // guarantees it is closed — retrying could close a recycled fd owned
    // by another thread, which is far worse than accepting the close.
    if (::close(fd) != 0 && errno != EINTR) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

// open(2) restarted across EINTR (it is not restartable via SA_RESTART
// on all kernels for all file kinds).
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

class PosixFileSystem final : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    int fd = OpenRetry(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return SyncDir(ParentDir(to));
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return SyncDir(ParentDir(path));
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return ErrnoStatus("truncate", path);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open dir", path);
    Status s = Status::OK();
    while (::fsync(fd) != 0) {
      if (errno == EINTR) continue;
      s = ErrnoStatus("fsync dir", path);
      break;
    }
    ::close(fd);
    return s;
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    // Raw read loop rather than ifstream: short reads are the norm once
    // signals fly (a serving process fields SIGIO/timer ticks constantly),
    // and iostreams conflate EINTR with EOF on some libstdc++ builds —
    // which would silently truncate a snapshot or journal mid-recovery.
    int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open for read", path);
    std::string out;
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      out.reserve(static_cast<size_t>(st.st_size));
    }
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = ErrnoStatus("read", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;  // true EOF — the only loop exit besides error
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path);
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      struct stat st {};
      if (::stat((path + "/" + name).c_str(), &st) == 0 &&
          S_ISREG(st.st_mode)) {
        names.push_back(std::move(name));
      }
      errno = 0;
    }
    Status s = errno != 0 ? ErrnoStatus("readdir", path) : Status::OK();
    ::closedir(dir);
    if (!s.ok()) return s;
    return names;
  }
};

Status CrashedStatus() {
  return Status::IoError("injected crash: filesystem is down");
}

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

// Tracks the synced-vs-written watermark of one file so a crash can roll
// the real file back to what would have survived a power loss.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionFileSystem* fs,
                    std::unique_ptr<WritableFile> base, std::string path,
                    uint64_t initial_size)
      : fs_(fs),
        base_(std::move(base)),
        path_(std::move(path)),
        size_(initial_size),
        synced_size_(initial_size) {
    fs_->Register(this);
  }
  ~FaultWritableFile() override { fs_->Unregister(this); }

  Status Append(std::string_view data) override {
    if (fs_->crashed()) return CrashedStatus();
    switch (fs_->NextOp()) {
      case FaultInjectionFileSystem::OpFate::kFailOnce:
        return Status::IoError("injected I/O failure on append");
      case FaultInjectionFileSystem::OpFate::kCrash: {
        // Torn write: of the unsynced tail (earlier unsynced appends plus
        // this one), only `surviving_tail_bytes` reach the platter.
        uint64_t unsynced = size_ - synced_size_ + data.size();
        uint64_t keep =
            std::min<uint64_t>(fs_->plan_.surviving_tail_bytes, unsynced);
        uint64_t target = synced_size_ + keep;
        if (target > size_) {
          (void)base_->Append(data.substr(0, target - size_));
        }
        (void)base_->Sync();
        (void)fs_->base_->TruncateFile(path_, target);
        size_ = target;
        fs_->CrashNow(this);
        return CrashedStatus();
      }
      case FaultInjectionFileSystem::OpFate::kProceed:
        break;
    }
    TCH_RETURN_IF_ERROR(base_->Append(data));
    size_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (fs_->crashed()) return CrashedStatus();
    switch (fs_->NextOp()) {
      case FaultInjectionFileSystem::OpFate::kFailOnce:
        return Status::IoError("injected I/O failure on sync");
      case FaultInjectionFileSystem::OpFate::kCrash: {
        uint64_t keep = std::min<uint64_t>(fs_->plan_.surviving_tail_bytes,
                                           size_ - synced_size_);
        (void)base_->Sync();
        (void)fs_->base_->TruncateFile(path_, synced_size_ + keep);
        size_ = synced_size_ + keep;
        fs_->CrashNow(this);
        return CrashedStatus();
      }
      case FaultInjectionFileSystem::OpFate::kProceed:
        break;
    }
    TCH_RETURN_IF_ERROR(base_->Sync());
    synced_size_ = size_;
    return Status::OK();
  }

  Status Close() override {
    // Closing is not a durability point; never a crash site, and legal
    // after a crash (the in-memory handle just goes away).
    return base_->Close();
  }

 private:
  friend class FaultInjectionFileSystem;

  FaultInjectionFileSystem* fs_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  uint64_t size_;
  uint64_t synced_size_;
};

FaultInjectionFileSystem::FaultInjectionFileSystem(FileSystem* base)
    : base_(base == nullptr ? FileSystem::Default() : base) {}

FaultInjectionFileSystem::~FaultInjectionFileSystem() = default;

void FaultInjectionFileSystem::SetPlan(const FaultPlan& plan) {
  plan_ = plan;
  ops_seen_ = 0;
  crashed_ = false;
}

FaultInjectionFileSystem::OpFate FaultInjectionFileSystem::NextOp() {
  uint64_t index = ops_seen_++;
  if (plan_.mode == FaultPlan::Mode::kFailOp && index == plan_.at_op) {
    return OpFate::kFailOnce;
  }
  if (plan_.mode == FaultPlan::Mode::kCrash && index == plan_.at_op) {
    return OpFate::kCrash;
  }
  return OpFate::kProceed;
}

void FaultInjectionFileSystem::CrashNow(FaultWritableFile* torn) {
  crashed_ = true;
  for (FaultWritableFile* file : open_files_) {
    if (file == torn) continue;  // already rolled back by the caller
    (void)file->base_->Sync();
    (void)base_->TruncateFile(file->path_, file->synced_size_);
    file->size_ = file->synced_size_;
  }
}

void FaultInjectionFileSystem::Register(FaultWritableFile* file) {
  open_files_.push_back(file);
}

void FaultInjectionFileSystem::Unregister(FaultWritableFile* file) {
  open_files_.erase(
      std::remove(open_files_.begin(), open_files_.end(), file),
      open_files_.end());
}

Result<std::unique_ptr<WritableFile>> FaultInjectionFileSystem::OpenWritable(
    const std::string& path, bool truncate) {
  if (crashed_) return CrashedStatus();
  switch (NextOp()) {
    case OpFate::kFailOnce:
      return Status::IoError("injected I/O failure on open");
    case OpFate::kCrash:
      CrashNow(nullptr);
      return CrashedStatus();
    case OpFate::kProceed:
      break;
  }
  uint64_t initial_size = 0;
  if (!truncate && base_->FileExists(path)) {
    TCH_ASSIGN_OR_RETURN(initial_size, base_->FileSize(path));
  }
  TCH_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->OpenWritable(path, truncate));
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      this, std::move(base), path, initial_size));
}

Status FaultInjectionFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  if (crashed_) return CrashedStatus();
  switch (NextOp()) {
    case OpFate::kFailOnce:
      return Status::IoError("injected I/O failure on rename");
    case OpFate::kCrash:
      CrashNow(nullptr);  // the rename never happened
      return CrashedStatus();
    case OpFate::kProceed:
      break;
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionFileSystem::RemoveFile(const std::string& path) {
  if (crashed_) return CrashedStatus();
  switch (NextOp()) {
    case OpFate::kFailOnce:
      return Status::IoError("injected I/O failure on remove");
    case OpFate::kCrash:
      CrashNow(nullptr);
      return CrashedStatus();
    case OpFate::kProceed:
      break;
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionFileSystem::TruncateFile(const std::string& path,
                                              uint64_t size) {
  if (crashed_) return CrashedStatus();
  switch (NextOp()) {
    case OpFate::kFailOnce:
      return Status::IoError("injected I/O failure on truncate");
    case OpFate::kCrash:
      CrashNow(nullptr);
      return CrashedStatus();
    case OpFate::kProceed:
      break;
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectionFileSystem::SyncDir(const std::string& path) {
  if (crashed_) return CrashedStatus();
  switch (NextOp()) {
    case OpFate::kFailOnce:
      return Status::IoError("injected I/O failure on dir sync");
    case OpFate::kCrash:
      CrashNow(nullptr);
      return CrashedStatus();
    case OpFate::kProceed:
      break;
  }
  return base_->SyncDir(path);
}

Result<std::string> FaultInjectionFileSystem::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultInjectionFileSystem::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionFileSystem::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Result<std::vector<std::string>> FaultInjectionFileSystem::ListDirectory(
    const std::string& path) {
  return base_->ListDirectory(path);
}

}  // namespace tchimera
