#include "common/crc32.h"

#include <array>

namespace tchimera {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kPolynomial : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

std::string Crc32Hex(uint32_t crc) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool ParseCrc32Hex(std::string_view text, uint32_t* out) {
  if (text.size() != 8) return false;
  uint32_t value = 0;
  for (char c : text) {
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

}  // namespace tchimera
