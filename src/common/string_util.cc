#include "common/string_util.h"

#include <cctype>

namespace tchimera {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool UnescapeString(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= s.size()) return false;
    char next = s[++i];
    switch (next) {
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 't':
        out->push_back('\t');
        break;
      default:
        return false;
    }
  }
  return true;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  char first = s[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (size_t i = 1; i < s.size(); ++i) {
    char c = s[i];
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace tchimera
