// Error model for T_Chimera. The library does not use exceptions; every
// fallible operation returns a Status (or a Result<T>, see result.h) in the
// style of RocksDB / Arrow.
#ifndef TCHIMERA_COMMON_STATUS_H_
#define TCHIMERA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace tchimera {

// Machine-inspectable failure categories. Values are stable; new codes are
// appended at the end.
enum class StatusCode {
  kOk = 0,
  // A malformed request: bad name, bad literal, parse error.
  kInvalidArgument = 1,
  // A referenced entity (class, object, attribute, method) does not exist.
  kNotFound = 2,
  // An entity with the given identity already exists.
  kAlreadyExists = 3,
  // A value does not conform to the type required by the model
  // (Definition 3.5 / 3.6 of the paper).
  kTypeError = 4,
  // A model invariant is violated (Invariants 5.1, 5.2, 6.1, 6.2) or an
  // object is not a consistent instance of its class (Definitions 5.3-5.5).
  kConsistencyViolation = 5,
  // A temporal precondition failed: instant outside a lifespan, overlapping
  // intervals where disjointness is required, etc.
  kTemporalError = 6,
  // The operation is not valid in the current state (e.g. migrating to a
  // class in a different ISA hierarchy, Invariant 6.2).
  kFailedPrecondition = 7,
  // Corrupt or unreadable persistent state.
  kCorruption = 8,
  // An I/O error from the underlying filesystem.
  kIoError = 9,
  // Anything that should not happen; indicates a bug in this library.
  kInternal = 10,
  // An optimistic transaction lost the commit-time validation race against
  // a concurrently committed writer. Retryable: re-running the statement
  // against the new version usually succeeds.
  kConflict = 11,
  // A transient replication/shipping condition: a stream gap, an epoch
  // mismatch, a corrupt shipped record, or a source file that has moved
  // past the follower's position. Retryable — the follower backs off and
  // resyncs from a checkpoint; nothing was lost on the authoritative side.
  kUnavailable = 12,
};

// Returns a stable human-readable name such as "TypeError".
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries an error code plus message. Cheap to
// copy in the OK case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConsistencyViolation(std::string msg) {
    return Status(StatusCode::kConsistencyViolation, std::move(msg));
  }
  static Status TemporalError(std::string msg) {
    return Status(StatusCode::kTemporalError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TypeError: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tchimera

// Propagates a non-OK Status from an expression to the caller.
#define TCH_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::tchimera::Status _tch_status = (expr);         \
    if (!_tch_status.ok()) return _tch_status;       \
  } while (false)

#endif  // TCHIMERA_COMMON_STATUS_H_
