#include "common/status.h"

namespace tchimera {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConsistencyViolation:
      return "ConsistencyViolation";
    case StatusCode::kTemporalError:
      return "TemporalError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace tchimera
