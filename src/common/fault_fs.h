// The I/O seam of the persistence layer.
//
// Journal, Serializer and RecoveryManager perform every durable side
// effect (append, fsync, rename, truncate, unlink) through the FileSystem
// interface below. The default implementation is thin POSIX (real
// fdatasync/fsync, durable renames that fsync the parent directory). The
// FaultInjectionFileSystem wraps any FileSystem and fires a planned fault
// at the Nth mutating operation:
//
//   kFailOp — that one operation returns IoError and the process carries
//             on (an EIO-style transient failure);
//   kCrash  — the process "dies": unsynced bytes of every open file are
//             dropped (optionally keeping a partial prefix of the torn
//             write, modelling a sector-aligned torn tail), the operation
//             reports IoError, and every later operation fails until the
//             plan is cleared.
//
// Crash-point enumeration (tests/recovery_test.cc) runs a workload once
// per possible crash point and asserts recovery always restores a
// committed prefix — the proof obligation behind the journal's durability
// contract.
#ifndef TCHIMERA_COMMON_FAULT_FS_H_
#define TCHIMERA_COMMON_FAULT_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tchimera {

// A sequential append-only file handle. Append hands bytes to the OS;
// only Sync (fdatasync) makes them durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Opens `path` for writing: truncated, or in append mode (creating the
  // file either way).
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;

  // Durable rename: renames and fsyncs the parent directory of `to`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  // Unlinks `path` and fsyncs its parent directory.
  virtual Status RemoveFile(const std::string& path) = 0;
  // Truncates `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  // fsyncs a directory (making renames/creates/unlinks in it durable).
  virtual Status SyncDir(const std::string& path) = 0;

  // Reads (not fault-injected; recovery reads whatever survived).
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  // The plain-file names in directory `path` (no "."/"..", unsorted).
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;

  // The process-wide POSIX filesystem.
  static FileSystem* Default();
};

// What fault to inject, and when. Operations are counted across every
// mutating call (OpenWritable, Append, Sync, Rename, Remove, Truncate,
// SyncDir) made through the FaultInjectionFileSystem since SetPlan.
struct FaultPlan {
  enum class Mode { kNone, kFailOp, kCrash };
  Mode mode = Mode::kNone;
  // 0-based index of the operation at which the fault fires.
  uint64_t at_op = 0;
  // kCrash only: how many bytes of the crashed file's unsynced tail
  // (including the in-flight append) survive — the torn-write prefix.
  uint64_t surviving_tail_bytes = 0;
};

class FaultWritableFile;

// Wraps `base`, counting mutating operations and firing the planned
// fault. On crash, every file opened through this wrapper is truncated
// back to its last synced size (the crashed file keeps
// `surviving_tail_bytes` extra), so the on-disk state is exactly what a
// power loss would have left.
class FaultInjectionFileSystem final : public FileSystem {
 public:
  explicit FaultInjectionFileSystem(FileSystem* base);
  ~FaultInjectionFileSystem() override;

  // Installs a plan and resets the operation counter and crashed flag.
  void SetPlan(const FaultPlan& plan);
  void ClearPlan() { SetPlan(FaultPlan{}); }

  // Operations counted since the last SetPlan (for enumerating crash
  // points: run once fault-free, read ops_seen, then crash at 0..n-1).
  uint64_t ops_seen() const { return ops_seen_; }
  bool crashed() const { return crashed_; }

  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;

 private:
  friend class FaultWritableFile;

  enum class OpFate { kProceed, kFailOnce, kCrash };
  // Accounts for one mutating operation and reports its fate. After a
  // crash every operation is doomed (kCrash without re-truncating).
  OpFate NextOp();
  // Truncates every registered file to its synced size; `torn` (may be
  // null) keeps `surviving_tail_bytes` of its unsynced tail.
  void CrashNow(FaultWritableFile* torn);
  void Register(FaultWritableFile* file);
  void Unregister(FaultWritableFile* file);

  FileSystem* base_;
  FaultPlan plan_;
  uint64_t ops_seen_ = 0;
  bool crashed_ = false;
  std::vector<FaultWritableFile*> open_files_;
};

}  // namespace tchimera

#endif  // TCHIMERA_COMMON_FAULT_FS_H_
