// Result<T>: a value or a Status, in the style of arrow::Result /
// absl::StatusOr. Used as the return type of every fallible computation
// that produces a value.
#ifndef TCHIMERA_COMMON_RESULT_H_
#define TCHIMERA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tchimera {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites terse: `return 42;` / `return Status::TypeError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace tchimera

// Evaluates `expr` (a Result<T>); on error, propagates the Status to the
// caller; on success, moves the value into `lhs`.
#define TCH_ASSIGN_OR_RETURN(lhs, expr)                   \
  TCH_ASSIGN_OR_RETURN_IMPL_(                             \
      TCH_RESULT_CONCAT_(_tch_result_, __LINE__), lhs, expr)

#define TCH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define TCH_RESULT_CONCAT_(a, b) TCH_RESULT_CONCAT_IMPL_(a, b)
#define TCH_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // TCHIMERA_COMMON_RESULT_H_
