// Small string helpers shared across the library.
#ifndef TCHIMERA_COMMON_STRING_UTIL_H_
#define TCHIMERA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tchimera {

// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Escapes a string for embedding in the textual serialization format:
// backslash-escapes `"`, `\`, and newlines. Unescape inverts it.
std::string EscapeString(std::string_view s);
// Returns false on a malformed escape sequence.
bool UnescapeString(std::string_view s, std::string* out);

// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_-]*.
// Identifier syntax is shared by class, attribute and method names; '-' is
// allowed mid-name because the paper uses names like `proper-ext` and
// `m-project`.
bool IsIdentifier(std::string_view s);

}  // namespace tchimera

#endif  // TCHIMERA_COMMON_STRING_UTIL_H_
