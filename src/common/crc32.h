// CRC-32 (IEEE 802.3 polynomial, the zlib/ethernet one) for record
// framing in the persistence layer. CRC32 detects every single-bit error
// and every burst up to 32 bits, which is exactly the failure model of a
// torn or bit-flipped journal record / snapshot body.
#ifndef TCHIMERA_COMMON_CRC32_H_
#define TCHIMERA_COMMON_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tchimera {

// Incremental: Crc32(b, Crc32(a)) == Crc32(ab). Pass the previous return
// value as `seed` to extend a running checksum.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Fixed-width lowercase hex rendering ("00000000".."ffffffff") so checksum
// fields have a stable textual width in the on-disk formats.
std::string Crc32Hex(uint32_t crc);

// Parses the 8-hex-digit form; returns false on malformed input.
bool ParseCrc32Hex(std::string_view text, uint32_t* out);

}  // namespace tchimera

#endif  // TCHIMERA_COMMON_CRC32_H_
