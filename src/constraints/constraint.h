// Temporal integrity constraints — the Section 7 future-work item
// ("define a temporal integrity constraint language ... to express
// constraints based on past histories of objects") made concrete.
//
// A constraint quantifies a TQL condition over the *history* of every
// member of a class:
//
//   constraint NAME on CLASS always <expr>
//       — expr holds at every instant of each member's membership
//         lifespan (evaluated piecewise: temporal attributes are
//         projected at each instant, exactly like an AT-query);
//   constraint NAME on CLASS sometime <expr>
//       — expr holds at at least one instant;
//   constraint NAME on CLASS nondecreasing ATTR
//       — the temporal attribute's projected values never decrease along
//         time (the classic salary constraint);
//   constraint NAME on CLASS immutable ATTR
//       — once defined, the attribute's value never changes (the paper's
//         immutable kind, Section 1.1, enforced rather than assumed).
//
// In `always` / `sometime` expressions the binder `x` denotes the member
// object and `x.attr` projects at the quantified instant.
//
// Evaluation is exact over dense time: temporal values are piecewise
// constant, so the quantifiers are decided at value-change boundaries.
#ifndef TCHIMERA_CONSTRAINTS_CONSTRAINT_H_
#define TCHIMERA_CONSTRAINTS_CONSTRAINT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

class TemporalConstraint {
 public:
  enum class Mode { kAlways, kSometime, kNondecreasing, kImmutable };

  static const char* ModeName(Mode mode);

  // Parses the textual form shown above.
  static Result<TemporalConstraint> Parse(std::string_view text);

  const std::string& name() const { return name_; }
  const std::string& class_name() const { return class_name_; }
  Mode mode() const { return mode_; }
  // The quantified condition (kAlways / kSometime), else null.
  const Expr* condition() const { return expr_.get(); }
  // The constrained attribute (kNondecreasing / kImmutable), else empty.
  const std::string& attribute() const { return attr_; }

  // Checks the constraint against every object that has ever been a
  // member of the class. OK when satisfied; ConsistencyViolation naming
  // the first offending object and instant otherwise.
  Status Check(const Database& db) const;

  // Checks a single object (used by incremental enforcement).
  Status CheckObject(const Database& db, Oid oid) const;

  std::string ToString() const;

 private:
  TemporalConstraint() = default;

  std::string name_;
  std::string class_name_;
  Mode mode_ = Mode::kAlways;
  std::shared_ptr<const Expr> expr_;  // shared: constraints are copyable
  std::string attr_;
};

// A named collection of constraints with bulk checking.
class ConstraintRegistry {
 public:
  // Parses and registers; fails on duplicate names or parse errors.
  Status Define(std::string_view text);
  Status Add(TemporalConstraint constraint);
  Status Drop(std::string_view name);

  const TemporalConstraint* Find(std::string_view name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return constraints_.size(); }

  // Checks every constraint; collects all violations (one Status line
  // each) rather than stopping at the first.
  Status CheckAll(const Database& db) const;
  // Checks every constraint whose class covers `oid`'s current class
  // (called after a mutation touching `oid`).
  Status CheckObject(const Database& db, Oid oid) const;

 private:
  std::vector<TemporalConstraint> constraints_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CONSTRAINTS_CONSTRAINT_H_
