#include "constraints/constraint.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/type_checker.h"

namespace tchimera {
namespace {

// The candidate instants at which a piecewise-constant condition over
// `obj` can change truth value within its membership of a class: the
// starts of the membership intervals plus every temporal-attribute
// segment boundary, clipped to [0, now].
//
// Note: conditions that dereference *other* objects (x.boss.salary) are
// sampled at the subject's boundaries only — exact for self-referential
// constraints, conservative otherwise (documented in DESIGN.md).
std::vector<TimePoint> CandidateInstants(const Object& obj,
                                         const IntervalSet& membership,
                                         TimePoint now) {
  std::vector<TimePoint> out;
  for (const Interval& iv : membership.intervals()) {
    out.push_back(iv.start());
  }
  for (const std::string& name : obj.AttributeNames()) {
    const Value* v = obj.Attribute(name);
    if (v->kind() != ValueKind::kTemporal) continue;
    for (const auto& seg : v->AsTemporal().segments()) {
      out.push_back(seg.interval.start());
      if (!seg.interval.is_ongoing()) out.push_back(seg.interval.end() + 1);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  std::vector<TimePoint> kept;
  for (TimePoint t : out) {
    if (t <= now && membership.Contains(t)) kept.push_back(t);
  }
  return kept;
}

}  // namespace

const char* TemporalConstraint::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kAlways:
      return "always";
    case Mode::kSometime:
      return "sometime";
    case Mode::kNondecreasing:
      return "nondecreasing";
    case Mode::kImmutable:
      return "immutable";
  }
  return "?";
}

Result<TemporalConstraint> TemporalConstraint::Parse(std::string_view text) {
  // constraint NAME on CLASS MODE <attr | expr>
  std::string_view rest = StripWhitespace(text);
  auto take_word = [&rest]() -> std::string {
    rest = StripWhitespace(rest);
    size_t end = 0;
    while (end < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    std::string word(rest.substr(0, end));
    rest = rest.substr(end);
    return word;
  };
  if (take_word() != "constraint") {
    return Status::InvalidArgument(
        "expected 'constraint NAME on CLASS MODE ...'");
  }
  TemporalConstraint c;
  c.name_ = take_word();
  if (!IsIdentifier(c.name_)) {
    return Status::InvalidArgument("bad constraint name '" + c.name_ + "'");
  }
  if (take_word() != "on") {
    return Status::InvalidArgument("expected 'on' after the constraint name");
  }
  c.class_name_ = take_word();
  if (!IsIdentifier(c.class_name_)) {
    return Status::InvalidArgument("bad class name '" + c.class_name_ + "'");
  }
  std::string mode = take_word();
  rest = StripWhitespace(rest);
  if (mode == "always" || mode == "sometime") {
    c.mode_ = mode == "always" ? Mode::kAlways : Mode::kSometime;
    TCH_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(rest));
    c.expr_ = std::move(expr);
    return c;
  }
  if (mode == "nondecreasing" || mode == "immutable") {
    c.mode_ =
        mode == "nondecreasing" ? Mode::kNondecreasing : Mode::kImmutable;
    c.attr_ = std::string(rest);
    if (!IsIdentifier(c.attr_)) {
      return Status::InvalidArgument("expected an attribute name after '" +
                                     mode + "'");
    }
    return c;
  }
  return Status::InvalidArgument(
      "unknown constraint mode '" + mode +
      "' (expected always | sometime | nondecreasing | immutable)");
}

Status TemporalConstraint::CheckObject(const Database& db, Oid oid) const {
  const Object* obj = db.GetObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("object " + oid.ToString() + " does not exist");
  }
  TCH_ASSIGN_OR_RETURN(IntervalSet membership,
                       db.MLifespan(oid, class_name_));
  if (membership.empty()) return Status::OK();  // never a member

  switch (mode_) {
    case Mode::kAlways:
    case Mode::kSometime: {
      // Type check against the class (fresh each call: the annotation
      // cache on the shared AST is not thread-relevant here, but types
      // may legitimately change as classes evolve).
      TypeEnv tenv;
      tenv.emplace("x", class_name_);
      TCH_ASSIGN_OR_RETURN(
          const Type* t,
          TypeCheckExpr(const_cast<Expr*>(expr_.get()), db, tenv));
      if (t->kind() != TypeKind::kBool) {
        return Status::TypeError("constraint '" + name_ +
                                 "' condition must be bool, got " +
                                 t->ToString());
      }
      ValueEnv venv;
      venv.emplace("x", oid);
      bool any_true = false;
      for (TimePoint t_at : CandidateInstants(*obj, membership, db.now())) {
        TCH_ASSIGN_OR_RETURN(Value v,
                             EvaluateExpr(*expr_, db, venv, t_at));
        bool truth = !v.is_null() && v.AsBool();
        if (mode_ == Mode::kAlways && !truth) {
          return Status::ConsistencyViolation(
              "constraint '" + name_ + "' violated by " + oid.ToString() +
              " at instant " + InstantToString(t_at));
        }
        any_true = any_true || truth;
      }
      if (mode_ == Mode::kSometime && !any_true) {
        return Status::ConsistencyViolation(
            "constraint '" + name_ + "' violated by " + oid.ToString() +
            ": the condition never held");
      }
      return Status::OK();
    }
    case Mode::kNondecreasing:
    case Mode::kImmutable: {
      const Value* stored = obj->Attribute(attr_);
      if (stored == nullptr) return Status::OK();  // attribute absent
      if (stored->kind() != ValueKind::kTemporal) {
        return Status::TypeError(
            "constraint '" + name_ + "': attribute '" + attr_ +
            "' is non-temporal — its history is not recorded, so the "
            "constraint cannot be decided");
      }
      const Value* prev = nullptr;
      for (const auto& seg : stored->AsTemporal().segments()) {
        if (seg.value.is_null()) continue;
        if (prev != nullptr) {
          int cmp = Value::Compare(*prev, seg.value);
          if (mode_ == Mode::kImmutable && cmp != 0) {
            return Status::ConsistencyViolation(
                "constraint '" + name_ + "': attribute '" + attr_ +
                "' of " + oid.ToString() + " changed at " +
                InstantToString(seg.interval.start()) +
                " although declared immutable");
          }
          if (mode_ == Mode::kNondecreasing && cmp > 0) {
            return Status::ConsistencyViolation(
                "constraint '" + name_ + "': attribute '" + attr_ +
                "' of " + oid.ToString() + " decreased at " +
                InstantToString(seg.interval.start()) + " (" +
                prev->ToString() + " -> " + seg.value.ToString() + ")");
          }
        }
        prev = &seg.value;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled constraint mode");
}

Status TemporalConstraint::Check(const Database& db) const {
  TCH_RETURN_IF_ERROR(db.FindClass(class_name_).status());
  for (Oid oid : db.AllOids()) {
    TCH_RETURN_IF_ERROR(CheckObject(db, oid));
  }
  return Status::OK();
}

std::string TemporalConstraint::ToString() const {
  std::string out =
      "constraint " + name_ + " on " + class_name_ + " " + ModeName(mode_);
  if (expr_ != nullptr) {
    out += " " + expr_->ToString();
  } else {
    out += " " + attr_;
  }
  return out;
}

Status ConstraintRegistry::Define(std::string_view text) {
  TCH_ASSIGN_OR_RETURN(TemporalConstraint c, TemporalConstraint::Parse(text));
  return Add(std::move(c));
}

Status ConstraintRegistry::Add(TemporalConstraint constraint) {
  if (Find(constraint.name()) != nullptr) {
    return Status::AlreadyExists("constraint '" + constraint.name() +
                                 "' already defined");
  }
  constraints_.push_back(std::move(constraint));
  return Status::OK();
}

Status ConstraintRegistry::Drop(std::string_view name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if (it->name() == name) {
      constraints_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no constraint named '" + std::string(name) + "'");
}

const TemporalConstraint* ConstraintRegistry::Find(
    std::string_view name) const {
  for (const TemporalConstraint& c : constraints_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

std::vector<std::string> ConstraintRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(constraints_.size());
  for (const TemporalConstraint& c : constraints_) out.push_back(c.name());
  return out;
}

Status ConstraintRegistry::CheckAll(const Database& db) const {
  std::string violations;
  for (const TemporalConstraint& c : constraints_) {
    Status s = c.Check(db);
    if (!s.ok()) {
      if (!violations.empty()) violations += "; ";
      violations += s.message();
    }
  }
  if (violations.empty()) return Status::OK();
  return Status::ConsistencyViolation(violations);
}

Status ConstraintRegistry::CheckObject(const Database& db, Oid oid) const {
  for (const TemporalConstraint& c : constraints_) {
    TCH_RETURN_IF_ERROR(c.CheckObject(db, oid));
  }
  return Status::OK();
}

}  // namespace tchimera
