#include "query/evaluator.h"

#include <algorithm>
#include <set>

#include "core/db/equality.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

class Evaluator {
 public:
  Evaluator(const Database& db, const ValueEnv& env, TimePoint at)
      : db_(db), env_(env), at_(ResolveInstant(at, db.now())) {}

  Result<Value> Eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kVar: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          return Status::Internal("unbound variable '" + e.name +
                                  "' at evaluation time");
        }
        return Value::OfOid(it->second);
      }
      case ExprKind::kAttrAccess:
        return EvalAttrAccess(e);
      case ExprKind::kNot: {
        TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.base));
        if (v.is_null()) return Value::Null();
        return Value::Bool(!v.AsBool());
      }
      case ExprKind::kNegate: {
        TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.base));
        if (v.is_null()) return Value::Null();
        if (v.kind() == ValueKind::kReal) return Value::Real(-v.AsReal());
        return Value::Integer(-v.AsInteger());
      }
      case ExprKind::kBinary:
        return EvalBinary(e);
      case ExprKind::kCall:
        return EvalCall(e);
      case ExprKind::kSetCtor:
      case ExprKind::kListCtor: {
        std::vector<Value> elems;
        elems.reserve(e.args.size());
        for (const ExprPtr& a : e.args) {
          TCH_ASSIGN_OR_RETURN(Value v, Eval(*a));
          elems.push_back(std::move(v));
        }
        return e.kind == ExprKind::kSetCtor ? Value::Set(std::move(elems))
                                            : Value::List(std::move(elems));
      }
      case ExprKind::kRecCtor: {
        std::vector<Value::Field> fields;
        for (const auto& [name, fe] : e.rec_fields) {
          TCH_ASSIGN_OR_RETURN(Value v, Eval(*fe));
          fields.emplace_back(name, std::move(v));
        }
        return Value::Record(std::move(fields));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  Result<Value> EvalAttrAccess(const Expr& e) {
    TCH_ASSIGN_OR_RETURN(Value base, Eval(*e.base));
    if (base.is_null()) return Value::Null();
    const Object* obj = db_.GetObject(base.AsOid());
    if (obj == nullptr) {
      return Status::NotFound("dangling reference " +
                              base.AsOid().ToString());
    }
    const Value* stored = obj->Attribute(e.name);
    if (stored == nullptr) return Value::Null();
    if (stored->kind() == ValueKind::kTemporal) {
      TimePoint t = e.at.has_value() ? ResolveInstant(*e.at, db_.now()) : at_;
      const Value* projected = stored->AsTemporal().At(t);
      return projected == nullptr ? Value::Null() : *projected;
    }
    return *stored;
  }

  Result<Value> EvalBinary(const Expr& e) {
    // Short-circuit connectives first.
    if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
      TCH_ASSIGN_OR_RETURN(Value l, Eval(*e.base));
      bool lb = !l.is_null() && l.AsBool();
      if (e.op == BinaryOp::kAnd && !lb) return Value::Bool(false);
      if (e.op == BinaryOp::kOr && lb) return Value::Bool(true);
      TCH_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs));
      return Value::Bool(!r.is_null() && r.AsBool());
    }
    TCH_ASSIGN_OR_RETURN(Value l, Eval(*e.base));
    TCH_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs));
    switch (e.op) {
      case BinaryOp::kEq:
        return Value::Bool(l == r);
      case BinaryOp::kNeq:
        return Value::Bool(l != r);
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        if (l.is_null() || r.is_null()) return Value::Null();
        int c = Value::Compare(l, r);
        switch (e.op) {
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          default:
            return Value::Bool(c >= 0);
        }
      }
      case BinaryOp::kIn:
        if (r.is_null()) return Value::Null();
        return Value::Bool(r.Contains(l));
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        if (l.is_null() || r.is_null()) return Value::Null();
        if (l.kind() == ValueKind::kReal) {
          double a = l.AsReal(), b = r.AsReal();
          switch (e.op) {
            case BinaryOp::kAdd:
              return Value::Real(a + b);
            case BinaryOp::kSub:
              return Value::Real(a - b);
            case BinaryOp::kMul:
              return Value::Real(a * b);
            default:
              return Value::Real(a / b);
          }
        }
        int64_t a = l.AsInteger(), b = r.AsInteger();
        if (e.op == BinaryOp::kDiv && b == 0) {
          return Status::InvalidArgument("integer division by zero");
        }
        switch (e.op) {
          case BinaryOp::kAdd:
            return Value::Integer(a + b);
          case BinaryOp::kSub:
            return Value::Integer(a - b);
          case BinaryOp::kMul:
            return Value::Integer(a * b);
          default:
            return Value::Integer(a / b);
        }
      }
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  Result<Value> EvalCall(const Expr& e) {
    const std::string& fn = e.name;
    if (fn == "size") {
      TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      if (v.is_null()) return Value::Null();
      return Value::Integer(static_cast<int64_t>(v.Elements().size()));
    }
    if (fn == "defined") {
      TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      return Value::Bool(!v.is_null());
    }
    if (fn == "snapshot") {
      TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      if (v.is_null()) return Value::Null();
      TimePoint t = at_;
      if (e.args.size() == 2) {
        TCH_ASSIGN_OR_RETURN(Value tv, Eval(*e.args[1]));
        if (tv.is_null()) return Value::Null();
        t = ResolveInstant(tv.AsTime(), db_.now());
      }
      Result<Value> snap = db_.SnapshotOf(v.AsOid(), t);
      // An undefined snapshot (Section 5.3) evaluates to null rather than
      // failing the whole query.
      if (!snap.ok()) return Value::Null();
      return std::move(snap).value();
    }
    if (fn == "lifespan") {
      TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      if (v.is_null()) return Value::Null();
      TCH_ASSIGN_OR_RETURN(Interval ls, db_.OLifespan(v.AsOid()));
      return Value::List({Value::Time(ls.start()), Value::Time(ls.end())});
    }
    if (fn == "videntical" || fn == "vequal" || fn == "vinstant" ||
        fn == "vweak" || fn == "vdeep") {
      TCH_ASSIGN_OR_RETURN(Value a, Eval(*e.args[0]));
      TCH_ASSIGN_OR_RETURN(Value b, Eval(*e.args[1]));
      if (a.is_null() || b.is_null()) return Value::Null();
      TCH_ASSIGN_OR_RETURN(const Object* oa, db_.FindObject(a.AsOid()));
      TCH_ASSIGN_OR_RETURN(const Object* ob, db_.FindObject(b.AsOid()));
      if (fn == "videntical") return Value::Bool(EqualByIdentity(*oa, *ob));
      if (fn == "vequal") return Value::Bool(EqualByValue(*oa, *ob));
      if (fn == "vdeep") return Value::Bool(DeepValueEqual(db_, *oa, *ob));
      if (fn == "vinstant") {
        return Value::Bool(InstantaneousValueEqual(*oa, *ob, db_.now()));
      }
      return Value::Bool(WeakValueEqual(*oa, *ob, db_.now()));
    }
    return Status::Internal("unknown function '" + fn + "'");
  }

  const Database& db_;
  const ValueEnv& env_;
  TimePoint at_;
};

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const Database& db,
                           const ValueEnv& env, TimePoint at) {
  return Evaluator(db, env, at).Eval(expr);
}

namespace {

// Recursively extends `env` with one binder at a time (the cartesian
// product of the binders' extents) and emits rows at the leaves.
Status EnumerateBindings(const SelectStmt& stmt, const Database& db,
                         TimePoint at, size_t binder_index, ValueEnv* env,
                         std::vector<SelectRow>* rows) {
  if (binder_index == stmt.binders.size()) {
    if (stmt.where != nullptr) {
      TCH_ASSIGN_OR_RETURN(Value keep,
                           EvaluateExpr(*stmt.where, db, *env, at));
      if (keep.is_null() || !keep.AsBool()) return Status::OK();
    }
    SelectRow row;
    row.oid = env->find(stmt.binders.front().var)->second;
    for (const ExprPtr& p : stmt.projections) {
      TCH_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*p, db, *env, at));
      row.columns.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
    return Status::OK();
  }
  const SelectBinder& binder = stmt.binders[binder_index];
  for (Oid oid : db.Pi(binder.class_name, at)) {
    auto [it, inserted] = env->insert_or_assign(binder.var, oid);
    (void)it;
    (void)inserted;
    TCH_RETURN_IF_ERROR(
        EnumerateBindings(stmt, db, at, binder_index + 1, env, rows));
  }
  env->erase(binder.var);
  return Status::OK();
}

}  // namespace

namespace {

// All oids mentioned literally anywhere in the expression.
void CollectExprOids(const Expr& e, std::vector<Oid>* out) {
  if (e.kind == ExprKind::kLiteral) e.literal.CollectOids(out);
  if (e.base != nullptr) CollectExprOids(*e.base, out);
  if (e.rhs != nullptr) CollectExprOids(*e.rhs, out);
  for (const ExprPtr& a : e.args) CollectExprOids(*a, out);
  for (const auto& [unused, fe] : e.rec_fields) CollectExprOids(*fe, out);
}

}  // namespace

Result<IntervalSet> EvaluateWhen(const Expr& condition, const Database& db) {
  // Boundaries at which the condition can change truth value: the
  // lifespan edges and temporal-segment edges of every mentioned object.
  std::vector<Oid> oids;
  CollectExprOids(condition, &oids);
  std::set<TimePoint> boundary_set = {0};
  TimePoint now = db.now();
  auto add = [&boundary_set, now](TimePoint t) {
    if (t >= 0 && t <= now) boundary_set.insert(t);
  };
  for (Oid oid : oids) {
    const Object* obj = db.GetObject(oid);
    if (obj == nullptr) continue;
    add(obj->lifespan().start());
    if (!obj->lifespan().is_ongoing()) add(obj->lifespan().end() + 1);
    for (const std::string& name : obj->AttributeNames()) {
      const Value* v = obj->Attribute(name);
      if (v->kind() != ValueKind::kTemporal) continue;
      for (const auto& seg : v->AsTemporal().segments()) {
        add(seg.interval.start());
        if (!seg.interval.is_ongoing()) add(seg.interval.end() + 1);
      }
    }
  }
  std::vector<TimePoint> boundaries(boundary_set.begin(),
                                    boundary_set.end());
  ValueEnv empty;
  IntervalSet held;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    TimePoint from = boundaries[i];
    TimePoint to = i + 1 < boundaries.size() ? boundaries[i + 1] - 1 : now;
    TCH_ASSIGN_OR_RETURN(Value v,
                         EvaluateExpr(condition, db, empty, from));
    if (!v.is_null() && v.AsBool()) held.Add(Interval(from, to));
  }
  return held;
}

Result<std::vector<SelectRow>> EvaluateSelect(const SelectStmt& stmt,
                                              const Database& db) {
  if (stmt.binders.empty()) {
    return Status::InvalidArgument("SELECT has no FROM binder");
  }
  TimePoint at =
      stmt.at.has_value() ? ResolveInstant(*stmt.at, db.now()) : db.now();
  std::vector<SelectRow> rows;
  ValueEnv env;
  TCH_RETURN_IF_ERROR(EnumerateBindings(stmt, db, at, 0, &env, &rows));
  return rows;
}

}  // namespace tchimera
