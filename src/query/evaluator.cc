#include "query/evaluator.h"

#include <algorithm>
#include <utility>

#include "core/db/equality.h"
#include "core/values/temporal_function.h"

namespace tchimera {

// --- scalar kernels ----------------------------------------------------------

std::optional<CallKind> CallKindOf(std::string_view fn) {
  if (fn == "size") return CallKind::kSize;
  if (fn == "defined") return CallKind::kDefined;
  if (fn == "snapshot") return CallKind::kSnapshot;
  if (fn == "lifespan") return CallKind::kLifespan;
  if (fn == "videntical") return CallKind::kVIdentical;
  if (fn == "vequal") return CallKind::kVEqual;
  if (fn == "vinstant") return CallKind::kVInstant;
  if (fn == "vweak") return CallKind::kVWeak;
  if (fn == "vdeep") return CallKind::kVDeep;
  return std::nullopt;
}

const char* CallKindName(CallKind kind) {
  switch (kind) {
    case CallKind::kSize:
      return "size";
    case CallKind::kDefined:
      return "defined";
    case CallKind::kSnapshot:
      return "snapshot";
    case CallKind::kLifespan:
      return "lifespan";
    case CallKind::kVIdentical:
      return "videntical";
    case CallKind::kVEqual:
      return "vequal";
    case CallKind::kVInstant:
      return "vinstant";
    case CallKind::kVWeak:
      return "vweak";
    case CallKind::kVDeep:
      return "vdeep";
  }
  return "call";
}

Value ApplyNot(const Value& v) {
  if (v.is_null()) return Value::Null();
  return Value::Bool(!v.AsBool());
}

Value ApplyNegate(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.kind() == ValueKind::kReal) return Value::Real(-v.AsReal());
  return Value::Integer(-v.AsInteger());
}

Result<Value> ApplyBinaryOp(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(l == r);
    case BinaryOp::kNeq:
      return Value::Bool(l != r);
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Null();
      int c = Value::Compare(l, r);
      switch (op) {
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kIn:
      if (r.is_null()) return Value::Null();
      return Value::Bool(r.Contains(l));
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (l.kind() == ValueKind::kReal) {
        double a = l.AsReal(), b = r.AsReal();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Real(a + b);
          case BinaryOp::kSub:
            return Value::Real(a - b);
          case BinaryOp::kMul:
            return Value::Real(a * b);
          default:
            return Value::Real(a / b);
        }
      }
      int64_t a = l.AsInteger(), b = r.AsInteger();
      if (op == BinaryOp::kDiv && b == 0) {
        return Status::InvalidArgument("integer division by zero");
      }
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Integer(a + b);
        case BinaryOp::kSub:
          return Value::Integer(a - b);
        case BinaryOp::kMul:
          return Value::Integer(a * b);
        default:
          return Value::Integer(a / b);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> ApplyCall(CallKind kind, const std::vector<Value>& args,
                        const Database& db, TimePoint at) {
  switch (kind) {
    case CallKind::kSize: {
      const Value& v = args[0];
      if (v.is_null()) return Value::Null();
      return Value::Integer(static_cast<int64_t>(v.Elements().size()));
    }
    case CallKind::kDefined:
      return Value::Bool(!args[0].is_null());
    case CallKind::kSnapshot: {
      const Value& v = args[0];
      if (v.is_null()) return Value::Null();
      TimePoint t = at;
      if (args.size() == 2) {
        if (args[1].is_null()) return Value::Null();
        t = ResolveInstant(args[1].AsTime(), db.now());
      }
      Result<Value> snap = db.SnapshotOf(v.AsOid(), t);
      // An undefined snapshot (Section 5.3) evaluates to null rather than
      // failing the whole query.
      if (!snap.ok()) return Value::Null();
      return std::move(snap).value();
    }
    case CallKind::kLifespan: {
      const Value& v = args[0];
      if (v.is_null()) return Value::Null();
      TCH_ASSIGN_OR_RETURN(Interval ls, db.OLifespan(v.AsOid()));
      return Value::List({Value::Time(ls.start()), Value::Time(ls.end())});
    }
    case CallKind::kVIdentical:
    case CallKind::kVEqual:
    case CallKind::kVInstant:
    case CallKind::kVWeak:
    case CallKind::kVDeep: {
      const Value& a = args[0];
      const Value& b = args[1];
      if (a.is_null() || b.is_null()) return Value::Null();
      TCH_ASSIGN_OR_RETURN(const Object* oa, db.FindObject(a.AsOid()));
      TCH_ASSIGN_OR_RETURN(const Object* ob, db.FindObject(b.AsOid()));
      switch (kind) {
        case CallKind::kVIdentical:
          return Value::Bool(EqualByIdentity(*oa, *ob));
        case CallKind::kVEqual:
          return Value::Bool(EqualByValue(*oa, *ob));
        case CallKind::kVDeep:
          return Value::Bool(DeepValueEqual(db, *oa, *ob));
        case CallKind::kVInstant:
          return Value::Bool(InstantaneousValueEqual(*oa, *ob, db.now()));
        default:
          return Value::Bool(WeakValueEqual(*oa, *ob, db.now()));
      }
    }
  }
  return Status::Internal("unhandled call kind");
}

Value ProjectStoredAttribute(const Value& stored, TimePoint t) {
  if (stored.kind() != ValueKind::kTemporal) return stored;
  const Value* projected = stored.AsTemporal().At(t);
  return projected == nullptr ? Value::Null() : *projected;
}

namespace {

class Evaluator {
 public:
  Evaluator(const Database& db, const ValueEnv& env, TimePoint at)
      : db_(db), env_(env), at_(ResolveInstant(at, db.now())) {}

  Result<Value> Eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kVar: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          return Status::Internal("unbound variable '" + e.name +
                                  "' at evaluation time");
        }
        return Value::OfOid(it->second);
      }
      case ExprKind::kAttrAccess:
        return EvalAttrAccess(e);
      case ExprKind::kNot: {
        TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.base));
        return ApplyNot(v);
      }
      case ExprKind::kNegate: {
        TCH_ASSIGN_OR_RETURN(Value v, Eval(*e.base));
        return ApplyNegate(v);
      }
      case ExprKind::kBinary:
        return EvalBinary(e);
      case ExprKind::kCall:
        return EvalCall(e);
      case ExprKind::kSetCtor:
      case ExprKind::kListCtor: {
        std::vector<Value> elems;
        elems.reserve(e.args.size());
        for (const ExprPtr& a : e.args) {
          TCH_ASSIGN_OR_RETURN(Value v, Eval(*a));
          elems.push_back(std::move(v));
        }
        return e.kind == ExprKind::kSetCtor ? Value::Set(std::move(elems))
                                            : Value::List(std::move(elems));
      }
      case ExprKind::kRecCtor: {
        std::vector<Value::Field> fields;
        for (const auto& [name, fe] : e.rec_fields) {
          TCH_ASSIGN_OR_RETURN(Value v, Eval(*fe));
          fields.emplace_back(name, std::move(v));
        }
        return Value::Record(std::move(fields));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  Result<Value> EvalAttrAccess(const Expr& e) {
    TCH_ASSIGN_OR_RETURN(Value base, Eval(*e.base));
    if (base.is_null()) return Value::Null();
    const Object* obj = db_.GetObject(base.AsOid());
    if (obj == nullptr) {
      return Status::NotFound("dangling reference " +
                              base.AsOid().ToString());
    }
    const Value* stored = obj->Attribute(e.name);
    if (stored == nullptr) return Value::Null();
    TimePoint t = e.at.has_value() ? ResolveInstant(*e.at, db_.now()) : at_;
    return ProjectStoredAttribute(*stored, t);
  }

  Result<Value> EvalBinary(const Expr& e) {
    // Short-circuit connectives first.
    if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
      TCH_ASSIGN_OR_RETURN(Value l, Eval(*e.base));
      bool lb = !l.is_null() && l.AsBool();
      if (e.op == BinaryOp::kAnd && !lb) return Value::Bool(false);
      if (e.op == BinaryOp::kOr && lb) return Value::Bool(true);
      TCH_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs));
      return Value::Bool(!r.is_null() && r.AsBool());
    }
    TCH_ASSIGN_OR_RETURN(Value l, Eval(*e.base));
    TCH_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs));
    return ApplyBinaryOp(e.op, l, r);
  }

  Result<Value> EvalCall(const Expr& e) {
    std::optional<CallKind> kind = CallKindOf(e.name);
    if (!kind.has_value()) {
      return Status::Internal("unknown function '" + e.name + "'");
    }
    // snapshot(x, t) evaluates the instant argument only when the object
    // argument is non-null (null short-circuits the whole call).
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) {
      if (*kind == CallKind::kSnapshot && args.size() == 1 &&
          args[0].is_null()) {
        return Value::Null();
      }
      TCH_ASSIGN_OR_RETURN(Value v, Eval(*a));
      args.push_back(std::move(v));
    }
    return ApplyCall(*kind, args, db_, at_);
  }

  const Database& db_;
  const ValueEnv& env_;
  TimePoint at_;
};

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const Database& db,
                           const ValueEnv& env, TimePoint at) {
  return Evaluator(db, env, at).Eval(expr);
}

namespace {

// Recursively extends `env` with one binder at a time (the cartesian
// product of the binders' extents) and emits rows at the leaves.
Status EnumerateBindings(const SelectStmt& stmt, const Database& db,
                         TimePoint at, size_t binder_index, ValueEnv* env,
                         std::vector<SelectRow>* rows) {
  if (binder_index == stmt.binders.size()) {
    if (stmt.where != nullptr) {
      TCH_ASSIGN_OR_RETURN(Value keep,
                           EvaluateExpr(*stmt.where, db, *env, at));
      if (keep.is_null() || !keep.AsBool()) return Status::OK();
    }
    SelectRow row;
    row.oid = env->find(stmt.binders.front().var)->second;
    for (const ExprPtr& p : stmt.projections) {
      TCH_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*p, db, *env, at));
      row.columns.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
    return Status::OK();
  }
  const SelectBinder& binder = stmt.binders[binder_index];
  for (Oid oid : db.Pi(binder.class_name, at)) {
    auto [it, inserted] = env->insert_or_assign(binder.var, oid);
    (void)it;
    (void)inserted;
    TCH_RETURN_IF_ERROR(
        EnumerateBindings(stmt, db, at, binder_index + 1, env, rows));
  }
  env->erase(binder.var);
  return Status::OK();
}

}  // namespace

namespace {

// One requirement accumulator per oid (all_attrs wins over any list).
using ReqMap = std::map<Oid, WhenBoundaryReq>;

WhenBoundaryReq& ReqFor(Oid oid, ReqMap* reqs) {
  auto [it, inserted] = reqs->try_emplace(oid);
  if (inserted) it->second.oid = oid;
  return it->second;
}

void MentionLiteralOids(const Value& literal, ReqMap* reqs) {
  std::vector<Oid> oids;
  literal.CollectOids(&oids);
  for (Oid oid : oids) ReqFor(oid, reqs);
}

// True when the call reads the whole object state of its oid arguments,
// so any attribute change can flip the condition.
bool CallReadsWholeState(CallKind kind) {
  switch (kind) {
    case CallKind::kSnapshot:
    case CallKind::kVIdentical:
    case CallKind::kVEqual:
    case CallKind::kVInstant:
    case CallKind::kVWeak:
    case CallKind::kVDeep:
      return true;
    default:
      return false;
  }
}

void WalkForReqs(const Expr& e, ReqMap* reqs) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      // A bare oid mention: the oid value itself is constant over time, so
      // only the object's lifespan edges matter (always contributed).
      MentionLiteralOids(e.literal, reqs);
      return;
    case ExprKind::kAttrAccess:
      if (e.base->kind == ExprKind::kLiteral &&
          e.base->literal.kind() == ValueKind::kOid) {
        // The condition reads exactly this attribute of this object.
        WhenBoundaryReq& req = ReqFor(e.base->literal.AsOid(), reqs);
        if (!req.all_attrs) req.attrs.push_back(e.name);
        return;
      }
      WalkForReqs(*e.base, reqs);
      return;
    case ExprKind::kCall: {
      std::optional<CallKind> kind = CallKindOf(e.name);
      const bool whole_state = kind.has_value() && CallReadsWholeState(*kind);
      for (const ExprPtr& a : e.args) {
        if (whole_state && a->kind == ExprKind::kLiteral &&
            a->literal.kind() == ValueKind::kOid) {
          ReqFor(a->literal.AsOid(), reqs).all_attrs = true;
          continue;
        }
        WalkForReqs(*a, reqs);
      }
      return;
    }
    default:
      break;
  }
  if (e.base != nullptr) WalkForReqs(*e.base, reqs);
  if (e.rhs != nullptr) WalkForReqs(*e.rhs, reqs);
  for (const ExprPtr& a : e.args) WalkForReqs(*a, reqs);
  for (const auto& [unused, fe] : e.rec_fields) WalkForReqs(*fe, reqs);
}

}  // namespace

std::vector<WhenBoundaryReq> CollectWhenBoundaryReqs(const Expr& condition) {
  ReqMap reqs;
  WalkForReqs(condition, &reqs);
  std::vector<WhenBoundaryReq> out;
  out.reserve(reqs.size());
  for (auto& [oid, req] : reqs) {
    std::sort(req.attrs.begin(), req.attrs.end());
    req.attrs.erase(std::unique(req.attrs.begin(), req.attrs.end()),
                    req.attrs.end());
    if (req.all_attrs) req.attrs.clear();
    out.push_back(std::move(req));
  }
  return out;
}

std::vector<TimePoint> CollectWhenBoundaries(
    const std::vector<WhenBoundaryReq>& reqs, const Database& db,
    const Interval* window) {
  const TimePoint now = db.now();
  // The evaluated range [lo, hi]: all of [0, now], or its intersection
  // with the (resolved) `during` window. An empty range means the
  // condition is never evaluated at all — identical on the VM and
  // tree-walker paths, so window-excluded errors fire on neither.
  TimePoint lo = 0;
  TimePoint hi = now;
  if (window != nullptr) {
    if (window->empty()) return {};
    lo = std::max<TimePoint>(window->start(), 0);
    hi = std::min(window->end(), now);
    if (lo > hi) return {};
  }
  std::vector<TimePoint> boundaries = {lo};
  auto add = [&boundaries, lo, hi](TimePoint t) {
    if (t >= lo && t <= hi) boundaries.push_back(t);
  };
  auto add_segments = [&add](const Value& stored) {
    if (stored.kind() != ValueKind::kTemporal) return;
    for (const auto& seg : stored.AsTemporal().segments()) {
      add(seg.interval.start());
      if (!seg.interval.is_ongoing()) add(seg.interval.end() + 1);
    }
  };
  for (const WhenBoundaryReq& req : reqs) {
    const Object* obj = db.GetObject(req.oid);
    if (obj == nullptr) continue;
    add(obj->lifespan().start());
    if (!obj->lifespan().is_ongoing()) add(obj->lifespan().end() + 1);
    if (req.all_attrs) {
      for (const std::string& name : obj->AttributeNames()) {
        add_segments(*obj->Attribute(name));
      }
      continue;
    }
    for (const std::string& name : req.attrs) {
      // A value index on this attribute keeps the same boundary instants
      // pre-sorted per oid (core/db/index.h): slice the window by binary
      // search instead of walking every segment. The point set is
      // identical to the segment walk, so an index never changes the
      // answer — it only skips the out-of-range segments.
      if (const std::vector<TimePoint>* tl = db.AttrTimeline(req.oid, name)) {
        auto first = std::lower_bound(tl->begin(), tl->end(), lo);
        auto last = std::upper_bound(first, tl->end(), hi);
        boundaries.insert(boundaries.end(), first, last);
        continue;
      }
      const Value* stored = obj->Attribute(name);
      if (stored != nullptr) add_segments(*stored);
    }
  }
  // The dominant shape (one object, one attribute) emits boundaries in
  // ascending order already — temporal segments are stored sorted and
  // each segment contributes start <= end+1 <= next start. Sorting an
  // already-sorted vector still pays the full comparison bill, and this
  // runs once per WHEN execution, so skip it when possible.
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    std::sort(boundaries.begin(), boundaries.end());
  }
  // Sorted does NOT imply unique here: the carry-in `lo` duplicates the
  // first boundary whenever a segment edge lands exactly on the window
  // start (and distinct attributes can share edges). A duplicate
  // boundary would emit a degenerate [b, b-1] piece, so the dedup must
  // run even when the fast path above skipped the sort.
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return boundaries;
}

Result<IntervalSet> EvaluateWhen(const Expr& condition, const Database& db,
                                 const Interval* window) {
  // Boundaries at which the condition can change truth value — computed
  // once, sorted and deduplicated, restricted to the attribute histories
  // the condition actually reads (see CollectWhenBoundaryReqs) and to
  // the `during` window when one is present.
  std::vector<TimePoint> boundaries = CollectWhenBoundaries(
      CollectWhenBoundaryReqs(condition), db, window);
  const TimePoint now = db.now();
  const ValueEnv empty;  // the condition is closed; hoisted out of the loop
  IntervalSet held;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    TimePoint from = boundaries[i];
    TimePoint to = i + 1 < boundaries.size() ? boundaries[i + 1] - 1 : now;
    TCH_ASSIGN_OR_RETURN(Value v,
                         EvaluateExpr(condition, db, empty, from));
    if (!v.is_null() && v.AsBool()) held.Add(Interval(from, to));
  }
  return held;
}

Result<std::vector<SelectRow>> EvaluateSelect(const SelectStmt& stmt,
                                              const Database& db) {
  if (stmt.binders.empty()) {
    return Status::InvalidArgument("SELECT has no FROM binder");
  }
  TimePoint at =
      stmt.at.has_value() ? ResolveInstant(*stmt.at, db.now()) : db.now();
  std::vector<SelectRow> rows;
  ValueEnv env;
  TCH_RETURN_IF_ERROR(EnumerateBindings(stmt, db, at, 0, &env, &rows));
  return rows;
}

}  // namespace tchimera
