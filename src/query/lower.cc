#include "query/lower.h"

#include <limits>
#include <utility>

#include "core/temporal/instant.h"
#include "core/types/type.h"
#include "query/type_checker.h"

namespace tchimera {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst:
      return "const";
    case OpCode::kLoadSelf:
      return "self";
    case OpCode::kLoadAttr:
      return "attr";
    case OpCode::kNot:
      return "not";
    case OpCode::kNegate:
      return "neg";
    case OpCode::kBinary:
      return "binary";
    case OpCode::kCall:
      return "call";
    case OpCode::kMakeSet:
      return "make-set";
    case OpCode::kMakeList:
      return "make-list";
    case OpCode::kMakeRec:
      return "make-rec";
    case OpCode::kMaskIfTrue:
      return "mask-if-true";
    case OpCode::kMaskIfNotTrue:
      return "mask-if-not-true";
    case OpCode::kMaskIfNotNull:
      return "mask-if-not-null";
    case OpCode::kPopMask:
      return "pop-mask";
    case OpCode::kAndMerge:
      return "and-merge";
    case OpCode::kOrMerge:
      return "or-merge";
    case OpCode::kIndexProbe:
      return "index-probe";
  }
  return "?";
}

ProbeOp ProbeOpOf(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return ProbeOp::kLt;
    case BinaryOp::kLe:
      return ProbeOp::kLe;
    case BinaryOp::kGt:
      return ProbeOp::kGt;
    case BinaryOp::kGe:
      return ProbeOp::kGe;
    default:
      return ProbeOp::kEq;
  }
}

namespace {

bool Truthy(const Value& v) { return !v.is_null() && v.AsBool(); }

// A lowering failure that means "use the tree-walker", as opposed to a
// genuine statement error (type errors propagate unchanged). Never
// escapes this file: LowerSelect/LowerWhen convert it into a
// LowerOutcome fallback reason.
Status Fallback(std::string reason) {
  return Status::FailedPrecondition(std::move(reason));
}

// The value of a lowered subexpression: either a compile-time constant
// (folded) or a register holding the per-row value.
struct Operand {
  bool is_const = false;
  Value cv;          // is_const
  uint16_t reg = 0;  // !is_const

  static Operand Const(Value v) {
    Operand o;
    o.is_const = true;
    o.cv = std::move(v);
    return o;
  }
  static Operand Reg(uint16_t r) {
    Operand o;
    o.reg = r;
    return o;
  }
};

class Lowerer {
 public:
  Lowerer(ExecProgram* prog, const Database& db, std::string binder)
      : prog_(prog), db_(db), binder_(std::move(binder)) {}

  // Lowers `e` into a fragment whose per-row value lands in the returned
  // fragment's `result` register.
  // `self_reg_` and `attr_cse_` deliberately persist across fragments:
  // a projection reuses the self column and depth-0 attribute loads the
  // WHERE fragment already computed — later fragments run over a subset
  // of the rows earlier fragments wrote (WHERE compacts the selection).
  Result<Fragment> LowerFragment(const Expr& e) {
    Fragment frag;
    frag.begin = static_cast<uint32_t>(prog_->code.size());
    TCH_ASSIGN_OR_RETURN(Operand op, LowerExpr(e));
    TCH_ASSIGN_OR_RETURN(frag.result, Materialize(op));
    frag.end = static_cast<uint32_t>(prog_->code.size());
    return frag;
  }

 private:
  Result<uint16_t> NewReg() {
    if (prog_->num_regs == std::numeric_limits<uint16_t>::max()) {
      return Fallback("expression too large to compile (register overflow)");
    }
    return prog_->num_regs++;
  }

  uint32_t AddConst(Value v) {
    prog_->constants.push_back(std::move(v));
    return static_cast<uint32_t>(prog_->constants.size() - 1);
  }

  Instr& Emit(OpCode op) {
    prog_->code.emplace_back();
    prog_->code.back().op = op;
    return prog_->code.back();
  }

  Result<uint16_t> Materialize(const Operand& o) {
    if (!o.is_const) return o.reg;
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    Instr& i = Emit(OpCode::kLoadConst);
    i.dst = dst;
    i.idx = AddConst(o.cv);
    return dst;
  }

  Result<Operand> LowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Operand::Const(e.literal);
      case ExprKind::kVar: {
        if (binder_.empty() || e.name != binder_) {
          return Fallback("free variable '" + e.name +
                          "' (only the single FROM binder compiles)");
        }
        if (!self_reg_.has_value()) {
          TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
          Emit(OpCode::kLoadSelf).dst = dst;
          self_reg_ = dst;
        }
        return Operand::Reg(*self_reg_);
      }
      case ExprKind::kAttrAccess: {
        TCH_ASSIGN_OR_RETURN(Operand base, LowerExpr(*e.base));
        // Common subexpression elimination for attribute loads: the big
        // repeated term in real predicates (`x.salary > a and x.salary <
        // b`) is the attribute access, and each load is a per-row
        // temporal lookup. A load emitted at mask depth 0 was computed
        // for every row any later occurrence could run on (deeper mask
        // windows select subsets), and re-reading the same attribute of
        // the same base at the same instant within one statement is
        // deterministic, so any later occurrence can reuse its register.
        for (const AttrCse& c : attr_cse_) {
          if (c.attr == e.name && c.at == e.at &&
              c.const_base == base.is_const &&
              (base.is_const ? c.base_cv == base.cv
                             : c.base_reg == base.reg)) {
            return Operand::Reg(c.reg);
          }
        }
        TCH_ASSIGN_OR_RETURN(uint16_t a, Materialize(base));
        TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
        Instr& i = Emit(OpCode::kLoadAttr);
        i.dst = dst;
        i.a = a;
        i.attr = e.name;
        i.at = e.at;  // unresolved: the VM substitutes the clock
        if (mask_depth_ == 0) {
          attr_cse_.push_back(AttrCse{base.is_const,
                                      base.is_const ? base.cv : Value(),
                                      base.is_const ? uint16_t{0} : base.reg,
                                      e.name, e.at, dst});
        }
        return Operand::Reg(dst);
      }
      case ExprKind::kNot: {
        TCH_ASSIGN_OR_RETURN(Operand v, LowerExpr(*e.base));
        if (v.is_const) return Operand::Const(ApplyNot(v.cv));
        TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
        Instr& i = Emit(OpCode::kNot);
        i.dst = dst;
        i.a = v.reg;
        return Operand::Reg(dst);
      }
      case ExprKind::kNegate: {
        TCH_ASSIGN_OR_RETURN(Operand v, LowerExpr(*e.base));
        if (v.is_const) return Operand::Const(ApplyNegate(v.cv));
        TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
        Instr& i = Emit(OpCode::kNegate);
        i.dst = dst;
        i.a = v.reg;
        return Operand::Reg(dst);
      }
      case ExprKind::kBinary:
        return LowerBinary(e);
      case ExprKind::kCall:
        return LowerCall(e);
      case ExprKind::kSetCtor:
      case ExprKind::kListCtor:
        return LowerCtor(e);
      case ExprKind::kRecCtor:
        return LowerRecCtor(e);
    }
    return Fallback("unknown expression kind");
  }

  Result<Operand> LowerBinary(const Expr& e) {
    if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
      return LowerConnective(e);
    }
    TCH_ASSIGN_OR_RETURN(Operand l, LowerExpr(*e.base));
    TCH_ASSIGN_OR_RETURN(Operand r, LowerExpr(*e.rhs));
    if (l.is_const && r.is_const) {
      Result<Value> folded = ApplyBinaryOp(e.op, l.cv, r.cv);
      // A pure subtree that would error (1/0) is not folded: the error
      // must fire only when a row actually evaluates it.
      if (folded.ok()) return Operand::Const(std::move(folded).value());
    }
    TCH_ASSIGN_OR_RETURN(uint16_t a, Materialize(l));
    TCH_ASSIGN_OR_RETURN(uint16_t b, Materialize(r));
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    Instr& i = Emit(OpCode::kBinary);
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.bop = e.op;
    return Operand::Reg(dst);
  }

  // and/or: the right operand is evaluated only over the rows the
  // tree-walker would evaluate it on (lhs truthy for AND, lhs not truthy
  // for OR) — a mask window — then merged back with null-absorbing
  // two-valued semantics.
  Result<Operand> LowerConnective(const Expr& e) {
    const bool is_and = e.op == BinaryOp::kAnd;
    TCH_ASSIGN_OR_RETURN(Operand l, LowerExpr(*e.base));
    if (l.is_const) {
      bool lb = Truthy(l.cv);
      // The decided side never evaluates the rhs at all.
      if (is_and && !lb) return Operand::Const(Value::Bool(false));
      if (!is_and && lb) return Operand::Const(Value::Bool(true));
      TCH_ASSIGN_OR_RETURN(Operand r, LowerExpr(*e.rhs));
      if (r.is_const) return Operand::Const(Value::Bool(Truthy(r.cv)));
      TCH_ASSIGN_OR_RETURN(uint16_t a, Materialize(l));
      TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
      Instr& m = Emit(is_and ? OpCode::kAndMerge : OpCode::kOrMerge);
      m.dst = dst;
      m.a = a;
      m.b = r.reg;
      return Operand::Reg(dst);
    }
    uint16_t a = l.reg;
    Emit(is_and ? OpCode::kMaskIfTrue : OpCode::kMaskIfNotTrue).a = a;
    ++mask_depth_;
    TCH_ASSIGN_OR_RETURN(Operand r, LowerExpr(*e.rhs));
    TCH_ASSIGN_OR_RETURN(uint16_t b, Materialize(r));
    --mask_depth_;
    Emit(OpCode::kPopMask);
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    Instr& m = Emit(is_and ? OpCode::kAndMerge : OpCode::kOrMerge);
    m.dst = dst;
    m.a = a;
    m.b = b;
    return Operand::Reg(dst);
  }

  Result<Operand> LowerCall(const Expr& e) {
    std::optional<CallKind> kind = CallKindOf(e.name);
    if (!kind.has_value()) {
      return Fallback("unknown function '" + e.name + "'");
    }
    // size/defined are pure over their argument value: foldable.
    const bool pure = *kind == CallKind::kSize || *kind == CallKind::kDefined;
    std::vector<Operand> args;
    args.reserve(e.args.size());
    const bool lazy_second = *kind == CallKind::kSnapshot &&
                             e.args.size() == 2;
    bool masked = false;
    for (const ExprPtr& a : e.args) {
      if (lazy_second && args.size() == 1) {
        // snapshot(x, t): t is evaluated only where x is non-null.
        if (args[0].is_const) {
          if (args[0].cv.is_null()) return Operand::Const(Value::Null());
        } else {
          Emit(OpCode::kMaskIfNotNull).a = args[0].reg;
          ++mask_depth_;
          masked = true;
        }
      }
      TCH_ASSIGN_OR_RETURN(Operand v, LowerExpr(*a));
      args.push_back(std::move(v));
    }
    if (masked) {
      --mask_depth_;
      Emit(OpCode::kPopMask);
    }
    bool all_const = true;
    for (const Operand& a : args) all_const &= a.is_const;
    if (pure && all_const) {
      std::vector<Value> vals;
      vals.reserve(args.size());
      for (const Operand& a : args) vals.push_back(a.cv);
      Result<Value> folded = ApplyCall(*kind, vals, db_, db_.now());
      if (folded.ok()) return Operand::Const(std::move(folded).value());
    }
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    std::vector<uint16_t> regs;
    regs.reserve(args.size());
    for (const Operand& a : args) {
      TCH_ASSIGN_OR_RETURN(uint16_t r, Materialize(a));
      regs.push_back(r);
    }
    Instr& i = Emit(OpCode::kCall);
    i.dst = dst;
    i.call = *kind;
    i.args = std::move(regs);
    return Operand::Reg(dst);
  }

  Result<Operand> LowerCtor(const Expr& e) {
    std::vector<Operand> elems;
    elems.reserve(e.args.size());
    bool all_const = true;
    for (const ExprPtr& a : e.args) {
      TCH_ASSIGN_OR_RETURN(Operand v, LowerExpr(*a));
      all_const &= v.is_const;
      elems.push_back(std::move(v));
    }
    if (all_const) {
      std::vector<Value> vals;
      vals.reserve(elems.size());
      for (Operand& v : elems) vals.push_back(std::move(v.cv));
      return Operand::Const(e.kind == ExprKind::kSetCtor
                                ? Value::Set(std::move(vals))
                                : Value::List(std::move(vals)));
    }
    std::vector<uint16_t> regs;
    regs.reserve(elems.size());
    for (const Operand& v : elems) {
      TCH_ASSIGN_OR_RETURN(uint16_t r, Materialize(v));
      regs.push_back(r);
    }
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    Instr& i = Emit(e.kind == ExprKind::kSetCtor ? OpCode::kMakeSet
                                                 : OpCode::kMakeList);
    i.dst = dst;
    i.args = std::move(regs);
    return Operand::Reg(dst);
  }

  Result<Operand> LowerRecCtor(const Expr& e) {
    std::vector<Operand> fields;
    fields.reserve(e.rec_fields.size());
    bool all_const = true;
    for (const auto& [name, fe] : e.rec_fields) {
      TCH_ASSIGN_OR_RETURN(Operand v, LowerExpr(*fe));
      all_const &= v.is_const;
      fields.push_back(std::move(v));
    }
    if (all_const) {
      std::vector<Value::Field> vals;
      vals.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        vals.emplace_back(e.rec_fields[i].first, fields[i].cv);
      }
      Result<Value> rec = Value::Record(std::move(vals));
      // A record that fails to build (duplicate field) errors at
      // evaluation time, like every other non-foldable failure.
      if (rec.ok()) return Operand::Const(std::move(rec).value());
    }
    std::vector<uint16_t> regs;
    std::vector<std::string> names;
    regs.reserve(fields.size());
    names.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      TCH_ASSIGN_OR_RETURN(uint16_t r, Materialize(fields[i]));
      regs.push_back(r);
      names.push_back(e.rec_fields[i].first);
    }
    TCH_ASSIGN_OR_RETURN(uint16_t dst, NewReg());
    Instr& i = Emit(OpCode::kMakeRec);
    i.dst = dst;
    i.args = std::move(regs);
    i.names = std::move(names);
    return Operand::Reg(dst);
  }

  // A depth-0 attribute load available for reuse: the base is either a
  // folded constant (compared by value — the literal-oid WHEN shape) or
  // a register (the memoized self).
  struct AttrCse {
    bool const_base;
    Value base_cv;
    uint16_t base_reg;
    std::string attr;
    std::optional<TimePoint> at;
    uint16_t reg;
  };

  ExecProgram* prog_;
  const Database& db_;
  std::string binder_;
  std::optional<uint16_t> self_reg_;  // memoized kLoadSelf
  std::vector<AttrCse> attr_cse_;
  int mask_depth_ = 0;  // open mask windows at the emission point
};

// Calls `f(reg&)` for every register the instruction READS (dst excluded).
template <typename F>
void ForEachReadReg(Instr& in, F&& f) {
  switch (in.op) {
    case OpCode::kLoadConst:
    case OpCode::kLoadSelf:
    case OpCode::kPopMask:
      break;
    case OpCode::kLoadAttr:
    case OpCode::kNot:
    case OpCode::kNegate:
    case OpCode::kMaskIfTrue:
    case OpCode::kMaskIfNotTrue:
    case OpCode::kMaskIfNotNull:
      f(in.a);
      break;
    case OpCode::kBinary:
    case OpCode::kAndMerge:
    case OpCode::kOrMerge:
      f(in.a);
      f(in.b);
      break;
    case OpCode::kCall:
    case OpCode::kMakeSet:
    case OpCode::kMakeList:
    case OpCode::kMakeRec:
      for (uint16_t& r : in.args) f(r);
      break;
  }
}

bool WritesDst(const Instr& in) {
  switch (in.op) {
    case OpCode::kMaskIfTrue:
    case OpCode::kMaskIfNotTrue:
    case OpCode::kMaskIfNotNull:
    case OpCode::kPopMask:
      return false;
    default:
      return true;
  }
}

// Register recycling. Lowering allocates a fresh register per temporary,
// which keeps the emitter simple but makes the VM's per-batch working set
// proportional to expression size: every register is a column of
// batch x sizeof(Value) bytes, so a moderately compound predicate spills
// the hot loop out of cache. The program is straight-line and each
// register is written exactly once before its reads, so a single linear
// scan can reassign every temporary to a dead register: free a register
// after the instruction holding its last read, and serve new destinations
// from the free stack (most recently freed first — it is the hottest in
// cache). Fragment results are pinned and never recycled: the driver
// reads them after the fragment has finished executing, and a later
// fragment (a projection after the where clause) must not clobber them.
//
// Reuse across a mask boundary is safe: a recycled column can hold stale
// values for rows outside the window that last wrote it, but the VM only
// reads a register on rows the tree-walker would have evaluated it on
// (merges short-circuit before touching the rhs column), which is exactly
// the set of rows the producing instruction wrote.
void RecycleRegisters(ExecProgram* prog) {
  if (prog->num_regs == 0 || prog->code.empty()) return;
  constexpr uint16_t kNone = std::numeric_limits<uint16_t>::max();
  std::vector<bool> pinned(prog->num_regs, false);
  if (prog->where.has_value()) pinned[prog->where->result] = true;
  for (const Fragment& f : prog->projections) pinned[f.result] = true;
  // A WHEN program (selects carry a class extent instead).
  if (prog->class_name.empty()) pinned[prog->condition.result] = true;

  // Index (+1, so 0 means "never read") of each register's last read.
  std::vector<uint32_t> last_read(prog->num_regs, 0);
  for (uint32_t idx = 0; idx < prog->code.size(); ++idx) {
    ForEachReadReg(prog->code[idx],
                   [&](uint16_t& r) { last_read[r] = idx + 1; });
  }

  std::vector<uint16_t> map(prog->num_regs, kNone);
  std::vector<bool> freed(prog->num_regs, false);
  std::vector<uint16_t> free_regs;
  uint16_t next = 0;
  auto alloc = [&]() -> uint16_t {
    if (!free_regs.empty()) {
      uint16_t r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    return next++;
  };
  std::vector<uint16_t> dying;
  for (uint32_t idx = 0; idx < prog->code.size(); ++idx) {
    Instr& in = prog->code[idx];
    dying.clear();
    ForEachReadReg(in, [&](uint16_t& r) {
      const uint16_t old = r;
      // Write-before-read is a lowering invariant; allocate defensively
      // so a violation degrades to "no reuse" instead of aliasing.
      if (map[old] == kNone) map[old] = alloc();
      r = map[old];
      if (last_read[old] == idx + 1 && !pinned[old]) dying.push_back(old);
    });
    if (WritesDst(in)) {
      const uint16_t old = in.dst;
      if (map[old] == kNone) map[old] = alloc();
      in.dst = map[old];
    }
    // Freed only after the destination is placed: an instruction's dst
    // must never alias a register it reads (Dst() clears the uniform
    // flag before the operands are fetched).
    for (uint16_t old : dying) {
      if (!freed[old]) {
        freed[old] = true;
        free_regs.push_back(map[old]);
      }
    }
  }
  auto remap_result = [&](Fragment* f) {
    if (map[f->result] != kNone) f->result = map[f->result];
  };
  if (prog->where.has_value()) remap_result(&*prog->where);
  for (Fragment& f : prog->projections) remap_result(&f);
  if (prog->class_name.empty()) remap_result(&prog->condition);
  prog->num_regs = next;
}

// --- cost-based access-path planning -----------------------------------------

// True for the comparisons a value-index probe can serve (ProbeOpOf).
// kNeq is excluded on semantics, not cost: postings exist only where the
// attribute is defined, so a probe for "everything except v" would also
// have to produce rows whose attribute is null — which the kernel
// comparison `<>` treats as a match (structural compare), while an
// undefined attribute yields null = no row. The scan handles it.
bool IsIndexableOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Rewrites `literal op attr` as `attr op' literal`; false when op is not
// an indexable comparison.
bool FlipComparison(BinaryOp* op) {
  switch (*op) {
    case BinaryOp::kEq:
      return true;
    case BinaryOp::kLt:
      *op = BinaryOp::kGt;
      return true;
    case BinaryOp::kLe:
      *op = BinaryOp::kGe;
      return true;
    case BinaryOp::kGt:
      *op = BinaryOp::kLt;
      return true;
    case BinaryOp::kGe:
      *op = BinaryOp::kLe;
      return true;
    default:
      return false;
  }
}

// The leftmost leaf of the top-level AND spine: the first predicate the
// scan path evaluates on every row. Only this leaf may drive an index
// probe — conjuncts are short-circuited left to right, so every row the
// probe excludes is a row whose scan evaluation already stopped at this
// (error-free) comparison; probing on a later conjunct could skip a row
// on which an earlier conjunct would have raised an error (e.g. 1/0).
const Expr* LeftmostConjunct(const Expr& where) {
  const Expr* e = &where;
  while (e->kind == ExprKind::kBinary && e->op == BinaryOp::kAnd) {
    e = e->base.get();
  }
  return e;
}

struct IndexableLeaf {
  std::string attr;
  BinaryOp op = BinaryOp::kEq;
  const Value* bound = nullptr;
};

// Matches `x.attr <cmp> literal` (either orientation): the binder's
// attribute, no explicit `@ t` (the probe runs at the query instant),
// compared against a non-null literal. A null bound is refused because
// `= null` must also match objects that lack the attribute entirely —
// those carry no posting, so only the scan sees them.
bool MatchIndexableLeaf(const Expr& leaf, const std::string& binder,
                        IndexableLeaf* out) {
  if (leaf.kind != ExprKind::kBinary) return false;
  auto is_attr = [&binder](const Expr* e) {
    return e->kind == ExprKind::kAttrAccess && !e->at.has_value() &&
           e->base != nullptr && e->base->kind == ExprKind::kVar &&
           e->base->name == binder;
  };
  const Expr* attr = leaf.base.get();
  const Expr* lit = leaf.rhs.get();
  BinaryOp op = leaf.op;
  if (is_attr(attr) && lit->kind == ExprKind::kLiteral) {
    if (!IsIndexableOp(op)) return false;
  } else if (attr->kind == ExprKind::kLiteral && is_attr(lit)) {
    std::swap(attr, lit);
    if (!FlipComparison(&op)) return false;
  } else {
    return false;
  }
  if (lit->literal.is_null()) return false;
  out->attr = attr->name;
  out->op = op;
  out->bound = &lit->literal;
  return true;
}

// Chooses index-vs-scan for a lowered select and records the decision
// (either way) for `explain`. The probe is sound for ANY matched leaf —
// it returns exactly the extent rows on which the leaf is truthy — so
// this is purely a cost call: probe + per-candidate extent check beats a
// scan only when the extent is large and the posting range is selective.
// Estimates are plan-time stats: the extent cardinality at the query
// instant and the matching posting count (all validity intervals, so a
// long history inflates it — a deliberately conservative bias toward the
// scan). Data changes can stale them until the plan is recompiled; index
// DDL cannot, because it bumps schema_version and evicts the plan.
void PlanAccessPath(const SelectStmt& s, const Database& db,
                    ExecProgram* prog) {
  if (s.where == nullptr) {
    prog->access_note = "no where clause";
    return;
  }
  IndexableLeaf leaf;
  if (!MatchIndexableLeaf(*LeftmostConjunct(*s.where), prog->binder,
                          &leaf)) {
    prog->access_note = "leftmost conjunct is not an indexable comparison";
    return;
  }
  const IndexDef* def = db.FindValueIndex(leaf.attr);
  if (def == nullptr) {
    prog->access_note = "no value index on '" + leaf.attr + "'";
    return;
  }
  const TimePoint at =
      s.at.has_value() ? ResolveInstant(*s.at, db.now()) : db.now();
  prog->est_extent_rows = db.Pi(prog->class_name, at).size();
  prog->est_index_rows =
      db.IndexProbeEstimate(def->name, ProbeOpOf(leaf.op), *leaf.bound);
  // Below this, the per-candidate extent-membership checks and the probe
  // setup cost roughly what the scan's first comparison column costs.
  constexpr size_t kMinExtentRows = 64;
  if (prog->est_extent_rows < kMinExtentRows) {
    prog->access_note = "extent too small (" +
                        std::to_string(prog->est_extent_rows) +
                        " rows) to beat a scan";
    return;
  }
  if (prog->est_index_rows * 2 >= prog->est_extent_rows) {
    prog->access_note = "probe not selective (" +
                        std::to_string(prog->est_index_rows) +
                        " postings vs " +
                        std::to_string(prog->est_extent_rows) +
                        " extent rows)";
    return;
  }
  Instr probe;
  probe.op = OpCode::kIndexProbe;
  probe.attr = leaf.attr;
  probe.names = {def->name};
  probe.bop = leaf.op;
  prog->constants.push_back(*leaf.bound);
  probe.idx = static_cast<uint32_t>(prog->constants.size() - 1);
  prog->access = std::move(probe);
  prog->access_note = "leftmost conjunct via index " + def->name;
}

Result<LowerOutcome> LowerSelect(SelectStmt* s, const Database& db) {
  // Identical checking (and error messages) to the interpreter path.
  TCH_RETURN_IF_ERROR(TypeCheckSelect(s, db).status());
  if (s->binders.size() != 1) {
    return LowerOutcome{std::nullopt,
                        "multi-binder select (cartesian product) is "
                        "tree-walked"};
  }
  LoweredPlan plan;
  plan.kind = LoweredPlan::Kind::kSelect;
  ExecProgram& prog = plan.program;
  prog.binder = s->binders[0].var;
  prog.class_name = s->binders[0].class_name;
  prog.at = s->at;
  Lowerer lowerer(&prog, db, prog.binder);
  if (s->where != nullptr) {
    Result<Fragment> frag = lowerer.LowerFragment(*s->where);
    if (!frag.ok()) {
      return LowerOutcome{std::nullopt, frag.status().message()};
    }
    prog.where = std::move(frag).value();
  }
  for (const ExprPtr& p : s->projections) {
    Result<Fragment> frag = lowerer.LowerFragment(*p);
    if (!frag.ok()) {
      return LowerOutcome{std::nullopt, frag.status().message()};
    }
    prog.projections.push_back(std::move(frag).value());
  }
  PlanAccessPath(*s, db, &prog);
  RecycleRegisters(&prog);
  return LowerOutcome{std::move(plan), ""};
}

Result<LowerOutcome> LowerWhen(WhenStmt* w, const Database& db) {
  TCH_ASSIGN_OR_RETURN(const Type* t,
                       TypeCheckExpr(w->condition.get(), db, TypeEnv{}));
  if (t->kind() != TypeKind::kBool) {
    return Status::TypeError("WHEN condition must be bool, got " +
                             t->ToString());
  }
  LoweredPlan plan;
  plan.kind = LoweredPlan::Kind::kWhen;
  ExecProgram& prog = plan.program;
  Lowerer lowerer(&prog, db, /*binder=*/"");
  Result<Fragment> frag = lowerer.LowerFragment(*w->condition);
  if (!frag.ok()) {
    return LowerOutcome{std::nullopt, frag.status().message()};
  }
  prog.condition = std::move(frag).value();
  prog.when_reqs = CollectWhenBoundaryReqs(*w->condition);
  if (w->during.has_value()) {
    prog.during = w->during;
    // Concrete endpoints normalize now; a symbolic `now` endpoint is
    // resolved per execution so cached plans survive clock ticks.
    prog.during_normalized =
        !IsNow(w->during->start()) && !IsNow(w->during->end());
  }
  RecycleRegisters(&prog);
  return LowerOutcome{std::move(plan), ""};
}

}  // namespace

Result<LowerOutcome> LowerStatement(Statement* stmt, const Database& db) {
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      return LowerSelect(&*stmt->select, db);
    case Statement::Kind::kWhen:
      return LowerWhen(&*stmt->when, db);
    default:
      return LowerOutcome{std::nullopt,
                          "only select and when statements compile; this "
                          "statement is tree-walked"};
  }
}

// --- explain rendering -------------------------------------------------------

namespace {

std::string RegName(uint16_t r) { return "r" + std::to_string(r); }

std::string InstrToString(const Instr& i, const ExecProgram& prog) {
  switch (i.op) {
    case OpCode::kLoadConst:
      return RegName(i.dst) + " = const " + prog.constants[i.idx].ToString();
    case OpCode::kLoadSelf:
      return RegName(i.dst) + " = self";
    case OpCode::kLoadAttr: {
      std::string out = RegName(i.dst) + " = " + RegName(i.a) + "." + i.attr;
      if (i.at.has_value()) out += " @ " + InstantToString(*i.at);
      return out;
    }
    case OpCode::kNot:
    case OpCode::kNegate:
      return RegName(i.dst) + " = " + OpCodeName(i.op) + " " + RegName(i.a);
    case OpCode::kBinary:
      return RegName(i.dst) + " = " + BinaryOpName(i.bop) + " " +
             RegName(i.a) + " " + RegName(i.b);
    case OpCode::kCall: {
      std::string out =
          RegName(i.dst) + " = call " + std::string(CallKindName(i.call)) +
          "(";
      for (size_t k = 0; k < i.args.size(); ++k) {
        if (k > 0) out += ", ";
        out += RegName(i.args[k]);
      }
      return out + ")";
    }
    case OpCode::kMakeSet:
    case OpCode::kMakeList:
    case OpCode::kMakeRec: {
      std::string out = RegName(i.dst) + " = " + OpCodeName(i.op) + "(";
      for (size_t k = 0; k < i.args.size(); ++k) {
        if (k > 0) out += ", ";
        if (i.op == OpCode::kMakeRec) out += i.names[k] + ": ";
        out += RegName(i.args[k]);
      }
      return out + ")";
    }
    case OpCode::kMaskIfTrue:
    case OpCode::kMaskIfNotTrue:
    case OpCode::kMaskIfNotNull:
      return std::string(OpCodeName(i.op)) + " " + RegName(i.a);
    case OpCode::kPopMask:
      return OpCodeName(i.op);
    case OpCode::kAndMerge:
    case OpCode::kOrMerge:
      return RegName(i.dst) + " = " + OpCodeName(i.op) + " " + RegName(i.a) +
             " " + RegName(i.b);
  }
  return "?";
}

void AppendFragment(const ExecProgram& prog, const Fragment& frag,
                    const std::string& title, std::string* out) {
  *out += "  " + title + " -> " + RegName(frag.result) + "\n";
  for (uint32_t k = frag.begin; k < frag.end; ++k) {
    *out += "    " + std::to_string(k) + ": " +
            InstrToString(prog.code[k], prog) + "\n";
  }
}

}  // namespace

std::string ExecProgram::ToString() const {
  std::string out;
  if (!class_name.empty()) {
    out += "  extent: " + class_name + " (binder " + binder + ") at " +
           (at.has_value() ? InstantToString(*at) : std::string("now")) +
           "\n";
    // The planner's access-path decision, visible either way.
    if (access.has_value()) {
      out += "  access: index " + access->names[0] + " (" + access->attr +
             " " + BinaryOpName(access->bop) + " " +
             constants[access->idx].ToString() + "), est " +
             std::to_string(est_index_rows) + " postings of " +
             std::to_string(est_extent_rows) + " extent rows\n";
    } else {
      out += "  access: scan";
      if (!access_note.empty()) out += " (" + access_note + ")";
      out += "\n";
    }
  }
  out += "  registers: " + std::to_string(num_regs) +
         ", constants: " + std::to_string(constants.size()) + "\n";
  if (where.has_value()) AppendFragment(*this, *where, "where", &out);
  for (size_t i = 0; i < projections.size(); ++i) {
    AppendFragment(*this, projections[i], "project[" + std::to_string(i) + "]",
                   &out);
  }
  if (class_name.empty()) {
    // A WHEN program (select programs carry a class extent instead).
    AppendFragment(*this, condition, "condition", &out);
  }
  if (!when_reqs.empty()) {
    out += "  boundaries:";
    for (const WhenBoundaryReq& req : when_reqs) {
      out += " " + req.oid.ToString();
      if (req.all_attrs) {
        out += "(*)";
      } else if (!req.attrs.empty()) {
        out += "(";
        for (size_t i = 0; i < req.attrs.size(); ++i) {
          if (i > 0) out += ",";
          out += req.attrs[i];
        }
        out += ")";
      }
    }
    out += "\n";
  }
  if (during.has_value()) {
    out += "  during: " + during->ToString() +
           (during_normalized ? " (normalized)" : " (symbolic now)") + "\n";
  }
  return out;
}

std::string LoweredPlan::ToString() const {
  std::string out = kind == Kind::kSelect ? "compiled select plan\n"
                                          : "compiled when plan\n";
  return out + program.ToString();
}

}  // namespace tchimera
