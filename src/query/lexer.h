// Tokenizer for TQL. Keywords are case-insensitive (normalized to lower
// case); identifiers keep their spelling. `i<digits>` lexes as an oid
// literal and `t<digits>` / `tnow` as a time literal, matching the value
// notation of the paper's examples.
#ifndef TCHIMERA_QUERY_LEXER_H_
#define TCHIMERA_QUERY_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/token.h"

namespace tchimera {

// Tokenizes the whole input (the final token is kEnd). Fails with
// InvalidArgument on malformed literals or stray characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_LEXER_H_
