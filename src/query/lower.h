// Lowering: type-checked TQL AST -> ExecProgram (compact register bytecode).
//
// The compiled read path is a three-stage pipeline:
//
//   type_checker  --->  lower (this file)  --->  vm.h (batch execution)
//
// LowerStatement type-checks the statement exactly like the interpreter
// (same error messages — a statement that fails to check fails
// identically on both paths), then flattens the expression tree into a
// linear instruction sequence over virtual registers:
//
//   - every builtin call is resolved to a CallKind at compile time (enum
//     dispatch in the VM, no string comparison per row);
//   - attribute accesses carry their resolved attribute name and, when
//     explicit, their `@ t` projection instant;
//   - pure constant subtrees are folded to a single kLoadConst (a pure
//     subtree whose evaluation would *error*, e.g. `1/0`, is deliberately
//     NOT folded — the error must fire only when a row actually reaches
//     it, exactly like the tree-walker);
//   - the short-circuit connectives and/or and snapshot()'s lazy second
//     argument lower to mask instructions, so the VM evaluates a
//     sub-expression over exactly the rows the tree-walker would —
//     data-dependent errors fire on the same rows on both paths;
//   - a WHEN `during [a,b]` window is normalized at compile time when
//     both endpoints are concrete; a symbolic `now` endpoint stays
//     symbolic and is resolved per execution (plans survive clock
//     ticks, so the cache never has to invalidate on `tick`).
//
// Instants inside a program are stored UNRESOLVED (kNow stays symbolic);
// the VM resolves them against the database clock at execution time.
//
// Not everything lowers. Multi-binder selects (cartesian products) and
// the non-query verbs fall back to the tree-walking evaluator; the
// lowering reports a human-readable fallback reason that `explain`
// surfaces and the plan cache remembers (negative entries).
#ifndef TCHIMERA_QUERY_LOWER_H_
#define TCHIMERA_QUERY_LOWER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/db/database.h"
#include "core/temporal/interval.h"
#include "query/ast.h"
#include "query/evaluator.h"

namespace tchimera {

enum class OpCode : uint8_t {
  kLoadConst,     // reg[dst] = constants[idx]
  kLoadSelf,      // reg[dst] = the row's binder oid (select programs only)
  kLoadAttr,      // reg[dst] = project(reg[a].attr, at or row instant)
  kNot,           // reg[dst] = ApplyNot(reg[a])
  kNegate,        // reg[dst] = ApplyNegate(reg[a])
  kBinary,        // reg[dst] = ApplyBinaryOp(bop, reg[a], reg[b])
  kCall,          // reg[dst] = ApplyCall(call, reg[args...])
  kMakeSet,       // reg[dst] = set{reg[args...]}
  kMakeList,      // reg[dst] = list[reg[args...]]
  kMakeRec,       // reg[dst] = rec(names[i]: reg[args[i]])
  kMaskIfTrue,    // push mask: rows where reg[a] is non-null true
  kMaskIfNotTrue, // push mask: rows where reg[a] is null or false
  kMaskIfNotNull, // push mask: rows where reg[a] is non-null
  kPopMask,       // pop the innermost mask
  kAndMerge,      // reg[dst] = truthy(reg[a]) ? Bool(truthy(reg[b])) : false
  kOrMerge,       // reg[dst] = truthy(reg[a]) ? true : Bool(truthy(reg[b]))
  kIndexProbe,    // access path only (ExecProgram::access, never in code):
                  // candidates = IndexProbe(names[0], bop, constants[idx])
};

const char* OpCodeName(OpCode op);

// Maps an indexable comparison (=, <, <=, >, >=) to its index ProbeOp.
// Callers guarantee `op` is one of those five (the planner never builds
// a kIndexProbe access from any other operator).
ProbeOp ProbeOpOf(BinaryOp op);

struct Instr {
  OpCode op = OpCode::kLoadConst;
  uint16_t dst = 0;
  uint16_t a = 0;   // first operand register
  uint16_t b = 0;   // second operand register (kBinary / kAndMerge / kOrMerge)
  uint32_t idx = 0; // constant index (kLoadConst)
  BinaryOp bop = BinaryOp::kEq;    // kBinary
  CallKind call = CallKind::kSize; // kCall
  std::string attr;                // kLoadAttr attribute name
  // kLoadAttr: explicit `@ t` (unresolved; nullopt = the row instant).
  std::optional<TimePoint> at;
  std::vector<uint16_t> args;      // kCall / kMakeSet / kMakeList / kMakeRec
  std::vector<std::string> names;  // kMakeRec field names
};

// A contiguous instruction range computing one value per row into
// `result`. A SELECT program has one fragment for WHERE (absent = keep
// every row) and one per projection; a WHEN program has exactly one for
// the condition.
struct Fragment {
  uint32_t begin = 0;
  uint32_t end = 0;
  uint16_t result = 0;
};

// A compiled, database-independent-except-for-schema query program.
struct ExecProgram {
  std::vector<Value> constants;
  std::vector<Instr> code;
  uint16_t num_regs = 0;

  // SELECT: the (single) binder and its class extent.
  std::string binder;
  std::string class_name;
  std::optional<TimePoint> at;  // evaluation instant (unresolved)
  std::optional<Fragment> where;
  std::vector<Fragment> projections;

  // SELECT access path. When set, the VM sources candidate rows from a
  // temporal secondary index instead of scanning the extent: a single
  // kIndexProbe instruction (names[0] = index name, attr = indexed
  // attribute, bop = comparison, idx = constant-pool bound), chosen by
  // the cost-based planner from the leftmost conjunct of the WHERE
  // clause. The probe is a strict superset filter — the full WHERE still
  // runs over the candidates — so rows, order, and error behavior are
  // identical to the scan. `access_note` records the planner's decision
  // (either way) for `explain`; the estimates are the cardinalities the
  // decision was based on, frozen at plan time (a plan outlives data
  // changes but never an index DDL: CreateIndex/DropIndex bump
  // schema_version, which evicts cached plans).
  std::optional<Instr> access;
  std::string access_note;
  size_t est_index_rows = 0;
  size_t est_extent_rows = 0;

  // WHEN: the condition and the compile-time boundary analysis.
  Fragment condition;
  std::vector<WhenBoundaryReq> when_reqs;
  // `during [a,b]` window; `during_normalized` when both endpoints were
  // concrete at compile time (the stored interval is final).
  std::optional<Interval> during;
  bool during_normalized = false;

  // Opcode listing for `explain` (one instruction per line).
  std::string ToString() const;
};

// A lowered statement ready for the VM.
struct LoweredPlan {
  enum class Kind { kSelect, kWhen };
  Kind kind = Kind::kSelect;
  ExecProgram program;

  std::string ToString() const;  // explain rendering
};

// The outcome of lowering: a plan, or a fallback reason naming the
// construct the compiler does not handle (the tree-walker does).
struct LowerOutcome {
  std::optional<LoweredPlan> plan;
  std::string fallback_reason;  // set iff !plan

  bool compiled() const { return plan.has_value(); }
};

// Lowers a parsed statement. Type-checks it first (annotating `inferred`,
// same checks and messages as the interpreter): a statement that fails
// the type checker returns that error. A well-typed statement the
// compiler cannot handle returns a LowerOutcome with a fallback reason.
Result<LowerOutcome> LowerStatement(Statement* stmt, const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_LOWER_H_
