// Evaluation of type-checked TQL expressions and SELECT statements.
//
// Expressions are evaluated at an instant `at` (the query's AT time,
// default now). Temporal attribute access projects the attribute's
// function at that instant (or at the explicit `@ t`); a projection
// outside the function's domain yields null. Null propagates through
// operators; a null predicate counts as false (two-valued semantics with
// null absorption — documented in DESIGN.md).
//
// This header also exposes the *scalar kernels* — the single-value
// semantics of every operator and builtin call. The tree-walking
// evaluator below and the batch VM (query/vm.h) both execute through
// these kernels, so the compiled and interpreted paths cannot drift:
// the VM differs only in iteration order, never in per-value semantics.
#ifndef TCHIMERA_QUERY_EVALUATOR_H_
#define TCHIMERA_QUERY_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval_set.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

// The runtime environment: binder name -> bound oid.
using ValueEnv = std::map<std::string, Oid, std::less<>>;

// --- scalar kernels ----------------------------------------------------------

// The builtin calls of the expression language, resolved once (at lowering
// or at the first evaluation) so batch execution dispatches on an enum,
// not a string.
enum class CallKind : uint8_t {
  kSize,
  kDefined,
  kSnapshot,
  kLifespan,
  kVIdentical,
  kVEqual,
  kVInstant,
  kVWeak,
  kVDeep,
};

// The CallKind for a function name; nullopt for unknown functions.
std::optional<CallKind> CallKindOf(std::string_view fn);
const char* CallKindName(CallKind kind);

// `not v`: null propagates.
Value ApplyNot(const Value& v);
// Unary minus: null propagates; real/integer dispatch on the value kind.
Value ApplyNegate(const Value& v);
// Every binary operator EXCEPT the short-circuiting connectives and/or
// (those are control flow, handled by each executor). Null semantics per
// operator match DESIGN.md: =/<> compare structurally (null = null holds),
// orderings and arithmetic propagate null, `in` propagates a null
// collection.
Result<Value> ApplyBinaryOp(BinaryOp op, const Value& l, const Value& r);
// A builtin call over already-evaluated argument values. `at` is the
// evaluation instant (snapshot()'s default projection instant); the
// equality predicates vinstant/vweak compare at the clock's now, exactly
// like the tree-walker.
Result<Value> ApplyCall(CallKind kind, const std::vector<Value>& args,
                        const Database& db, TimePoint at);
// Projects a stored attribute value at instant `t`: a temporal value is
// sampled (null outside its domain), a static value passes through.
Value ProjectStoredAttribute(const Value& stored, TimePoint t);

// Evaluates a (type-checked) expression at instant `at`.
Result<Value> EvaluateExpr(const Expr& expr, const Database& db,
                           const ValueEnv& env, TimePoint at);

// One result row of a SELECT.
struct SelectRow {
  Oid oid;                     // the bound object
  std::vector<Value> columns;  // one value per projection
};

// Runs a SELECT: iterates pi(class, at), filters with WHERE, evaluates
// the projections. The statement must have been type-checked first.
Result<std::vector<SelectRow>> EvaluateSelect(const SelectStmt& stmt,
                                              const Database& db);

// --- WHEN boundary analysis --------------------------------------------------

// What one mentioned object contributes to the boundary set of a WHEN
// condition. The condition's truth value can only change at the lifespan
// edges of the objects it mentions and at the segment boundaries of the
// attribute histories it actually reads — scanning the other attributes
// would only add redundant split points (the answer is coalesced anyway),
// so the requirements name exactly the attributes the condition touches.
// `all_attrs` is the conservative case: the whole object state feeds the
// condition (snapshot(), the v* equality predicates).
struct WhenBoundaryReq {
  Oid oid;
  bool all_attrs = false;
  std::vector<std::string> attrs;  // sorted, unique; used when !all_attrs
};

// Static analysis of a closed condition: one requirement per mentioned
// oid. Computed once per statement (at lowering for the VM, at entry for
// the tree-walker) — never per boundary.
std::vector<WhenBoundaryReq> CollectWhenBoundaryReqs(const Expr& condition);

// The sorted, deduplicated evaluation boundaries for the given
// requirements against the current database state. Without a window the
// boundaries cover [0, now] and always contain 0; with a (resolved)
// `during` window they cover [max(window.start, 0), min(window.end, now)]
// instead: the carry-in instant `lo` plus every boundary inside the
// range. An empty range yields no boundaries at all — the condition is
// then never evaluated (so a data-dependent error outside the window
// does not fire on either execution path). When a value index covers a
// required attribute, its per-oid timeline is sliced by binary search
// instead of walking every history segment; the point set is identical
// either way, so an index can never change a WHEN answer.
//
// The boundary list is sorted but NOT always unique before the final
// dedup: the carry-in `lo` can coincide with the first in-range segment
// edge (and two attributes can share an edge), so the dedup pass is
// unconditional even when the is_sorted fast path skips the sort.
std::vector<TimePoint> CollectWhenBoundaries(
    const std::vector<WhenBoundaryReq>& reqs, const Database& db,
    const Interval* window = nullptr);

// Evaluates a WHEN statement: the coalesced set of instants in [0, now]
// at which the closed boolean condition held. Piecewise-exact: the
// condition is constant between the value-change boundaries of every
// attribute history it reads, so it is decided once per piece. `window`
// (a resolved `during` interval, or null) restricts which pieces are
// evaluated; the caller still intersects the answer with the window —
// the last piece extends to `now` regardless.
Result<IntervalSet> EvaluateWhen(const Expr& condition, const Database& db,
                                 const Interval* window = nullptr);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_EVALUATOR_H_
