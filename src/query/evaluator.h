// Evaluation of type-checked TQL expressions and SELECT statements.
//
// Expressions are evaluated at an instant `at` (the query's AT time,
// default now). Temporal attribute access projects the attribute's
// function at that instant (or at the explicit `@ t`); a projection
// outside the function's domain yields null. Null propagates through
// operators; a null predicate counts as false (two-valued semantics with
// null absorption — documented in DESIGN.md).
#ifndef TCHIMERA_QUERY_EVALUATOR_H_
#define TCHIMERA_QUERY_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval_set.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

// The runtime environment: binder name -> bound oid.
using ValueEnv = std::map<std::string, Oid, std::less<>>;

// Evaluates a (type-checked) expression at instant `at`.
Result<Value> EvaluateExpr(const Expr& expr, const Database& db,
                           const ValueEnv& env, TimePoint at);

// One result row of a SELECT.
struct SelectRow {
  Oid oid;                     // the bound object
  std::vector<Value> columns;  // one value per projection
};

// Runs a SELECT: iterates pi(class, at), filters with WHERE, evaluates
// the projections. The statement must have been type-checked first.
Result<std::vector<SelectRow>> EvaluateSelect(const SelectStmt& stmt,
                                              const Database& db);

// Evaluates a WHEN statement: the coalesced set of instants in [0, now]
// at which the closed boolean condition held. Piecewise-exact: the
// condition is constant between the value-change boundaries of every
// object it mentions, so it is decided once per piece.
Result<IntervalSet> EvaluateWhen(const Expr& condition, const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_EVALUATOR_H_
