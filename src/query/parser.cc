#include "query/parser.h"

#include <utility>

#include "core/types/type_parser.h"
#include "core/types/type_registry.h"
#include "query/lexer.h"

namespace tchimera {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOneStatement() {
    size_t start = Peek().position;
    TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStmt());
    stmt.position = start;
    Accept(TokenKind::kSemicolon);
    if (!AtEnd()) {
      return ErrorHere("unexpected input after statement: " +
                       Peek().Describe());
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      size_t start = Peek().position;
      TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStmt());
      stmt.position = start;
      out.push_back(std::move(stmt));
      while (Accept(TokenKind::kSemicolon)) {
      }
    }
    return out;
  }

  Result<ExprPtr> ParseOneExpression() {
    TCH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return ErrorHere("unexpected input after expression: " +
                       Peek().Describe());
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  // End offset of the most recently consumed token (the end of whatever
  // was just parsed); used to close SourceSpans.
  size_t PrevEnd() const { return pos_ > 0 ? tokens_[pos_ - 1].end : 0; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ErrorHere(const std::string& what) const {
    return Status::InvalidArgument(what + " (at position " +
                                   std::to_string(Peek().position) + ")");
  }

  Status Expect(TokenKind kind) {
    if (Accept(kind)) return Status::OK();
    return ErrorHere(std::string("expected ") + TokenKindName(kind) +
                     ", found " + Peek().Describe());
  }
  Status ExpectKeyword(std::string_view kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return ErrorHere("expected keyword '" + std::string(kw) + "', found " +
                     Peek().Describe());
  }

  // A class / attribute / variable name. Non-reserved identifiers only.
  Result<std::string> ParseName() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected a name, found " + Peek().Describe());
    }
    return Advance().text;
  }

  Result<Oid> ParseOid() {
    if (Peek().kind != TokenKind::kOidLit) {
      return ErrorHere("expected an oid (i<n>), found " + Peek().Describe());
    }
    return Oid{static_cast<uint64_t>(Advance().int_value)};
  }

  // instant := t<digits> | tnow | <digits>
  Result<TimePoint> ParseInstant() {
    if (Peek().kind == TokenKind::kTimeLit) return Advance().int_value;
    if (Peek().kind == TokenKind::kInteger) return Advance().int_value;
    if (AcceptKeyword("now")) return kNow;
    return ErrorHere("expected an instant, found " + Peek().Describe());
  }

  // An interval literal plus the spans of its two endpoint tokens (the
  // anchors for endpoint-swapping fix-its).
  struct ParsedInterval {
    Interval value{0, 0};
    SourceSpan start_span;
    SourceSpan end_span;
  };

  Result<ParsedInterval> ParseInterval() {
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    ParsedInterval out;
    size_t begin = Peek().position;
    TCH_ASSIGN_OR_RETURN(TimePoint s, ParseInstant());
    out.start_span = SourceSpan{begin, PrevEnd()};
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    begin = Peek().position;
    TCH_ASSIGN_OR_RETURN(TimePoint e, ParseInstant());
    out.end_span = SourceSpan{begin, PrevEnd()};
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    out.value = Interval(s, e);
    return out;
  }

  // The byte range that deletes declaration i from a comma-separated
  // section: the lone declaration takes the section keyword with it when
  // one is given; the first of several extends forward through the comma
  // (to the next declaration's start); later ones extend back over the
  // preceding comma.
  static std::vector<SourceSpan> SectionRemoveSpans(
      size_t keyword_begin, bool has_keyword,
      const std::vector<size_t>& begins, const std::vector<size_t>& ends) {
    std::vector<SourceSpan> spans(begins.size());
    for (size_t i = 0; i < begins.size(); ++i) {
      if (begins.size() == 1) {
        if (has_keyword) spans[i] = SourceSpan{keyword_begin, ends[0]};
        // No keyword (e.g. a lone FROM binder): leave the span invalid —
        // the list may not become empty.
      } else if (i == 0) {
        spans[i] = SourceSpan{begins[0], begins[1]};
      } else {
        spans[i] = SourceSpan{ends[i - 1], ends[i]};
      }
    }
    return spans;
  }

  // Types are parsed token-wise into the canonical textual syntax, then
  // handed to the type parser; this keeps one authoritative type grammar.
  Result<const Type*> ParseTypeRef() {
    std::string text;
    TCH_RETURN_IF_ERROR(CollectTypeText(&text));
    return ParseType(text);
  }

  Status CollectTypeText(std::string* out) {
    // type := name | name '(' ... ')' where the constructor names are
    // keywords-free identifiers like set-of / temporal / record-of.
    if (Peek().kind != TokenKind::kIdentifier &&
        !(Peek().kind == TokenKind::kKeyword)) {
      return ErrorHere("expected a type, found " + Peek().Describe());
    }
    out->append(Advance().text);
    if (!Accept(TokenKind::kLParen)) return Status::OK();
    out->push_back('(');
    if (!Accept(TokenKind::kRParen)) {
      while (true) {
        // record-of fields: name ':' type; others: type.
        if (Peek().kind == TokenKind::kIdentifier &&
            tokens_[pos_ + 1].kind == TokenKind::kColon) {
          out->append(Advance().text);
          Advance();  // ':'
          out->push_back(':');
        }
        TCH_RETURN_IF_ERROR(CollectTypeText(out));
        if (Accept(TokenKind::kComma)) {
          out->push_back(',');
          continue;
        }
        TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        break;
      }
    }
    out->push_back(')');
    return Status::OK();
  }

  // field := name ':' type
  Result<AttributeDef> ParseField() {
    TCH_ASSIGN_OR_RETURN(std::string name, ParseName());
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    TCH_ASSIGN_OR_RETURN(const Type* type, ParseTypeRef());
    return AttributeDef{std::move(name), type};
  }

  // msig := name '(' [type (, type)*] ')' ':' type
  Result<MethodDef> ParseMethodSig() {
    MethodDef m;
    TCH_ASSIGN_OR_RETURN(m.name, ParseName());
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Accept(TokenKind::kRParen)) {
      while (true) {
        TCH_ASSIGN_OR_RETURN(const Type* t, ParseTypeRef());
        m.inputs.push_back(t);
        if (Accept(TokenKind::kComma)) continue;
        TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        break;
      }
    }
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    TCH_ASSIGN_OR_RETURN(m.output, ParseTypeRef());
    return m;
  }

  Result<Statement> ParseStmt() {
    if (AcceptKeyword("explain")) {
      if (AtEnd() || Peek().kind == TokenKind::kSemicolon) {
        return ErrorHere("explain requires a statement to explain");
      }
      TCH_ASSIGN_OR_RETURN(Statement inner, ParseStmt());
      if (inner.kind == Statement::Kind::kExplain) {
        return ErrorHere("explain cannot be nested");
      }
      Statement stmt;
      stmt.kind = Statement::Kind::kExplain;
      stmt.explain_inner = std::make_unique<Statement>(std::move(inner));
      return stmt;
    }
    if (AcceptKeyword("define")) return ParseDefineClass();
    if (AcceptKeyword("drop")) return ParseDropClass();
    if (AcceptKeyword("create")) return ParseCreate();
    if (AcceptKeyword("update")) return ParseUpdate();
    if (AcceptKeyword("migrate")) return ParseMigrate();
    if (AcceptKeyword("delete")) return ParseDelete();
    if (AcceptKeyword("select")) return ParseSelect();
    if (AcceptKeyword("snapshot")) return ParseSnapshot();
    if (AcceptKeyword("history")) return ParseHistory();
    if (AcceptKeyword("tick")) return ParseTick();
    if (AcceptKeyword("advance")) return ParseAdvance();
    if (AcceptKeyword("check")) {
      Statement s;
      s.kind = Statement::Kind::kCheck;
      return s;
    }
    if (AcceptKeyword("when")) {
      Statement s;
      s.kind = Statement::Kind::kWhen;
      s.when.emplace();
      TCH_ASSIGN_OR_RETURN(s.when->condition, ParseExpr());
      if (AcceptKeyword("during")) {
        TCH_ASSIGN_OR_RETURN(ParsedInterval iv, ParseInterval());
        s.when->during = iv.value;
        s.when->during_start_span = iv.start_span;
        s.when->during_end_span = iv.end_span;
      }
      return s;
    }
    if (AcceptKeyword("show")) return ParseShow();
    return ErrorHere("expected a statement, found " + Peek().Describe());
  }

  Result<Statement> ParseDefineClass() {
    TCH_RETURN_IF_ERROR(ExpectKeyword("class"));
    Statement s;
    s.kind = Statement::Kind::kDefineClass;
    s.define_class.emplace();
    ClassSpec& spec = s.define_class->spec;
    TCH_ASSIGN_OR_RETURN(spec.name, ParseName());
    if (AcceptKeyword("under")) {
      while (true) {
        TCH_ASSIGN_OR_RETURN(std::string super, ParseName());
        spec.superclasses.push_back(std::move(super));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    size_t attrs_kw = Peek().position;
    if (AcceptKeyword("attributes")) {
      std::vector<size_t> begins;
      std::vector<size_t> ends;
      while (true) {
        begins.push_back(Peek().position);
        TCH_ASSIGN_OR_RETURN(AttributeDef f, ParseField());
        ends.push_back(PrevEnd());
        spec.attributes.push_back(std::move(f));
        if (!Accept(TokenKind::kComma)) break;
      }
      s.define_class->attribute_spans =
          SectionRemoveSpans(attrs_kw, /*has_keyword=*/true, begins, ends);
    }
    if (AcceptKeyword("methods")) {
      while (true) {
        TCH_ASSIGN_OR_RETURN(MethodDef m, ParseMethodSig());
        spec.methods.push_back(std::move(m));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    size_t cattrs_kw = Peek().position;
    if (AcceptKeyword("c-attributes")) {
      std::vector<size_t> begins;
      std::vector<size_t> ends;
      while (true) {
        begins.push_back(Peek().position);
        TCH_ASSIGN_OR_RETURN(AttributeDef f, ParseField());
        ends.push_back(PrevEnd());
        spec.c_attributes.push_back(std::move(f));
        if (!Accept(TokenKind::kComma)) break;
      }
      s.define_class->c_attribute_spans =
          SectionRemoveSpans(cattrs_kw, /*has_keyword=*/true, begins, ends);
    }
    TCH_RETURN_IF_ERROR(ExpectKeyword("end"));
    return s;
  }

  Result<Statement> ParseDropClass() {
    // "index" is an ordinary identifier (not a keyword), so peek before
    // committing to `drop class`.
    if (Peek().kind == TokenKind::kIdentifier && Peek().text == "index") {
      Advance();
      Statement s;
      s.kind = Statement::Kind::kDropIndex;
      s.drop_index.emplace();
      TCH_ASSIGN_OR_RETURN(s.drop_index->name, ParseName());
      return s;
    }
    TCH_RETURN_IF_ERROR(ExpectKeyword("class"));
    Statement s;
    s.kind = Statement::Kind::kDropClass;
    s.drop_class.emplace();
    TCH_ASSIGN_OR_RETURN(s.drop_class->name, ParseName());
    return s;
  }

  // create index <name> on <class> ( <attr> )   -- value index
  // create index <name> on <class> lifespan     -- lifespan timeline index
  Result<Statement> ParseCreateIndex() {
    Statement s;
    s.kind = Statement::Kind::kCreateIndex;
    s.create_index.emplace();
    TCH_ASSIGN_OR_RETURN(s.create_index->name, ParseName());
    if (!(Peek().kind == TokenKind::kIdentifier && Peek().text == "on")) {
      return ErrorHere("expected 'on' after the index name, found " +
                       Peek().Describe());
    }
    Advance();
    TCH_ASSIGN_OR_RETURN(s.create_index->class_name, ParseName());
    if (AcceptKeyword("lifespan")) {
      s.create_index->lifespan = true;
      return s;
    }
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    TCH_ASSIGN_OR_RETURN(s.create_index->attr, ParseName());
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return s;
  }

  Result<Statement> ParseCreate() {
    // `create index i on c ...` vs `create index` (an object of a class
    // named "index"): index DDL always continues with another name, and
    // object creation never puts an identifier after the class name.
    if (Peek().kind == TokenKind::kIdentifier && Peek().text == "index" &&
        tokens_[pos_ + 1].kind == TokenKind::kIdentifier) {
      Advance();
      return ParseCreateIndex();
    }
    Statement s;
    s.kind = Statement::Kind::kCreate;
    s.create.emplace();
    TCH_ASSIGN_OR_RETURN(s.create->class_name, ParseName());
    if (AcceptKeyword("at")) {
      TCH_ASSIGN_OR_RETURN(TimePoint t, ParseInstant());
      s.create->at = t;
    }
    if (Accept(TokenKind::kLParen)) {
      if (!Accept(TokenKind::kRParen)) {
        while (true) {
          TCH_ASSIGN_OR_RETURN(std::string name, ParseName());
          TCH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
          TCH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          s.create->inits.emplace_back(std::move(name), std::move(e));
          if (Accept(TokenKind::kComma)) continue;
          TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          break;
        }
      }
    }
    return s;
  }

  Result<Statement> ParseUpdate() {
    Statement s;
    s.kind = Statement::Kind::kUpdate;
    s.update.emplace();
    TCH_ASSIGN_OR_RETURN(s.update->oid, ParseOid());
    TCH_RETURN_IF_ERROR(ExpectKeyword("set"));
    TCH_ASSIGN_OR_RETURN(s.update->attr, ParseName());
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kEq));
    TCH_ASSIGN_OR_RETURN(s.update->value, ParseExpr());
    if (AcceptKeyword("during")) {
      TCH_ASSIGN_OR_RETURN(ParsedInterval iv, ParseInterval());
      s.update->during = iv.value;
      s.update->during_start_span = iv.start_span;
      s.update->during_end_span = iv.end_span;
    }
    return s;
  }

  Result<Statement> ParseMigrate() {
    Statement s;
    s.kind = Statement::Kind::kMigrate;
    s.migrate.emplace();
    TCH_ASSIGN_OR_RETURN(s.migrate->oid, ParseOid());
    TCH_RETURN_IF_ERROR(ExpectKeyword("to"));
    TCH_ASSIGN_OR_RETURN(s.migrate->to_class, ParseName());
    if (AcceptKeyword("set")) {
      while (true) {
        TCH_ASSIGN_OR_RETURN(std::string name, ParseName());
        TCH_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        TCH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        s.migrate->sets.emplace_back(std::move(name), std::move(e));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    return s;
  }

  Result<Statement> ParseDelete() {
    Statement s;
    s.kind = Statement::Kind::kDelete;
    s.del.emplace();
    TCH_ASSIGN_OR_RETURN(s.del->oid, ParseOid());
    return s;
  }

  Result<Statement> ParseSelect() {
    Statement s;
    s.kind = Statement::Kind::kSelect;
    s.select.emplace();
    while (true) {
      TCH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      s.select->projections.push_back(std::move(e));
      if (!Accept(TokenKind::kComma)) break;
    }
    TCH_RETURN_IF_ERROR(ExpectKeyword("from"));
    std::vector<size_t> begins;
    std::vector<size_t> ends;
    while (true) {
      SelectBinder binder;
      binder.position = Peek().position;
      begins.push_back(binder.position);
      TCH_ASSIGN_OR_RETURN(binder.var, ParseName());
      TCH_RETURN_IF_ERROR(ExpectKeyword("in"));
      TCH_ASSIGN_OR_RETURN(binder.class_name, ParseName());
      ends.push_back(PrevEnd());
      s.select->binders.push_back(std::move(binder));
      if (!Accept(TokenKind::kComma)) break;
    }
    // A SELECT must keep at least one binder, so a lone binder gets no
    // removal span (has_keyword=false leaves it invalid).
    std::vector<SourceSpan> removals =
        SectionRemoveSpans(0, /*has_keyword=*/false, begins, ends);
    for (size_t i = 0; i < removals.size(); ++i) {
      s.select->binders[i].remove_span = removals[i];
    }
    if (AcceptKeyword("at")) {
      TCH_ASSIGN_OR_RETURN(TimePoint t, ParseInstant());
      s.select->at = t;
    }
    size_t where_kw = Peek().position;
    if (AcceptKeyword("where")) {
      TCH_ASSIGN_OR_RETURN(s.select->where, ParseExpr());
      s.select->where_span = SourceSpan{where_kw, PrevEnd()};
    }
    return s;
  }

  Result<Statement> ParseSnapshot() {
    Statement s;
    s.kind = Statement::Kind::kSnapshot;
    s.snapshot.emplace();
    TCH_ASSIGN_OR_RETURN(s.snapshot->oid, ParseOid());
    if (AcceptKeyword("at")) {
      TCH_ASSIGN_OR_RETURN(TimePoint t, ParseInstant());
      s.snapshot->at = t;
    }
    return s;
  }

  Result<Statement> ParseHistory() {
    Statement s;
    s.kind = Statement::Kind::kHistory;
    s.history.emplace();
    TCH_ASSIGN_OR_RETURN(s.history->oid, ParseOid());
    TCH_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    TCH_ASSIGN_OR_RETURN(s.history->attr, ParseName());
    if (AcceptKeyword("during")) {
      TCH_ASSIGN_OR_RETURN(ParsedInterval iv, ParseInterval());
      s.history->during = iv.value;
      s.history->during_start_span = iv.start_span;
      s.history->during_end_span = iv.end_span;
    }
    return s;
  }

  Result<Statement> ParseTick() {
    Statement s;
    s.kind = Statement::Kind::kTick;
    s.tick.emplace();
    if (Peek().kind == TokenKind::kInteger) {
      s.tick->steps = Advance().int_value;
    }
    return s;
  }

  Result<Statement> ParseAdvance() {
    TCH_RETURN_IF_ERROR(ExpectKeyword("to"));
    Statement s;
    s.kind = Statement::Kind::kAdvance;
    s.advance.emplace();
    TCH_ASSIGN_OR_RETURN(s.advance->to, ParseInstant());
    return s;
  }

  Result<Statement> ParseShow() {
    Statement s;
    s.kind = Statement::Kind::kShow;
    s.show.emplace();
    if (AcceptKeyword("classes")) {
      s.show->what = ShowStmt::What::kClasses;
      return s;
    }
    if (AcceptKeyword("now")) {
      s.show->what = ShowStmt::What::kNow;
      return s;
    }
    if (AcceptKeyword("class")) {
      s.show->what = ShowStmt::What::kClass;
      TCH_ASSIGN_OR_RETURN(s.show->name, ParseName());
      return s;
    }
    if (AcceptKeyword("object")) {
      s.show->what = ShowStmt::What::kObject;
      TCH_ASSIGN_OR_RETURN(s.show->oid, ParseOid());
      return s;
    }
    return ErrorHere("expected CLASS, OBJECT, CLASSES or NOW after SHOW");
  }

  // --- expressions -------------------------------------------------------

  ExprPtr MakeExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->position = Peek().position;
    return e;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  // Closes a freshly built binary node's span: its operands' spans are
  // already set, so the whole expression runs from the left operand's
  // start to the last consumed token.
  void CloseBinarySpan(Expr* node) {
    node->span = SourceSpan{node->base->span.begin, PrevEnd()};
  }

  Result<ExprPtr> ParseOr() {
    TCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      TCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      ExprPtr node = MakeExpr(ExprKind::kBinary);
      node->op = BinaryOp::kOr;
      node->base = std::move(lhs);
      node->rhs = std::move(rhs);
      CloseBinarySpan(node.get());
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    TCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp());
    while (Peek().IsKeyword("and")) {
      Advance();
      TCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmp());
      ExprPtr node = MakeExpr(ExprKind::kBinary);
      node->op = BinaryOp::kAnd;
      node->base = std::move(lhs);
      node->rhs = std::move(rhs);
      CloseBinarySpan(node.get());
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseCmp() {
    TCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseSum());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNeq:
        op = BinaryOp::kNeq;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      case TokenKind::kKeyword:
        if (Peek().text == "in") {
          op = BinaryOp::kIn;
          break;
        }
        return lhs;
      default:
        return lhs;
    }
    Advance();
    TCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseSum());
    ExprPtr node = MakeExpr(ExprKind::kBinary);
    node->op = op;
    node->base = std::move(lhs);
    node->rhs = std::move(rhs);
    CloseBinarySpan(node.get());
    return node;
  }

  Result<ExprPtr> ParseSum() {
    TCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseProd());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      BinaryOp op = Peek().kind == TokenKind::kPlus ? BinaryOp::kAdd
                                                    : BinaryOp::kSub;
      Advance();
      TCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseProd());
      ExprPtr node = MakeExpr(ExprKind::kBinary);
      node->op = op;
      node->base = std::move(lhs);
      node->rhs = std::move(rhs);
      CloseBinarySpan(node.get());
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseProd() {
    TCH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      BinaryOp op = Peek().kind == TokenKind::kStar ? BinaryOp::kMul
                                                    : BinaryOp::kDiv;
      Advance();
      TCH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      ExprPtr node = MakeExpr(ExprKind::kBinary);
      node->op = op;
      node->base = std::move(lhs);
      node->rhs = std::move(rhs);
      CloseBinarySpan(node.get());
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    size_t begin = Peek().position;
    if (AcceptKeyword("not")) {
      ExprPtr node = MakeExpr(ExprKind::kNot);
      TCH_ASSIGN_OR_RETURN(node->base, ParseUnary());
      node->span = SourceSpan{begin, PrevEnd()};
      return node;
    }
    if (Accept(TokenKind::kMinus)) {
      ExprPtr node = MakeExpr(ExprKind::kNegate);
      TCH_ASSIGN_OR_RETURN(node->base, ParseUnary());
      node->span = SourceSpan{begin, PrevEnd()};
      return node;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    TCH_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (Accept(TokenKind::kDot)) {
      ExprPtr node = MakeExpr(ExprKind::kAttrAccess);
      TCH_ASSIGN_OR_RETURN(node->name, ParseName());
      node->base = std::move(e);
      size_t at_begin = Peek().position;
      if (Accept(TokenKind::kAt)) {
        TCH_ASSIGN_OR_RETURN(TimePoint t, ParseInstant());
        node->at = t;
        node->at_span = SourceSpan{at_begin, PrevEnd()};
      }
      node->span = SourceSpan{node->base->span.begin, PrevEnd()};
      e = std::move(node);
    }
    return e;
  }

  // Wraps ParsePrimaryInner to stamp the span. A parenthesized expression
  // deliberately gets the paren-inclusive span (overwriting the inner
  // one), so deletions anchored to operand spans keep parens balanced.
  Result<ExprPtr> ParsePrimary() {
    size_t begin = Peek().position;
    TCH_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimaryInner());
    e->span = SourceSpan{begin, PrevEnd()};
    return e;
  }

  Result<ExprPtr> ParsePrimaryInner() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Integer(Advance().int_value);
        return e;
      }
      case TokenKind::kReal: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Real(Advance().real_value);
        return e;
      }
      case TokenKind::kString: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::String(Advance().text);
        return e;
      }
      case TokenKind::kCharLit: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Char(Advance().text[0]);
        return e;
      }
      case TokenKind::kOidLit: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::OfOid(Oid{static_cast<uint64_t>(
            Advance().int_value)});
        return e;
      }
      case TokenKind::kTimeLit: {
        ExprPtr e = MakeExpr(ExprKind::kLiteral);
        e->literal = Value::Time(Advance().int_value);
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        TCH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return e;
      }
      case TokenKind::kLBrace: {
        Advance();
        ExprPtr e = MakeExpr(ExprKind::kSetCtor);
        if (!Accept(TokenKind::kRBrace)) {
          while (true) {
            TCH_ASSIGN_OR_RETURN(ExprPtr el, ParseExpr());
            e->args.push_back(std::move(el));
            if (Accept(TokenKind::kComma)) continue;
            TCH_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
            break;
          }
        }
        return e;
      }
      case TokenKind::kLBracket: {
        Advance();
        ExprPtr e = MakeExpr(ExprKind::kListCtor);
        if (!Accept(TokenKind::kRBracket)) {
          while (true) {
            TCH_ASSIGN_OR_RETURN(ExprPtr el, ParseExpr());
            e->args.push_back(std::move(el));
            if (Accept(TokenKind::kComma)) continue;
            TCH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
            break;
          }
        }
        return e;
      }
      case TokenKind::kKeyword: {
        if (tok.text == "null") {
          Advance();
          ExprPtr e = MakeExpr(ExprKind::kLiteral);
          e->literal = Value::Null();
          return e;
        }
        if (tok.text == "true" || tok.text == "false") {
          ExprPtr e = MakeExpr(ExprKind::kLiteral);
          e->literal = Value::Bool(Advance().text == "true");
          return e;
        }
        if (tok.text == "now") {
          Advance();
          ExprPtr e = MakeExpr(ExprKind::kLiteral);
          e->literal = Value::Time(kNow);
          return e;
        }
        if (tok.text == "rec") {
          Advance();
          TCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
          ExprPtr e = MakeExpr(ExprKind::kRecCtor);
          if (!Accept(TokenKind::kRParen)) {
            while (true) {
              TCH_ASSIGN_OR_RETURN(std::string name, ParseName());
              TCH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
              TCH_ASSIGN_OR_RETURN(ExprPtr fv, ParseExpr());
              e->rec_fields.emplace_back(std::move(name), std::move(fv));
              if (Accept(TokenKind::kComma)) continue;
              TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
              break;
            }
          }
          return e;
        }
        if (tok.text == "size" || tok.text == "defined" ||
            tok.text == "snapshot" || tok.text == "videntical" ||
            tok.text == "vequal" || tok.text == "vinstant" ||
            tok.text == "vweak" || tok.text == "vdeep" ||
            tok.text == "lifespan") {
          ExprPtr e = MakeExpr(ExprKind::kCall);
          e->name = Advance().text;
          TCH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
          if (!Accept(TokenKind::kRParen)) {
            while (true) {
              TCH_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              e->args.push_back(std::move(a));
              if (Accept(TokenKind::kComma)) continue;
              TCH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
              break;
            }
          }
          return e;
        }
        return ErrorHere("unexpected " + tok.Describe() + " in expression");
      }
      case TokenKind::kIdentifier: {
        ExprPtr e = MakeExpr(ExprKind::kVar);
        e->name = Advance().text;
        return e;
      }
      default:
        return ErrorHere("unexpected " + tok.Describe() + " in expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  TCH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return Parser(std::move(tokens)).ParseOneStatement();
}

Result<std::vector<Statement>> ParseScript(std::string_view input) {
  TCH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return Parser(std::move(tokens)).ParseAll();
}

Result<ExprPtr> ParseExpression(std::string_view input) {
  TCH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return Parser(std::move(tokens)).ParseOneExpression();
}

}  // namespace tchimera
