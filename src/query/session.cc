#include "query/session.h"

#include <utility>

#include "query/interpreter.h"
#include "query/parser.h"
#include "storage/journal.h"

namespace tchimera {
namespace {

// The read-only TQL verbs. The parser dispatches on the first keyword,
// so first-token classification agrees exactly with Statement::Kind; and
// these kinds touch only const Database members, which is what makes the
// lock-free-for-writers snapshot read path sound.
bool IsReadStatement(std::string_view statement) {
  std::string token = FirstTokenLower(statement);
  for (std::string_view kw : {"select", "snapshot", "history", "when",
                              "show"}) {
    if (token == kw) return true;
  }
  return false;
}

bool IsReadKind(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kSnapshot:
    case Statement::Kind::kHistory:
    case Statement::Kind::kWhen:
    case Statement::Kind::kShow:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool IsDurableStatement(std::string_view statement) {
  if (IsMutatingStatement(statement)) return true;
  std::string token = FirstTokenLower(statement);
  return token == "trigger" || token == "constraint";
}

Engine::Engine(std::unique_ptr<Database> db, size_t max_cascade_depth)
    : vdb_(std::move(db)),
      active_(&vdb_.writer_db(), max_cascade_depth) {}

Session Engine::OpenSession() { return Session(this); }

Status Engine::WithExclusive(
    const std::function<Status(Database&, ActiveDatabase&)>& fn) {
  WriteGuard guard = vdb_.BeginWrite();
  Status status = fn(guard.db(), active_);
  // Republish on success: `fn` may have mutated the tip (definition
  // replay, surgery), and snapshots only ever see published versions.
  if (status.ok()) guard.Commit();
  return status;
}

Result<std::string> Engine::ExecuteWrite(std::string_view statement,
                                         DiagnosticEngine* lint) {
  WriteGuard guard = vdb_.BeginWrite();
  active_.set_lint(lint);
  Result<std::string> result = active_.Execute(statement);
  active_.set_lint(nullptr);
  if (!result.ok()) return result;  // nothing mutated, nothing to publish
  // Enqueue before releasing the lock: writers are serialized, so the
  // sink receives statements in exactly commit order — replaying the
  // journal reproduces the database (oids and all). The enqueue is a
  // buffer append; the expensive part (fdatasync) happens in Await,
  // outside the lock, where commits from concurrent sessions batch.
  CommitSink::Ticket ticket;
  if (sink_ != nullptr && IsDurableStatement(statement)) {
    ticket = sink_->Enqueue(statement);
  }
  // Commit publishes the new version AND releases the writer lock (the
  // two are fused — see WriteGuard). Await happens after, outside the
  // lock. On any durability failure the statement *is* applied in
  // memory but was never acknowledged as durable — the caller must
  // treat the error as "not committed" (the sink is closed or poisoned
  // and every later write fails too, so no acknowledged statement can
  // ever depend on a lost one).
  guard.Commit();
  if (ticket.seq != 0) {
    TCH_RETURN_IF_ERROR(sink_->Await(ticket));
  } else if (!ticket.status.ok()) {
    return ticket.status;  // enqueue failed fast: never entered a batch
  }
  return result;
}

Result<std::string> Session::Execute(std::string_view statement) {
  if (!IsReadStatement(statement)) {
    return engine_->ExecuteWrite(statement,
                                 lint_enabled_ ? diags_.get() : nullptr);
  }
  // Read path: pin a snapshot and evaluate on this thread, concurrently
  // with other readers. The const_cast is sound: the interpreter's read
  // kinds (guarded by IsReadKind below) call only const Database members,
  // and Database has no mutable caches.
  ReadSnapshot snap = engine_->OpenSnapshot();
  TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  if (!IsReadKind(stmt.kind)) {
    // Unreachable by construction (the parser keys on the first token);
    // defend anyway rather than mutate a published immutable version.
    snap = ReadSnapshot();
    return engine_->ExecuteWrite(statement,
                                 lint_enabled_ ? diags_.get() : nullptr);
  }
  Interpreter interp(const_cast<Database*>(&snap.db()));
  if (lint_enabled_) interp.set_lint(diags_.get());
  return interp.ExecuteStatement(&stmt);
}

}  // namespace tchimera
