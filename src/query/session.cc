#include "query/session.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "analysis/query_analyzer.h"
#include "query/interpreter.h"
#include "query/parser.h"
#include "query/vm.h"
#include "storage/journal.h"

namespace tchimera {
namespace {

// The read-only TQL verbs. The parser dispatches on the first keyword,
// so first-token classification agrees exactly with Statement::Kind; and
// these kinds touch only const Database members, which is what makes the
// lock-free-for-writers snapshot read path sound. `explain` only lowers
// its inner statement — it never executes it, so it is a read too.
bool IsReadStatement(std::string_view statement) {
  std::string token = FirstTokenLower(statement);
  for (std::string_view kw : {"select", "snapshot", "history", "when",
                              "show", "explain"}) {
    if (token == kw) return true;
  }
  return false;
}

bool IsReadKind(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kSnapshot:
    case Statement::Kind::kHistory:
    case Statement::Kind::kWhen:
    case Statement::Kind::kShow:
    case Statement::Kind::kExplain:
      return true;
    default:
      return false;
  }
}

// The verbs that must run on the exclusive path: schema changes conflict
// with every concurrent commit anyway (running them optimistically would
// only burn a doomed copy), and trigger/constraint definitions mutate
// engine-level registries, not the database copy a transaction owns.
// `create index` joins them: the initial build scans every object shard,
// so its footprint is schema-wide and an optimistic attempt is doomed
// the moment any concurrent writer commits. (`drop index` is covered by
// the `drop` first token.)
bool RequiresExclusiveWrite(std::string_view statement) {
  std::string token = FirstTokenLower(statement);
  for (std::string_view kw : {"define", "drop", "trigger", "constraint"}) {
    if (token == kw) return true;
  }
  if (token == "create") {
    std::string_view rest = statement;
    size_t i = rest.find_first_not_of(" \t\r\n");
    if (i != std::string_view::npos) rest.remove_prefix(i);
    // Skip the `create` token, then whitespace, then compare the verb.
    i = rest.find_first_of(" \t\r\n");
    if (i == std::string_view::npos) return false;
    rest.remove_prefix(i);
    i = rest.find_first_not_of(" \t\r\n");
    if (i == std::string_view::npos) return false;
    rest.remove_prefix(i);
    std::string second;
    for (char c : rest.substr(0, rest.find_first_of(" \t\r\n("))) {
      second.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return second == "index";
  }
  return false;
}

}  // namespace

bool IsDurableStatement(std::string_view statement) {
  if (IsMutatingStatement(statement)) return true;
  std::string token = FirstTokenLower(statement);
  return token == "trigger" || token == "constraint";
}

// --- plan cache --------------------------------------------------------------

std::string NormalizePlanKey(std::string_view statement) {
  std::string out;
  out.reserve(statement.size());
  bool in_space = true;  // swallow leading whitespace
  // Set when the scan ends inside a quoted literal that never closed
  // (including one whose closing quote was escaped away by a trailing
  // backslash). Every byte after the opening quote is then literal
  // content, and the final trailing-space trim must not touch it: with
  // the trim, `select 'ab` and `select 'ab ` — lexically different
  // texts — would collapse onto one cache key.
  bool unterminated_quote = false;
  for (size_t i = 0; i < statement.size(); ++i) {
    char c = statement[i];
    if (c == '\'') {
      // Quoted literal: copied byte-for-byte (including escapes — the
      // lexer's escape rules must not interact with normalization).
      out += c;
      ++i;
      bool terminated = false;
      while (i < statement.size()) {
        out += statement[i];
        if (statement[i] == '\\' && i + 1 < statement.size()) {
          out += statement[++i];
        } else if (statement[i] == '\'') {
          terminated = true;
          break;
        }
        ++i;
      }
      unterminated_quote = !terminated;
      in_space = false;
      continue;
    }
    if (c == '-' && i + 1 < statement.size() && statement[i + 1] == '-') {
      // `--` line comment: skip to end of line.
      while (i < statement.size() && statement[i] != '\n') ++i;
      --i;  // the newline (or end) is handled as whitespace next round
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out += ' ';
      in_space = true;
      continue;
    }
    out += c;
    in_space = false;
  }
  // Trim only separator whitespace. Bytes inside an unterminated literal
  // are content: trimming them makes lexically different statements
  // (differing exactly in that trailing literal whitespace, or in a
  // trailing backslash that escaped a final space) share a key.
  if (!unterminated_quote) {
    while (!out.empty() && out.back() == ' ') out.pop_back();
  }
  return out;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& key, uint64_t schema_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.schema_version != schema_version) {
    // Compiled under a different schema: a DDL committed since. Evict.
    map_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, uint64_t schema_version,
                       std::shared_ptr<const CachedPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= kMaxEntries && map_.count(key) == 0) {
    // Evict entries compiled under other schema versions first (they can
    // never hit again once every reader sees the current schema).
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.schema_version != schema_version) {
        it = map_.erase(it);
        ++stats_.invalidations;
      } else {
        ++it;
      }
    }
    // Still full: drop everything rather than grow without bound. A
    // workload with >kMaxEntries distinct hot statements re-compiles;
    // correctness is unaffected.
    if (map_.size() >= kMaxEntries) map_.clear();
  }
  map_[key] = Entry{schema_version, std::move(plan)};
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

Engine::Engine(std::unique_ptr<Database> db, size_t max_cascade_depth)
    : vdb_(std::move(db)),
      active_(&vdb_.writer_db(), max_cascade_depth),
      max_cascade_depth_(max_cascade_depth) {}

Session Engine::OpenSession() { return Session(this); }

std::shared_ptr<ReplicaLease> Engine::RegisterReplica(std::string name) {
  auto lease = std::make_shared<ReplicaLease>(std::move(name));
  std::lock_guard<std::mutex> lock(replicas_mu_);
  replicas_.push_back(lease);
  return lease;
}

uint64_t Engine::min_replicated_version() const {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  uint64_t min_version = 0;
  bool any = false;
  size_t live = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    std::shared_ptr<ReplicaLease> lease = replicas_[i].lock();
    if (!lease) continue;  // decommissioned replica: drop from the set
    if (live != i) replicas_[live] = std::move(replicas_[i]);  // no self-move
    ++live;
    uint64_t v = lease->replicated_version();
    min_version = any ? std::min(min_version, v) : v;
    any = true;
  }
  replicas_.resize(live);
  // No replicas => nothing can lag: every committed version counts as
  // replicated, and read-your-writes routing degenerates to "always OK".
  return any ? min_version : vdb_.version();
}

Status Engine::WithExclusive(
    const std::function<Status(Database&, ActiveDatabase&)>& fn) {
  WriteGuard guard = vdb_.BeginWrite();
  Status status;
  {
    // `fn` may define triggers/constraints (recovery replay), which
    // optimistic writers copy under defs_mu_. Lock order: writer lock
    // (taken by BeginWrite above) before defs_mu_.
    std::lock_guard<std::mutex> defs_lock(defs_mu_);
    status = fn(guard.db(), active_);
  }
  // Republish on success: `fn` may have mutated the tip (definition
  // replay, surgery), and snapshots only ever see published versions.
  if (status.ok()) guard.Commit();
  return status;
}

Result<std::string> Engine::ExecuteWrite(std::string_view statement,
                                         DiagnosticEngine* lint,
                                         const WriteRetryPolicy& policy) {
  if (RequiresExclusiveWrite(statement)) {
    return ExecuteWriteExclusive(statement, lint);
  }
  const int attempts = std::max(policy.max_optimistic_attempts, 1);
  Result<std::string> result = Status::Internal("write never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // Lint only on the first attempt — retries re-execute the same text
    // and would only duplicate every finding.
    bool needs_exclusive = false;
    result = TryOptimisticWrite(statement, attempt == 0 ? lint : nullptr,
                                &needs_exclusive);
    if (needs_exclusive) {
      // Not contention: the statement can only publish through the
      // exclusive facade (a cascaded definition change). Retrying
      // optimistically — ours or the client's — would loop forever, so
      // the policy's fallback choice does not apply.
      return ExecuteWriteExclusive(statement, nullptr);
    }
    if (result.ok() || result.status().code() != StatusCode::kConflict) {
      return result;
    }
    // Lost the validation race — retry against a fresh base. Statement
    // re-execution is correct here: nothing was published or journaled.
  }
  if (!policy.exclusive_fallback) {
    // The budget is spent and the caller owns what happens next: a
    // server surfaces this kConflict as a retryable wire error instead
    // of convoying every hot-slot writer onto the exclusive lock.
    return result;
  }
  // Contention this persistent means the writers genuinely serialize;
  // stop burning copies and take the lock. This also guarantees progress
  // for worst-case workloads (every writer on the same slot).
  return ExecuteWriteExclusive(statement, nullptr);
}

Result<std::string> Engine::TryOptimisticWrite(std::string_view statement,
                                               DiagnosticEngine* lint,
                                               bool* needs_exclusive) {
  OptimisticTransaction txn = vdb_.BeginTransaction();
  // A per-transaction facade over the private copy: triggers fire and
  // constraints check against the transaction's own state, and their
  // mutations land in its write footprint like any others.
  ActiveDatabase facade(&txn.db(), max_cascade_depth_);
  size_t copied_triggers;
  size_t copied_constraints;
  {
    std::lock_guard<std::mutex> defs_lock(defs_mu_);
    facade.CopyDefinitionsFrom(active_);
    copied_triggers = facade.TriggerNames().size();
    copied_constraints = facade.constraints().size();
  }
  facade.set_lint(lint);
  Result<std::string> result = facade.Execute(statement);
  facade.set_lint(nullptr);
  if (!result.ok()) return result;  // rejected before mutating anything
  if (facade.TriggerNames().size() != copied_triggers ||
      facade.constraints().size() != copied_constraints) {
    // A cascaded trigger action defined or dropped a trigger/constraint.
    // Those live in engine-level registries, which a per-transaction
    // facade cannot publish — the exclusive path (whose facade IS the
    // engine's) handles this. Flagged distinctly from a validation loss:
    // no retry budget applies (retrying optimistically can never work).
    *needs_exclusive = true;
    return Status::Conflict(
        "statement changed trigger/constraint definitions; retrying on "
        "the exclusive path");
  }
  CommitSink::Ticket ticket;
  const bool durable = sink_ != nullptr && IsDurableStatement(statement);
  Result<uint64_t> committed = vdb_.CommitTransaction(
      &txn, [this, statement, durable, &ticket]() -> Status {
        // Runs under the writer mutex, after validation succeeded:
        // enqueue order is commit order. A fail-fast enqueue (closed or
        // poisoned sink) aborts the commit before anything publishes —
        // the optimistic path never applies a statement it cannot
        // journal.
        if (!durable) return Status::OK();
        ticket = sink_->Enqueue(statement);
        if (ticket.seq == 0 && !ticket.status.ok()) return ticket.status;
        return Status::OK();
      });
  if (!committed.ok()) return committed.status();
  if (ticket.seq != 0) {
    TCH_RETURN_IF_ERROR(sink_->Await(ticket));
  }
  return result;
}

Result<std::string> Engine::ExecuteWriteExclusive(std::string_view statement,
                                                  DiagnosticEngine* lint) {
  WriteGuard guard = vdb_.BeginWrite();
  // Definition verbs mutate active_'s registries; hold defs_mu_ so
  // concurrent optimistic writers copy a consistent definition set.
  std::unique_lock<std::mutex> defs_lock(defs_mu_);
  active_.set_lint(lint);
  Result<std::string> result = active_.Execute(statement);
  active_.set_lint(nullptr);
  defs_lock.unlock();
  if (!result.ok()) return result;  // nothing mutated, nothing to publish
  // Enqueue before releasing the lock: writers are serialized, so the
  // sink receives statements in exactly commit order — replaying the
  // journal reproduces the database (oids and all). The enqueue is a
  // buffer append; the expensive part (fdatasync) happens in Await,
  // outside the lock, where commits from concurrent sessions batch.
  CommitSink::Ticket ticket;
  if (sink_ != nullptr && IsDurableStatement(statement)) {
    ticket = sink_->Enqueue(statement);
  }
  // Commit publishes the new version AND releases the writer lock (the
  // two are fused — see WriteGuard). Await happens after, outside the
  // lock. On any durability failure the statement *is* applied in
  // memory but was never acknowledged as durable — the caller must
  // treat the error as "not committed" (the sink is closed or poisoned
  // and every later write fails too, so no acknowledged statement can
  // ever depend on a lost one).
  guard.Commit();
  if (ticket.seq != 0) {
    TCH_RETURN_IF_ERROR(sink_->Await(ticket));
  } else if (!ticket.status.ok()) {
    return ticket.status;  // enqueue failed fast: never entered a batch
  }
  return result;
}

Result<std::string> Session::Execute(std::string_view statement) {
  if (!IsReadStatement(statement)) {
    Result<std::string> result =
        engine_->ExecuteWrite(statement, lint_enabled_ ? diags_.get() : nullptr,
                              write_retry_policy_);
    if (result.ok()) {
      // Remember the engine tip for read-your-writes routing. The tip is
      // >= our write's version (others may have committed since), which
      // only errs toward routing the next read to the primary — safe.
      last_write_version_ = engine_->version();
    }
    return result;
  }
  // Read path: pin a snapshot and evaluate on this thread, concurrently
  // with other readers. The const_cast is sound: the interpreter's read
  // kinds (guarded by IsReadKind below) call only const Database members,
  // and Database has no mutable caches.
  ReadSnapshot snap = engine_->OpenSnapshot();
  TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  if (!IsReadKind(stmt.kind)) {
    // Unreachable by construction (the parser keys on the first token);
    // defend anyway rather than mutate a published immutable version.
    snap = ReadSnapshot();
    Result<std::string> result =
        engine_->ExecuteWrite(statement, lint_enabled_ ? diags_.get() : nullptr,
                              write_retry_policy_);
    if (result.ok()) last_write_version_ = engine_->version();
    return result;
  }
  if (compile_enabled_ && (stmt.kind == Statement::Kind::kSelect ||
                           stmt.kind == Statement::Kind::kWhen)) {
    TCH_ASSIGN_OR_RETURN(
        std::optional<std::string> compiled,
        TryCompiledRead(&stmt, snap.db(), NormalizePlanKey(statement)));
    if (compiled.has_value()) return *std::move(compiled);
    // Negative cache entry: fall through to the tree-walker below.
  }
  Interpreter interp(const_cast<Database*>(&snap.db()));
  if (lint_enabled_) interp.set_lint(diags_.get());
  return interp.ExecuteStatement(&stmt);
}

Result<std::optional<std::string>> Session::TryCompiledRead(
    Statement* stmt, const Database& db, const std::string& key) {
  PlanCache& cache = engine_->plan_cache();
  // The snapshot's own schema version: consistent with the class table
  // the plan compiles against, so a DDL committing concurrently can
  // never cache a plan under the wrong version.
  const uint64_t schema_version = db.schema_version();
  std::shared_ptr<const CachedPlan> cached =
      cache.Lookup(key, schema_version);
  if (cached == nullptr) {
    // Miss: lower now (type errors surface unchanged — the tree-walker
    // would report the identical error) and publish the outcome,
    // negative outcomes included.
    TCH_ASSIGN_OR_RETURN(LowerOutcome outcome, LowerStatement(stmt, db));
    auto fresh = std::make_shared<CachedPlan>();
    if (outcome.compiled()) {
      fresh->plan = std::move(outcome.plan);
    } else {
      fresh->fallback_reason = std::move(outcome.fallback_reason);
    }
    cache.Insert(key, schema_version, fresh);
    cached = std::move(fresh);
  }
  if (!cached->plan.has_value()) return std::optional<std::string>();
  // Lint runs on the unlowered AST, exactly like the interpreter path
  // (the analyzers never see bytecode).
  if (lint_enabled_) {
    if (stmt->kind == Statement::Kind::kSelect) {
      AnalyzeSelect(&*stmt->select, db, diags_.get());
    } else {
      AnalyzeWhen(&*stmt->when, db, diags_.get());
    }
  }
  const LoweredPlan& plan = *cached->plan;
  if (plan.kind == LoweredPlan::Kind::kSelect) {
    TCH_ASSIGN_OR_RETURN(std::vector<SelectRow> rows,
                         RunSelect(plan.program, db));
    return std::optional<std::string>(FormatSelectRows(rows));
  }
  TCH_ASSIGN_OR_RETURN(IntervalSet held, RunWhen(plan.program, db));
  return std::optional<std::string>(held.ToString());
}

}  // namespace tchimera
