// The TQL interpreter: parses, type-checks and executes statements against
// a Database, returning a printable result. Drives the REPL example, the
// script-based tests and the query benchmarks.
#ifndef TCHIMERA_QUERY_INTERPRETER_H_
#define TCHIMERA_QUERY_INTERPRETER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

class Interpreter {
 public:
  // Does not take ownership; `db` must outlive the interpreter.
  explicit Interpreter(Database* db) : db_(db) {}

  // Parses and executes one statement; returns its printable outcome
  // (e.g. "i7" for CREATE, a table for SELECT, "ok" for updates).
  Result<std::string> Execute(std::string_view statement);

  // Executes a whole script (';'-separated); returns the concatenated
  // outputs, one line per statement. Stops at the first error.
  Result<std::string> ExecuteScript(std::string_view script);

  // Executes an already-parsed statement.
  Result<std::string> ExecuteStatement(Statement* stmt);

 private:
  Database* db_;
};

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_INTERPRETER_H_
