// The TQL interpreter: parses, type-checks and executes statements against
// a Database, returning a printable result. Drives the REPL example, the
// script-based tests and the query benchmarks.
#ifndef TCHIMERA_QUERY_INTERPRETER_H_
#define TCHIMERA_QUERY_INTERPRETER_H_

#include <string>
#include <string_view>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "core/db/database.h"
#include "query/ast.h"
#include "query/evaluator.h"

namespace tchimera {

// Renders SELECT rows the way the REPL prints them: one row per line,
// columns " | "-joined, a bare oid when there are no projections,
// "(no results)" for an empty set. Shared by the interpreter and the
// compiled read path (query/session.cc) so both render identically.
std::string FormatSelectRows(const std::vector<SelectRow>& rows);

class Interpreter {
 public:
  // Does not take ownership; `db` must outlive the interpreter.
  explicit Interpreter(Database* db) : db_(db) {}

  // Opt-in static analysis: when a sink is set, DEFINE CLASS, SELECT and
  // WHEN statements are linted before execution and the findings are
  // appended to `diags` (see src/analysis/). Lint never blocks execution;
  // callers decide what to do with the findings. Pass nullptr to disable.
  void set_lint(DiagnosticEngine* diags) { lint_ = diags; }
  DiagnosticEngine* lint() const { return lint_; }

  // Parses and executes one statement; returns its printable outcome
  // (e.g. "i7" for CREATE, a table for SELECT, "ok" for updates).
  Result<std::string> Execute(std::string_view statement);

  // Executes a whole script (';'-separated); returns the concatenated
  // outputs, one line per statement. Stops at the first error.
  Result<std::string> ExecuteScript(std::string_view script);

  // Executes an already-parsed statement.
  Result<std::string> ExecuteStatement(Statement* stmt);

 private:
  Database* db_;
  DiagnosticEngine* lint_ = nullptr;
};

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_INTERPRETER_H_
