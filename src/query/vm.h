// The batch VM: executes a lowered ExecProgram (query/lower.h)
// column-at-a-time over an extent or over WHEN boundaries.
//
// Execution model. A batch is up to kBatchSize rows; every virtual
// register is a column (one Value per row). The VM runs each
// instruction once per batch over the rows named by the current
// *selection vector* (an ascending list of row indices) — one opcode
// dispatch per instruction per batch instead of one tree-node visit per
// row, which is where the compiled speedup comes from. Mask
// instructions push a restricted selection (the rows whose lhs was
// truthy, etc.); the instructions inside the mask window run only over
// those rows, so data-dependent errors (integer division by zero,
// dangling references, snapshot's lazily evaluated instant argument)
// fire on exactly the rows the tree-walking evaluator would evaluate —
// per-value semantics are shared outright (the scalar kernels in
// query/evaluator.h), so the two paths cannot drift.
//
// The only intentional observable difference: when several rows of one
// statement would each produce an error, the tree-walker reports the
// first in row order interleaved with projections, while the VM reports
// the first in (instruction, row) order. WHICH rows error is identical;
// only the tie-break among multiple erroring rows can differ.
//
// RunSelect evaluates WHERE for the whole batch, compacts the selection
// to the surviving rows, and only then evaluates projections (the
// tree-walker projects per passing row — same set of evaluations).
// RunWhen evaluates the condition once per boundary (the boundaries are
// the batch rows, ascending), and walks temporal attribute histories
// *linearly* alongside them — a merge-walk, not a binary search per
// boundary.
#ifndef TCHIMERA_QUERY_VM_H_
#define TCHIMERA_QUERY_VM_H_

#include "common/result.h"
#include "core/db/database.h"
#include "core/temporal/interval_set.h"
#include "query/evaluator.h"
#include "query/lower.h"

namespace tchimera {

// Batch size bounds the per-batch column working set: every live
// register costs kVmBatchSize x sizeof(Value) bytes, and the hot loops
// stream over several columns at once. 256 keeps a recycled program's
// handful of registers (~40 bytes/Value) within L1/L2 reach; measured on
// the WHEN history sweep, 256 more than halved per-row cost vs. 1024.
inline constexpr size_t kVmBatchSize = 256;

// Runs a compiled SELECT program: scans pi(class, at) in batches,
// filters with the WHERE fragment, evaluates projections over the
// survivors. Row order matches the tree-walker (extent order).
Result<std::vector<SelectRow>> RunSelect(const ExecProgram& prog,
                                         const Database& db);

// Runs a compiled WHEN program: collects the (sorted, deduplicated)
// boundaries for the program's requirements, evaluates the condition
// per boundary in batches, and returns the coalesced interval set —
// intersected with the program's `during` window when present.
Result<IntervalSet> RunWhen(const ExecProgram& prog, const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_VM_H_
