#include "query/type_checker.h"

#include "core/types/type_registry.h"
#include "core/values/typing.h"

namespace tchimera {
namespace {

bool IsNumeric(const Type* t) {
  return t->kind() == TypeKind::kInteger || t->kind() == TypeKind::kReal;
}

bool Comparable(const Type* a, const Type* b, const IsaProvider& isa) {
  return IsSubtype(a, b, isa) || IsSubtype(b, a, isa);
}

Status TypeErrorAt(const Expr& e, const std::string& what) {
  return Status::TypeError(what + " (in '" + e.ToString() + "')");
}

class Checker {
 public:
  Checker(const Database& db, const TypeEnv& env) : db_(db), env_(env) {}

  Result<const Type*> Check(Expr* e) {
    TCH_ASSIGN_OR_RETURN(const Type* t, CheckNode(e));
    e->inferred = t;
    return t;
  }

 private:
  Result<const Type*> CheckNode(Expr* e) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        // Literals are closed values; the value typing rules apply
        // directly (oid literals are typed by their most specific class).
        return InferType(e->literal, db_.now(), db_.typing_context());
      case ExprKind::kVar: {
        auto it = env_.find(e->name);
        if (it == env_.end()) {
          return TypeErrorAt(*e, "unbound variable '" + e->name + "'");
        }
        return types::Object(it->second);
      }
      case ExprKind::kAttrAccess:
        return CheckAttrAccess(e);
      case ExprKind::kNot: {
        TCH_ASSIGN_OR_RETURN(const Type* t, Check(e->base.get()));
        if (t->kind() != TypeKind::kBool) {
          return TypeErrorAt(*e, "'not' requires bool, got " + t->ToString());
        }
        return types::Bool();
      }
      case ExprKind::kNegate: {
        TCH_ASSIGN_OR_RETURN(const Type* t, Check(e->base.get()));
        if (!IsNumeric(t)) {
          return TypeErrorAt(*e,
                             "unary '-' requires a number, got " +
                                 t->ToString());
        }
        return t;
      }
      case ExprKind::kBinary:
        return CheckBinary(e);
      case ExprKind::kCall:
        return CheckCall(e);
      case ExprKind::kSetCtor:
      case ExprKind::kListCtor: {
        const Type* lub = types::Any();
        for (const ExprPtr& a : e->args) {
          TCH_ASSIGN_OR_RETURN(const Type* t, Check(a.get()));
          TCH_ASSIGN_OR_RETURN(lub, LeastUpperBound(lub, t, db_.isa()));
        }
        return e->kind == ExprKind::kSetCtor ? types::SetOf(lub)
                                             : types::ListOf(lub);
      }
      case ExprKind::kRecCtor: {
        std::vector<RecordField> fields;
        for (auto& [name, fe] : e->rec_fields) {
          TCH_ASSIGN_OR_RETURN(const Type* t, Check(fe.get()));
          fields.push_back({name, t});
        }
        return types::RecordOf(std::move(fields));
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<const Type*> CheckAttrAccess(Expr* e) {
    TCH_ASSIGN_OR_RETURN(const Type* base_t, Check(e->base.get()));
    if (base_t->kind() != TypeKind::kObject) {
      return TypeErrorAt(*e, "attribute access on non-object type " +
                                 base_t->ToString());
    }
    TCH_ASSIGN_OR_RETURN(const ClassDef* cls,
                         db_.FindClass(base_t->class_name()));
    const AttributeDef* attr = cls->FindAttribute(e->name);
    if (attr == nullptr) {
      return TypeErrorAt(*e, "class " + cls->name() + " has no attribute '" +
                                 e->name + "'");
    }
    if (attr->is_temporal()) {
      // The access projects the temporal function: the coercion of
      // Section 6.1. The result is the static counterpart T^-.
      return attr->type->element();
    }
    // `@ t` on a static attribute is only meaningful at the current time.
    if (e->at.has_value() && !IsNow(*e->at)) {
      return TypeErrorAt(
          *e, "attribute '" + e->name +
                  "' is non-temporal: its value at a past instant is not "
                  "recorded (Section 5.2)");
    }
    return attr->type;
  }

  Result<const Type*> CheckBinary(Expr* e) {
    TCH_ASSIGN_OR_RETURN(const Type* lt, Check(e->base.get()));
    TCH_ASSIGN_OR_RETURN(const Type* rt, Check(e->rhs.get()));
    switch (e->op) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        if (lt->kind() != TypeKind::kBool || rt->kind() != TypeKind::kBool) {
          return TypeErrorAt(*e, "boolean connective requires bool operands");
        }
        return types::Bool();
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
        if (!Comparable(lt, rt, db_.isa())) {
          return TypeErrorAt(*e, "cannot compare " + lt->ToString() +
                                     " with " + rt->ToString());
        }
        return types::Bool();
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        bool ordered =
            (IsNumeric(lt) && lt == rt) ||
            (lt->kind() == TypeKind::kString &&
             rt->kind() == TypeKind::kString) ||
            (lt->kind() == TypeKind::kTime && rt->kind() == TypeKind::kTime) ||
            (lt->kind() == TypeKind::kChar && rt->kind() == TypeKind::kChar) ||
            lt->kind() == TypeKind::kAny || rt->kind() == TypeKind::kAny;
        if (!ordered) {
          return TypeErrorAt(*e, "no ordering between " + lt->ToString() +
                                     " and " + rt->ToString());
        }
        return types::Bool();
      }
      case BinaryOp::kIn: {
        if (!rt->IsCollection() && rt->kind() != TypeKind::kAny) {
          return TypeErrorAt(*e, "'in' requires a set or list, got " +
                                     rt->ToString());
        }
        if (rt->IsCollection() &&
            !Comparable(lt, rt->element(), db_.isa())) {
          return TypeErrorAt(*e, "element type " + lt->ToString() +
                                     " does not match collection " +
                                     rt->ToString());
        }
        return types::Bool();
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        if (!IsNumeric(lt) || lt != rt) {
          return TypeErrorAt(
              *e, "arithmetic requires two integers or two reals, got " +
                      lt->ToString() + " and " + rt->ToString());
        }
        return lt;
    }
    return Status::Internal("unhandled binary op");
  }

  Result<const Type*> CheckCall(Expr* e) {
    const std::string& fn = e->name;
    if (fn == "size") {
      if (e->args.size() != 1) {
        return TypeErrorAt(*e, "size() takes one argument");
      }
      TCH_ASSIGN_OR_RETURN(const Type* t, Check(e->args[0].get()));
      if (!t->IsCollection() && t->kind() != TypeKind::kAny) {
        return TypeErrorAt(*e, "size() requires a set or list, got " +
                                   t->ToString());
      }
      return types::Integer();
    }
    if (fn == "defined") {
      if (e->args.size() != 1) {
        return TypeErrorAt(*e, "defined() takes one argument");
      }
      TCH_RETURN_IF_ERROR(Check(e->args[0].get()).status());
      return types::Bool();
    }
    if (fn == "snapshot") {
      // snapshot(x [, t]): the projected state of an object.
      if (e->args.empty() || e->args.size() > 2) {
        return TypeErrorAt(*e, "snapshot() takes one or two arguments");
      }
      TCH_ASSIGN_OR_RETURN(const Type* t, Check(e->args[0].get()));
      if (t->kind() != TypeKind::kObject) {
        return TypeErrorAt(*e, "snapshot() requires an object, got " +
                                   t->ToString());
      }
      if (e->args.size() == 2) {
        TCH_ASSIGN_OR_RETURN(const Type* tt, Check(e->args[1].get()));
        if (tt->kind() != TypeKind::kTime) {
          return TypeErrorAt(*e, "snapshot() instant must be a time value");
        }
      }
      // The snapshot record projects every attribute at the instant:
      // temporal attribute domains are coerced to T^-.
      TCH_ASSIGN_OR_RETURN(const ClassDef* cls,
                           db_.FindClass(t->class_name()));
      std::vector<RecordField> fields;
      for (const AttributeDef& a : cls->attributes()) {
        fields.push_back(
            {a.name, a.is_temporal() ? a.type->element() : a.type});
      }
      return types::RecordOf(std::move(fields));
    }
    if (fn == "lifespan") {
      if (e->args.size() != 1) {
        return TypeErrorAt(*e, "lifespan() takes one argument");
      }
      TCH_ASSIGN_OR_RETURN(const Type* t, Check(e->args[0].get()));
      if (t->kind() != TypeKind::kObject) {
        return TypeErrorAt(*e, "lifespan() requires an object");
      }
      // Reported as the list [start, end].
      return types::ListOf(types::Time());
    }
    if (fn == "videntical" || fn == "vequal" || fn == "vinstant" ||
        fn == "vweak" || fn == "vdeep") {
      if (e->args.size() != 2) {
        return TypeErrorAt(*e, fn + "() takes two objects");
      }
      for (const ExprPtr& a : e->args) {
        TCH_ASSIGN_OR_RETURN(const Type* t, Check(a.get()));
        if (t->kind() != TypeKind::kObject) {
          return TypeErrorAt(*e, fn + "() requires objects, got " +
                                     t->ToString());
        }
      }
      return types::Bool();
    }
    return TypeErrorAt(*e, "unknown function '" + fn + "'");
  }

  const Database& db_;
  const TypeEnv& env_;
};

}  // namespace

Result<const Type*> TypeCheckExpr(Expr* expr, const Database& db,
                                  const TypeEnv& env) {
  return Checker(db, env).Check(expr);
}

Result<std::vector<const Type*>> TypeCheckSelect(SelectStmt* stmt,
                                                 const Database& db) {
  TypeEnv env;
  for (const SelectBinder& binder : stmt->binders) {
    TCH_RETURN_IF_ERROR(db.FindClass(binder.class_name).status());
    if (!env.emplace(binder.var, binder.class_name).second) {
      return Status::TypeError("duplicate binder '" + binder.var +
                               "' in FROM clause");
    }
  }
  std::vector<const Type*> out;
  for (ExprPtr& p : stmt->projections) {
    TCH_ASSIGN_OR_RETURN(const Type* t, TypeCheckExpr(p.get(), db, env));
    out.push_back(t);
  }
  if (stmt->where != nullptr) {
    TCH_ASSIGN_OR_RETURN(const Type* t,
                         TypeCheckExpr(stmt->where.get(), db, env));
    if (t->kind() != TypeKind::kBool) {
      return Status::TypeError("WHERE clause must be bool, got " +
                               t->ToString());
    }
  }
  return out;
}

}  // namespace tchimera
