// The concurrent execution engine: Sessions over a shared Engine.
//
// Layering (top to bottom):
//
//   Session   — one per client (thread). Classifies each statement:
//               read-only TQL (select / snapshot / history / when /
//               show) runs against a ReadSnapshot, concurrently with
//               every other reader; everything else is routed to the
//               Engine's write path. Owns its own DiagnosticEngine, so
//               the "one engine per lint run" contract
//               (analysis/diagnostic.h) holds without locks.
//   Engine    — wraps the database in a VersionedDatabase (MVCC: reads
//               are lock-free loads of the published version) and owns
//               the ActiveDatabase facade (triggers, constraints,
//               `check`). Writes run optimistically by default: the
//               statement executes against a private OptimisticTransaction
//               copy with no lock held, then CommitTransaction validates
//               its write footprint against concurrently committed
//               versions and — inside the only serialized span —
//               enqueues the statement with the CommitSink (so journal
//               order == commit order) and publishes. A validation loss
//               (Status::Conflict) is retried a bounded number of times
//               against a fresh base; persistent losers fall back to
//               the exclusive WriteGuard path, which also serves the
//               schema-level verbs (define / drop / trigger /
//               constraint) outright. Durability is awaited after the
//               lock is released — the group-commit window: many
//               sessions can be between enqueue and durable at once,
//               and one fdatasync acknowledges them all.
//   CommitSink — the durability boundary. storage/group_commit.h is the
//               real implementation (cross-session group commit); a null
//               sink (in-memory engines) acknowledges immediately.
//
// A Session is NOT thread-safe — it is the per-client handle. The Engine
// is: any number of sessions on any threads may execute concurrently.
//
// See docs/CONCURRENCY.md for the full protocol and tuning knobs.
#ifndef TCHIMERA_QUERY_SESSION_H_
#define TCHIMERA_QUERY_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "core/db/versioned_db.h"
#include "triggers/trigger.h"

namespace tchimera {

// True for the statements the engine must hand to its CommitSink: the
// journaled verbs (IsMutatingStatement) plus the trigger / constraint
// definition forms the ActiveDatabase facade accepts.
bool IsDurableStatement(std::string_view statement);

// Where committed statements go to become durable. Enqueue is called by
// the engine while it still holds the writer lock (cheap: buffer the
// statement, assign a ticket); Await is called after the lock is
// released and may block (this is where group commit batches form).
// Implementations must be thread-safe.
class CommitSink {
 public:
  struct Ticket {
    uint64_t seq = 0;  // 0 = nothing enqueued (Await returns OK)
    // An Enqueue that fails fast (closed or poisoned sink) reports it
    // here with seq == 0: the statement never entered a batch, so there
    // is nothing to await — the engine surfaces this status instead.
    Status status = Status::OK();
  };

  virtual ~CommitSink() = default;
  virtual Ticket Enqueue(std::string_view statement) = 0;
  virtual Status Await(Ticket ticket) = 0;
};

class Session;

class Engine {
 public:
  // Wraps `db` (nullptr = a fresh database).
  explicit Engine(std::unique_ptr<Database> db = nullptr,
                  size_t max_cascade_depth = 16);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Installs the durability sink (nullptr = in-memory: commits are
  // acknowledged immediately). Call during single-threaded setup, before
  // concurrent sessions run — typically after recovery replay, so the
  // replay itself is not re-journaled.
  void set_commit_sink(CommitSink* sink) { sink_ = sink; }

  // A new session bound to this engine. Sessions are movable, cheap, and
  // single-threaded; the engine must outlive them.
  Session OpenSession();

  // A pinned read view (see core/db/versioned_db.h). Safe from any
  // thread; never blocks (one atomic load), and holding it never blocks
  // writers.
  ReadSnapshot OpenSnapshot() const { return vdb_.OpenSnapshot(); }

  // The latest committed version.
  uint64_t version() const { return vdb_.version(); }

  // Runs `fn` with the writer lock held (no concurrent writer; readers
  // keep their pinned versions, which is all a checkpoint needs — the
  // tip equals the last committed state). On success the tip is
  // republished, so any mutation `fn` made becomes visible. The
  // ActiveDatabase gives access to DefinitionStatements().
  Status WithExclusive(
      const std::function<Status(Database&, ActiveDatabase&)>& fn);

  // The underlying database / facade, bypassing all locking. Strictly
  // for single-threaded phases: recovery replay before sessions exist,
  // test setup, teardown inspection.
  Database& writer_db() { return vdb_.writer_db(); }
  ActiveDatabase& active() { return active_; }

  // Optimistic commits that lost validation and were retried (includes
  // attempts that later succeeded). Tests and bench read this.
  uint64_t conflict_count() const { return vdb_.conflict_count(); }

 private:
  friend class Session;

  // The write path: optimistic with bounded retry, exclusive fallback
  // (see file comment).
  Result<std::string> ExecuteWrite(std::string_view statement,
                                   DiagnosticEngine* lint);
  // One optimistic attempt: execute on a private transaction copy, then
  // validate+publish. Status::Conflict means "lost the race, retry".
  Result<std::string> TryOptimisticWrite(std::string_view statement,
                                         DiagnosticEngine* lint);
  // The serialized fallback: writer lock held across execute + enqueue +
  // publish. Also the only path for schema/definition verbs.
  Result<std::string> ExecuteWriteExclusive(std::string_view statement,
                                            DiagnosticEngine* lint);

  VersionedDatabase vdb_;
  ActiveDatabase active_;
  // Guards active_'s trigger/constraint definitions: optimistic writers
  // copy them into per-transaction facades without holding the writer
  // lock. Lock order: writer_mu_ (inside vdb_) before defs_mu_.
  std::mutex defs_mu_;
  size_t max_cascade_depth_;
  CommitSink* sink_ = nullptr;
};

// One client's handle. Execute() is the single entry point: reads run
// concurrently on a snapshot, writes serialize through the engine and
// return only once durable (per the engine's sink).
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Result<std::string> Execute(std::string_view statement);

  // Opt-in lint: findings accumulate in diags() (this session's private
  // engine; never shared across threads).
  void set_lint_enabled(bool enabled) { lint_enabled_ = enabled; }
  DiagnosticEngine& diags() { return *diags_; }

  // A pinned read view for direct (C++ API) reads.
  ReadSnapshot snapshot() const { return engine_->OpenSnapshot(); }

 private:
  friend class Engine;
  explicit Session(Engine* engine)
      : engine_(engine), diags_(std::make_unique<DiagnosticEngine>()) {}

  Engine* engine_;
  // unique_ptr so Session stays movable with a stable address to hand to
  // the interpreter during a statement.
  std::unique_ptr<DiagnosticEngine> diags_;
  bool lint_enabled_ = false;
};

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_SESSION_H_
