// The concurrent execution engine: Sessions over a shared Engine.
//
// Layering (top to bottom):
//
//   Session   — one per client (thread). Classifies each statement:
//               read-only TQL (select / snapshot / history / when /
//               show) runs against a ReadSnapshot, concurrently with
//               every other reader; everything else is routed to the
//               Engine's write path. Owns its own DiagnosticEngine, so
//               the "one engine per lint run" contract
//               (analysis/diagnostic.h) holds without locks.
//   Engine    — wraps the database in a VersionedDatabase (MVCC: reads
//               are lock-free loads of the published version) and owns
//               the ActiveDatabase facade (triggers, constraints,
//               `check`). Writes run optimistically by default: the
//               statement executes against a private OptimisticTransaction
//               copy with no lock held, then CommitTransaction validates
//               its write footprint against concurrently committed
//               versions and — inside the only serialized span —
//               enqueues the statement with the CommitSink (so journal
//               order == commit order) and publishes. A validation loss
//               (Status::Conflict) is retried a bounded number of times
//               against a fresh base; persistent losers fall back to
//               the exclusive WriteGuard path, which also serves the
//               schema-level verbs (define / drop / trigger /
//               constraint) outright. Durability is awaited after the
//               lock is released — the group-commit window: many
//               sessions can be between enqueue and durable at once,
//               and one fdatasync acknowledges them all.
//   CommitSink — the durability boundary. storage/group_commit.h is the
//               real implementation (cross-session group commit); a null
//               sink (in-memory engines) acknowledges immediately.
//
// A Session is NOT thread-safe — it is the per-client handle. The Engine
// is: any number of sessions on any threads may execute concurrently.
//
// See docs/CONCURRENCY.md for the full protocol and tuning knobs.
#ifndef TCHIMERA_QUERY_SESSION_H_
#define TCHIMERA_QUERY_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "core/db/versioned_db.h"
#include "query/lower.h"
#include "triggers/trigger.h"

namespace tchimera {

// --- plan cache --------------------------------------------------------------

// One cached compilation: either a lowered plan or a remembered fallback
// reason (negative entry — re-lowering a statement the compiler cannot
// handle would waste the type-check every call). Immutable once
// published; shared by every session that executes the same text.
struct CachedPlan {
  std::optional<LoweredPlan> plan;
  std::string fallback_reason;  // set iff !plan
};

// Canonical cache key for a statement: `--` comments stripped, quoted
// literals preserved byte-for-byte, whitespace runs collapsed to one
// space, trimmed. Deliberately NOT case-folded — identifiers are
// case-sensitive.
std::string NormalizePlanKey(std::string_view statement);

// The engine-wide compiled-statement cache, keyed on normalized text and
// guarded by the schema version the plan was compiled under: a lookup
// with a newer schema version evicts the stale entry (DDL invalidation).
// Thread-safe; bounded (kMaxEntries, stale-first eviction).
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // entries evicted for a stale schema
  };

  static constexpr size_t kMaxEntries = 256;

  // The cached plan compiled under exactly `schema_version`, or nullptr
  // (miss). An entry compiled under a different version is dropped.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t schema_version);
  void Insert(const std::string& key, uint64_t schema_version,
              std::shared_ptr<const CachedPlan> plan);

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t schema_version = 0;
    std::shared_ptr<const CachedPlan> plan;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  Stats stats_;
};

// True for the statements the engine must hand to its CommitSink: the
// journaled verbs (IsMutatingStatement) plus the trigger / constraint
// definition forms the ActiveDatabase facade accepts.
bool IsDurableStatement(std::string_view statement);

// Where committed statements go to become durable. Enqueue is called by
// the engine while it still holds the writer lock (cheap: buffer the
// statement, assign a ticket); Await is called after the lock is
// released and may block (this is where group commit batches form).
// Implementations must be thread-safe.
class CommitSink {
 public:
  struct Ticket {
    uint64_t seq = 0;  // 0 = nothing enqueued (Await returns OK)
    // An Enqueue that fails fast (closed or poisoned sink) reports it
    // here with seq == 0: the statement never entered a batch, so there
    // is nothing to await — the engine surfaces this status instead.
    Status status = Status::OK();
  };

  virtual ~CommitSink() = default;
  virtual Ticket Enqueue(std::string_view statement) = 0;
  virtual Status Await(Ticket ticket) = 0;
};

// How a write that loses optimistic validation (StatusCode::kConflict)
// is retried. The policy belongs to the caller, not the engine: an
// embedded session wants guaranteed progress (bounded retry, then take
// the writer lock), while a network front end wants a per-request retry
// budget after which the *client* is told to retry — backpressure, not
// a lock convoy (see src/server/server.h).
struct WriteRetryPolicy {
  // Optimistic attempts before the policy gives up (clamped to >= 1).
  int max_optimistic_attempts = 3;
  // What "giving up" means: true = fall back to the exclusive writer
  // lock (progress is guaranteed even when every writer touches the same
  // slot); false = surface the final kConflict to the caller, who owns
  // the retry. Statements that *require* the exclusive path (DDL,
  // definition-changing cascades) always take it, whatever this says.
  bool exclusive_fallback = true;
};

class Session;

// A primary-side handle tracking how far one replica has provably
// replayed, in primary MVCC versions. The shipping pump
// (storage/replication.h) advances it whenever a replica reaches a
// drained durable horizon; Engine::min_replicated_version() aggregates
// the leases into the watermark that decides read-your-writes routing.
// Monotone and lock-free on both sides.
class ReplicaLease {
 public:
  explicit ReplicaLease(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  // The highest primary version this replica is known to reflect.
  uint64_t replicated_version() const {
    return version_.load(std::memory_order_acquire);
  }

  // Monotone advance (a stale pump round can never move a lease back).
  void AdvanceReplicatedVersion(uint64_t version) {
    uint64_t cur = version_.load(std::memory_order_relaxed);
    while (cur < version &&
           !version_.compare_exchange_weak(cur, version,
                                           std::memory_order_acq_rel)) {
    }
  }

 private:
  std::string name_;
  std::atomic<uint64_t> version_{0};
};

// How stale a read a session tolerates when the deployment routes reads
// to replicas (see docs/REPLICATION.md).
enum class ReadStaleness {
  // Replica reads are admissible only when every registered replica has
  // replayed past this session's last write (the default: a client never
  // fails to see its own writes).
  kReadYourWrites,
  // Any replica snapshot will do; the client accepts bounded lag.
  kEventual,
};

class Engine {
 public:
  // Wraps `db` (nullptr = a fresh database).
  explicit Engine(std::unique_ptr<Database> db = nullptr,
                  size_t max_cascade_depth = 16);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Installs the durability sink (nullptr = in-memory: commits are
  // acknowledged immediately). Call during single-threaded setup, before
  // concurrent sessions run — typically after recovery replay, so the
  // replay itself is not re-journaled.
  void set_commit_sink(CommitSink* sink) { sink_ = sink; }

  // A new session bound to this engine. Sessions are movable, cheap, and
  // single-threaded; the engine must outlive them.
  Session OpenSession();

  // A pinned read view (see core/db/versioned_db.h). Safe from any
  // thread; never blocks (one atomic load), and holding it never blocks
  // writers.
  ReadSnapshot OpenSnapshot() const { return vdb_.OpenSnapshot(); }

  // The latest committed version.
  uint64_t version() const { return vdb_.version(); }

  // Runs `fn` with the writer lock held (no concurrent writer; readers
  // keep their pinned versions, which is all a checkpoint needs — the
  // tip equals the last committed state). On success the tip is
  // republished, so any mutation `fn` made becomes visible. The
  // ActiveDatabase gives access to DefinitionStatements().
  Status WithExclusive(
      const std::function<Status(Database&, ActiveDatabase&)>& fn);

  // The underlying database / facade, bypassing all locking. Strictly
  // for single-threaded phases: recovery replay before sessions exist,
  // test setup, teardown inspection.
  Database& writer_db() { return vdb_.writer_db(); }
  ActiveDatabase& active() { return active_; }

  // Optimistic commits that lost validation and were retried (includes
  // attempts that later succeeded). Tests and bench read this.
  uint64_t conflict_count() const { return vdb_.conflict_count(); }

  // Registers a replica with this (primary) engine and returns its
  // lease. The engine holds only a weak reference: dropping the returned
  // shared_ptr (replica decommissioned) removes the replica from the
  // watermark with no explicit unregister call.
  std::shared_ptr<ReplicaLease> RegisterReplica(std::string name);

  // The replicated watermark: the highest version every *live* replica
  // is known to reflect (minimum over the registered leases). With no
  // replicas registered, returns version() — there is nobody lagging, so
  // every committed version is "replicated". Expired leases are pruned
  // in passing.
  uint64_t min_replicated_version() const;

  // The engine-wide compiled-statement cache (see PlanCache). Sessions
  // consult it on the read path; DDL invalidates through the schema
  // version each pinned snapshot carries (Database::schema_version).
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  friend class Session;

  // The write path: optimistic with retry per `policy`, then exclusive
  // fallback or a surfaced kConflict (see WriteRetryPolicy).
  Result<std::string> ExecuteWrite(std::string_view statement,
                                   DiagnosticEngine* lint,
                                   const WriteRetryPolicy& policy);
  // One optimistic attempt: execute on a private transaction copy, then
  // validate+publish. Status::Conflict means "lost the race, retry" —
  // except when `*needs_exclusive` is set: the statement did something
  // only the exclusive path can publish (definition-changing cascade),
  // so no number of optimistic retries can ever succeed.
  Result<std::string> TryOptimisticWrite(std::string_view statement,
                                         DiagnosticEngine* lint,
                                         bool* needs_exclusive);
  // The serialized fallback: writer lock held across execute + enqueue +
  // publish. Also the only path for schema/definition verbs.
  Result<std::string> ExecuteWriteExclusive(std::string_view statement,
                                            DiagnosticEngine* lint);

  // Replica leases (weak: a dropped lease is an unregistered replica).
  // Guarded by replicas_mu_; never taken together with any other engine
  // lock, so it cannot participate in a lock cycle.
  mutable std::mutex replicas_mu_;
  mutable std::vector<std::weak_ptr<ReplicaLease>> replicas_;

  VersionedDatabase vdb_;
  ActiveDatabase active_;
  // Guards active_'s trigger/constraint definitions: optimistic writers
  // copy them into per-transaction facades without holding the writer
  // lock. Lock order: writer_mu_ (inside vdb_) before defs_mu_.
  std::mutex defs_mu_;
  size_t max_cascade_depth_;
  CommitSink* sink_ = nullptr;
  PlanCache plan_cache_;
};

// One client's handle. Execute() is the single entry point: reads run
// concurrently on a snapshot, writes serialize through the engine and
// return only once durable (per the engine's sink).
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Result<std::string> Execute(std::string_view statement);

  // Opt-in lint: findings accumulate in diags() (this session's private
  // engine; never shared across threads).
  void set_lint_enabled(bool enabled) { lint_enabled_ = enabled; }
  DiagnosticEngine& diags() { return *diags_; }

  // Compiled execution of select/when (on by default): lower to an
  // ExecProgram (consulting the engine's plan cache) and run the batch
  // VM; non-lowerable statements and every other verb tree-walk. Off
  // (`--no-compile`) forces the tree-walking evaluator for everything.
  void set_compile_enabled(bool enabled) { compile_enabled_ = enabled; }
  bool compile_enabled() const { return compile_enabled_; }

  // The conflict-retry policy for this session's writes (default: 3
  // optimistic attempts, then the exclusive lock). A server front end
  // sets {budget, false} so an exhausted budget surfaces kConflict as a
  // retryable wire error instead of convoying on the writer lock.
  void set_write_retry_policy(const WriteRetryPolicy& policy) {
    write_retry_policy_ = policy;
  }
  const WriteRetryPolicy& write_retry_policy() const {
    return write_retry_policy_;
  }

  // A pinned read view for direct (C++ API) reads.
  ReadSnapshot snapshot() const { return engine_->OpenSnapshot(); }

  // Read routing policy for deployments with replicas. The session only
  // *answers* the routing question (CanReadFromReplica); actually sending
  // the read to a replica's engine is the front end's move.
  void set_read_staleness(ReadStaleness staleness) {
    read_staleness_ = staleness;
  }
  ReadStaleness read_staleness() const { return read_staleness_; }

  // The primary version of this session's most recent successful write
  // (0 = never wrote). Conservative: sampled from the engine tip after
  // the write, so it is >= the write's own version — read-your-writes
  // stays safe, at worst a read is routed to the primary unnecessarily.
  uint64_t last_write_version() const { return last_write_version_; }

  // True when this session's staleness policy admits serving its next
  // read from a replica: always for kEventual; for kReadYourWrites, only
  // once the replicated watermark has passed the session's last write.
  bool CanReadFromReplica() const {
    if (read_staleness_ == ReadStaleness::kEventual) return true;
    return engine_->min_replicated_version() >= last_write_version_;
  }

 private:
  friend class Engine;
  explicit Session(Engine* engine)
      : engine_(engine), diags_(std::make_unique<DiagnosticEngine>()) {}

  // The compiled read path for one parsed select/when: consult the plan
  // cache (keyed on `key` + the snapshot's schema version), lower on a
  // miss, run the VM. Returns nullopt when the statement must
  // tree-walk (negative cache entry); type errors propagate unchanged.
  Result<std::optional<std::string>> TryCompiledRead(Statement* stmt,
                                                     const Database& db,
                                                     const std::string& key);

  Engine* engine_;
  // unique_ptr so Session stays movable with a stable address to hand to
  // the interpreter during a statement.
  std::unique_ptr<DiagnosticEngine> diags_;
  bool lint_enabled_ = false;
  bool compile_enabled_ = true;
  WriteRetryPolicy write_retry_policy_;
  ReadStaleness read_staleness_ = ReadStaleness::kReadYourWrites;
  uint64_t last_write_version_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_SESSION_H_
