// Tokens of the TQL surface language (the small query / definition
// language layered over the T_Chimera model; see parser.h for the
// grammar).
#ifndef TCHIMERA_QUERY_TOKEN_H_
#define TCHIMERA_QUERY_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tchimera {

enum class TokenKind {
  kEnd,         // end of input
  kIdentifier,  // names: classes, attributes, variables
  kKeyword,     // reserved words (normalized to lower case)
  kInteger,     // 42
  kReal,        // 3.5
  kString,      // 'text'
  kCharLit,     // c'x'
  kOidLit,      // i7
  kTimeLit,     // t42 / tnow
  // punctuation / operators
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kColon,       // :
  kSemicolon,   // ;
  kDot,         // .
  kAt,          // @
  kEq,          // =
  kNeq,         // <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier / keyword spelling, string body
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
  size_t end = 0;       // one past the last byte of the token's spelling

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  std::string Describe() const;
};

// True if `word` (lower-cased) is a reserved keyword of TQL.
bool IsTqlKeyword(std::string_view word);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_TOKEN_H_
