#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "core/temporal/instant.h"

namespace tchimera {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      Token tok;
      tok.position = pos_;
      if (pos_ >= input_.size()) {
        tok.kind = TokenKind::kEnd;
        tok.end = pos_;
        out.push_back(tok);
        return out;
      }
      TCH_RETURN_IF_ERROR(Next(&tok));
      tok.end = pos_;
      out.push_back(std::move(tok));
    }
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        // SQL-style line comment.
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status ErrorHere(const std::string& what) {
    return Status::InvalidArgument(what + " at position " +
                                   std::to_string(pos_));
  }

  Status LexQuoted(Token* tok, TokenKind kind) {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '\'') {
        if (kind == TokenKind::kCharLit && body.size() != 1) {
          return ErrorHere("char literal must contain exactly one character");
        }
        tok->kind = kind;
        tok->text = std::move(body);
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ >= input_.size()) return ErrorHere("unterminated escape");
        char e = input_[pos_++];
        switch (e) {
          case '\'':
            body.push_back('\'');
            break;
          case '\\':
            body.push_back('\\');
            break;
          case 'n':
            body.push_back('\n');
            break;
          case 't':
            body.push_back('\t');
            break;
          default:
            return ErrorHere("bad escape sequence");
        }
      } else {
        body.push_back(c);
      }
    }
    return ErrorHere("unterminated string literal");
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    bool is_real = false;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < input_.size() &&
                 std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))) {
        is_real = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ + 1 < input_.size()) {
        size_t next = pos_ + 1;
        if (input_[next] == '+' || input_[next] == '-') ++next;
        if (next < input_.size() &&
            std::isdigit(static_cast<unsigned char>(input_[next]))) {
          is_real = true;
          pos_ = next + 1;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    std::string text(input_.substr(start, pos_ - start));
    if (is_real) {
      tok->kind = TokenKind::kReal;
      tok->real_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInteger;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  Status Next(Token* tok) {
    char c = input_[pos_];
    // Quoted literals.
    if (c == '\'') return LexQuoted(tok, TokenKind::kString);
    if (c == 'c' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
      ++pos_;
      return LexQuoted(tok, TokenKind::kCharLit);
    }
    // Oid / time literals: i<digits>, t<digits>, tnow — only when not part
    // of a longer identifier.
    if ((c == 'i' || c == 't') && pos_ + 1 < input_.size()) {
      size_t end = pos_ + 1;
      if (c == 't' && input_.compare(end, 3, "now") == 0) {
        end += 3;
      } else {
        while (end < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[end]))) {
          ++end;
        }
      }
      bool has_body = end > pos_ + 1;
      bool terminated = end >= input_.size() || !IsIdentChar(input_[end]);
      if (has_body && terminated) {
        std::string body(input_.substr(pos_ + 1, end - pos_ - 1));
        if (c == 'i') {
          tok->kind = TokenKind::kOidLit;
          tok->int_value = std::strtoll(body.c_str(), nullptr, 10);
        } else {
          tok->kind = TokenKind::kTimeLit;
          tok->int_value =
              body == "now" ? kNow : std::strtoll(body.c_str(), nullptr, 10);
        }
        pos_ = end;
        return Status::OK();
      }
    }
    if (IsIdentStart(c)) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() && IsIdentChar(input_[pos_])) ++pos_;
      std::string word(input_.substr(start, pos_ - start));
      std::string lower = word;
      for (char& ch : lower) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      if (IsTqlKeyword(lower)) {
        tok->kind = TokenKind::kKeyword;
        tok->text = std::move(lower);
      } else {
        tok->kind = TokenKind::kIdentifier;
        tok->text = std::move(word);
      }
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(tok);
    // Punctuation.
    ++pos_;
    switch (c) {
      case '(':
        tok->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        tok->kind = TokenKind::kRParen;
        return Status::OK();
      case '{':
        tok->kind = TokenKind::kLBrace;
        return Status::OK();
      case '}':
        tok->kind = TokenKind::kRBrace;
        return Status::OK();
      case '[':
        tok->kind = TokenKind::kLBracket;
        return Status::OK();
      case ']':
        tok->kind = TokenKind::kRBracket;
        return Status::OK();
      case ',':
        tok->kind = TokenKind::kComma;
        return Status::OK();
      case ':':
        tok->kind = TokenKind::kColon;
        return Status::OK();
      case ';':
        tok->kind = TokenKind::kSemicolon;
        return Status::OK();
      case '.':
        tok->kind = TokenKind::kDot;
        return Status::OK();
      case '@':
        tok->kind = TokenKind::kAt;
        return Status::OK();
      case '=':
        tok->kind = TokenKind::kEq;
        return Status::OK();
      case '+':
        tok->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        tok->kind = TokenKind::kMinus;
        return Status::OK();
      case '*':
        tok->kind = TokenKind::kStar;
        return Status::OK();
      case '/':
        tok->kind = TokenKind::kSlash;
        return Status::OK();
      case '<':
        if (pos_ < input_.size() && input_[pos_] == '=') {
          ++pos_;
          tok->kind = TokenKind::kLe;
        } else if (pos_ < input_.size() && input_[pos_] == '>') {
          ++pos_;
          tok->kind = TokenKind::kNeq;
        } else {
          tok->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (pos_ < input_.size() && input_[pos_] == '=') {
          ++pos_;
          tok->kind = TokenKind::kGe;
        } else {
          tok->kind = TokenKind::kGt;
        }
        return Status::OK();
      default:
        --pos_;
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  return Lexer(input).Run();
}

}  // namespace tchimera
