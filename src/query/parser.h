// Recursive-descent parser for TQL.
//
// Statement grammar (keywords case-insensitive; ';' optional at the end):
//
//   stmt := DEFINE CLASS name [UNDER name (, name)*]
//             [ATTRIBUTES field (, field)*]
//             [METHODS msig (, msig)*]
//             [C-ATTRIBUTES field (, field)*]
//           END
//         | DROP CLASS name
//         | CREATE name [AT instant] [ '(' name ':' expr (, ...)* ')' ]
//         | UPDATE oid SET name '=' expr [DURING interval]
//         | MIGRATE oid TO name [SET name '=' expr (, ...)* ]
//         | DELETE oid
//         | SELECT expr (, expr)* FROM name IN name (, name IN name)*
//             [AT instant] [WHERE expr]
//         | SNAPSHOT oid [AT instant]
//         | HISTORY oid '.' name
//         | TICK [n] | ADVANCE TO instant
//         | WHEN expr                 (temporal selection: when did the
//                                      closed boolean condition hold?)
//         | CHECK
//         | SHOW CLASS name | SHOW OBJECT oid | SHOW CLASSES | SHOW NOW
//
//   field    := name ':' type          (type in the canonical type syntax)
//   msig     := name '(' [type (, type)*] ')' ':' type
//   interval := '[' instant ',' instant ']'
//   instant  := t<digits> | tnow | <digits>
//
// Expression grammar (precedence low to high):
//
//   expr   := or ; or := and (OR and)* ; and := cmp (AND cmp)*
//   cmp    := sum ( ('='|'<>'|'<'|'<='|'>'|'>='|IN) sum )?
//   sum    := prod (('+'|'-') prod)*
//   prod   := unary (('*'|'/') unary)*
//   unary  := NOT unary | '-' unary | postfix
//   postfix:= primary ('.' name ['@' instant])*
//   primary:= literal | name | '(' expr ')' | call | '{' exprs '}'
//          | '[' exprs ']' | REC '(' name ':' expr (, ...)* ')'
//   call   := (SIZE|DEFINED|SNAPSHOT|VIDENTICAL|VEQUAL|VINSTANT|VWEAK)
//             '(' exprs ')'
#ifndef TCHIMERA_QUERY_PARSER_H_
#define TCHIMERA_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/ast.h"

namespace tchimera {

// Parses one TQL statement.
Result<Statement> ParseStatement(std::string_view input);

// Parses a script: a sequence of statements separated by ';'. DEFINE
// CLASS ... END needs no separator.
Result<std::vector<Statement>> ParseScript(std::string_view input);

// Parses a standalone expression (used by tests and the bench harness).
Result<ExprPtr> ParseExpression(std::string_view input);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_PARSER_H_
