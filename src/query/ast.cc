#include "query/ast.h"

namespace tchimera {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kIn:
      return "in";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kVar:
      return name;
    case ExprKind::kAttrAccess: {
      std::string out = base->ToString() + "." + name;
      if (at.has_value()) out += "@t" + InstantToString(*at);
      return out;
    }
    case ExprKind::kNot:
      return "not " + base->ToString();
    case ExprKind::kNegate:
      return "-" + base->ToString();
    case ExprKind::kBinary:
      return "(" + base->ToString() + " " + BinaryOpName(op) + " " +
             rhs->ToString() + ")";
    case ExprKind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kSetCtor:
    case ExprKind::kListCtor: {
      std::string out(1, kind == ExprKind::kSetCtor ? '{' : '[');
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += kind == ExprKind::kSetCtor ? '}' : ']';
      return out;
    }
    case ExprKind::kRecCtor: {
      std::string out = "rec(";
      for (size_t i = 0; i < rec_fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += rec_fields[i].first + ": " + rec_fields[i].second->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace tchimera
