#include "query/token.h"

#include <algorithm>
#include <array>

namespace tchimera {
namespace {

// Sorted for binary search.
constexpr std::array<std::string_view, 46> kKeywords = {
    "advance",  "and",        "at",        "attributes", "c-attributes",
    "check",    "class",      "classes",   "create",     "define",
    "defined",  "delete",     "drop",      "during",     "end",
    "explain",  "false",      "from",      "history",    "in",
    "lifespan", "methods",    "migrate",   "not",        "now",
    "null",     "or",         "rec",       "select",     "set",
    "show",     "size",       "snapshot",  "tick",       "to",
    "true",     "under",      "update",    "vdeep",      "vequal",
    "videntical", "vinstant", "vweak",     "when",       "where",
    "object",
};

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kReal:
      return "real";
    case TokenKind::kString:
      return "string";
    case TokenKind::kCharLit:
      return "char";
    case TokenKind::kOidLit:
      return "oid";
    case TokenKind::kTimeLit:
      return "time";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
  }
  return "token";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword '" + text + "'";
    case TokenKind::kString:
      return "string '" + text + "'";
    default:
      return TokenKindName(kind);
  }
}

bool IsTqlKeyword(std::string_view word) {
  // kKeywords is small; linear scan keeps it robust against ordering
  // mistakes.
  return std::find(kKeywords.begin(), kKeywords.end(), word) !=
         kKeywords.end();
}

}  // namespace tchimera
