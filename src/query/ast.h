// Abstract syntax of TQL.
//
// Expressions are evaluated *at an instant*: the query's AT time (default
// `now`). Accessing a temporal attribute without an explicit `@ t`
// projects it at that instant — this is exactly the snapshot coercion of
// Section 6.1, surfaced in the language; `@ t` projects at another
// instant. Full histories are reached through the HISTORY statement, not
// through expressions, so expression types are always non-temporal.
#ifndef TCHIMERA_QUERY_AST_H_
#define TCHIMERA_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/source_span.h"
#include "core/schema/class_def.h"
#include "core/temporal/interval.h"
#include "core/types/type.h"
#include "core/values/value.h"

namespace tchimera {

enum class ExprKind {
  kLiteral,     // 42, 'IDEA', true, null, i7, t42
  kVar,         // the FROM binder
  kAttrAccess,  // base.attr [@ t]
  kNot,         // not e
  kNegate,      // - e
  kBinary,      // e op e
  kCall,        // size(e), defined(e), videntical(x,y), ...
  kSetCtor,     // { e1, ..., en }
  kListCtor,    // [ e1, ..., en ]
  kRecCtor,     // rec(a: e, ...)
};

enum class BinaryOp {
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kIn,   // membership in a set or list
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  size_t position = 0;  // for error messages
  // Byte span of the whole expression in the parsed input. A
  // parenthesized expression's span includes its parentheses, so fix-it
  // deletions anchored to operand spans stay balanced. Invalid when the
  // AST was built programmatically.
  SourceSpan span;
  // kAttrAccess only: the span of the explicit "@ t" suffix (the '@'
  // token through the instant literal), for fix-its that drop it.
  SourceSpan at_span;

  Value literal;               // kLiteral
  std::string name;            // kVar / kAttrAccess (attribute) / kCall
  ExprPtr base;                // kAttrAccess / kNot / kNegate / kBinary lhs
  ExprPtr rhs;                 // kBinary rhs
  BinaryOp op = BinaryOp::kEq;
  std::optional<TimePoint> at;  // kAttrAccess explicit @ t
  std::vector<ExprPtr> args;   // kCall / kSetCtor / kListCtor
  std::vector<std::pair<std::string, ExprPtr>> rec_fields;  // kRecCtor

  // Filled in by the type checker.
  const Type* inferred = nullptr;

  std::string ToString() const;
};

// --- statements ---------------------------------------------------------------

struct DefineClassStmt {
  ClassSpec spec;
  // Removal spans parallel to spec.attributes / spec.c_attributes: the
  // byte range to delete to drop declaration i from its section,
  // including the list separator (or the section keyword when it is the
  // only declaration). Empty when the spec was built programmatically.
  std::vector<SourceSpan> attribute_spans;
  std::vector<SourceSpan> c_attribute_spans;
};

struct DropClassStmt {
  std::string name;
};

// `create index <name> on <class> ( <attr> )` — an equality/range index
// over the attribute's values — or `create index <name> on <class>
// lifespan` — a timeline index over object lifespans (core/db/index.h).
struct CreateIndexStmt {
  std::string name;
  std::string class_name;
  std::string attr;       // empty for a lifespan index
  bool lifespan = false;
};

struct DropIndexStmt {
  std::string name;
};

struct CreateStmt {
  std::string class_name;
  std::vector<std::pair<std::string, ExprPtr>> inits;
  std::optional<TimePoint> at;  // retroactive creation
};

struct UpdateStmt {
  Oid oid;
  std::string attr;
  ExprPtr value;
  std::optional<Interval> during;  // valid-time update window
  // Spans of the two `during` endpoint literals (for swap fix-its).
  SourceSpan during_start_span;
  SourceSpan during_end_span;
};

struct MigrateStmt {
  Oid oid;
  std::string to_class;
  std::vector<std::pair<std::string, ExprPtr>> sets;
};

struct DeleteStmt {
  Oid oid;
};

struct SelectBinder {
  std::string var;
  std::string class_name;
  size_t position = 0;  // byte offset of the binder, for diagnostics
  // The byte range to delete to drop this binder from the FROM list,
  // including the list separator. Invalid when built programmatically.
  SourceSpan remove_span;
};

struct SelectStmt {
  // Projections; a bare `select x` yields the oids themselves.
  std::vector<ExprPtr> projections;
  // One or more binders: `from x in c1, y in c2` iterates the cartesian
  // product of the classes' extents at the evaluation instant.
  std::vector<SelectBinder> binders;
  std::optional<TimePoint> at;  // evaluation instant (default now)
  ExprPtr where;                // may be null
  // The `where` keyword through the end of the predicate (for fix-its
  // that drop a statically-true filter).
  SourceSpan where_span;
};

struct SnapshotStmt {
  Oid oid;
  std::optional<TimePoint> at;
};

struct HistoryStmt {
  Oid oid;
  std::string attr;
  // Optional `during [a,b]`: clip the reported history to the window.
  std::optional<Interval> during;
  SourceSpan during_start_span;
  SourceSpan during_end_span;
};

struct TickStmt {
  int64_t steps = 1;
};

struct AdvanceStmt {
  TimePoint to = 0;
};

struct CheckStmt {};

// WHEN <expr>: temporal selection — the instants at which a closed (no
// binder) boolean condition over specific objects held, reported as a
// coalesced interval set. The temporal analog of TQuel's valid clause;
// e.g. `when i1.salary > 50000 and i2 in i3.participants`.
struct WhenStmt {
  ExprPtr condition;
  // Optional `during [a,b]`: intersect the answer with the window.
  std::optional<Interval> during;
  SourceSpan during_start_span;
  SourceSpan during_end_span;
};

struct ShowStmt {
  enum class What { kClass, kObject, kClasses, kNow };
  What what = What::kNow;
  std::string name;  // kClass
  Oid oid;           // kObject
};

struct Statement {
  enum class Kind {
    kDefineClass,
    kDropClass,
    kCreateIndex,
    kDropIndex,
    kCreate,
    kUpdate,
    kMigrate,
    kDelete,
    kSelect,
    kSnapshot,
    kHistory,
    kTick,
    kAdvance,
    kCheck,
    kWhen,
    kShow,
    kExplain,
  };
  Kind kind = Kind::kCheck;
  // Byte offset of the statement's first token in the parsed input (for
  // script-level diagnostics; offsets are absolute within the script).
  size_t position = 0;

  // Exactly the member matching `kind` is populated (kept flat rather than
  // a variant for readable accessors).
  std::optional<DefineClassStmt> define_class;
  std::optional<DropClassStmt> drop_class;
  std::optional<CreateIndexStmt> create_index;
  std::optional<DropIndexStmt> drop_index;
  std::optional<CreateStmt> create;
  std::optional<UpdateStmt> update;
  std::optional<MigrateStmt> migrate;
  std::optional<DeleteStmt> del;
  std::optional<SelectStmt> select;
  std::optional<SnapshotStmt> snapshot;
  std::optional<HistoryStmt> history;
  std::optional<TickStmt> tick;
  std::optional<AdvanceStmt> advance;
  std::optional<WhenStmt> when;
  std::optional<ShowStmt> show;
  // kExplain: the statement being explained (`explain <stmt>` prints its
  // lowered ExecProgram, or the reason it falls back to the tree-walker).
  std::unique_ptr<Statement> explain_inner;
};

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_AST_H_
