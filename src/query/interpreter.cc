#include "query/interpreter.h"

#include "analysis/query_analyzer.h"
#include "analysis/schema_analyzer.h"
#include "core/db/consistency.h"
#include "core/values/temporal_function.h"
#include "query/evaluator.h"
#include "query/lower.h"
#include "query/parser.h"
#include "query/type_checker.h"

namespace tchimera {
namespace {

// Evaluates a constant (binder-free) expression, e.g. a CREATE initializer
// or an UPDATE right-hand side.
Result<Value> EvalConst(const Expr& e, const Database& db) {
  // Type checking with an empty environment also rejects stray variables.
  TCH_RETURN_IF_ERROR(
      TypeCheckExpr(const_cast<Expr*>(&e), db, TypeEnv{}).status());
  return EvaluateExpr(e, db, ValueEnv{}, db.now());
}

}  // namespace

std::string FormatSelectRows(const std::vector<SelectRow>& rows) {
  std::string out;
  for (const SelectRow& row : rows) {
    if (!out.empty()) out += "\n";
    if (row.columns.empty()) {
      out += row.oid.ToString();
    } else {
      for (size_t i = 0; i < row.columns.size(); ++i) {
        if (i > 0) out += " | ";
        out += row.columns[i].ToString();
      }
    }
  }
  if (out.empty()) return "(no results)";
  return out;
}

Result<std::string> Interpreter::Execute(std::string_view statement) {
  TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  return ExecuteStatement(&stmt);
}

Result<std::string> Interpreter::ExecuteScript(std::string_view script) {
  TCH_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(script));
  std::string out;
  for (Statement& stmt : stmts) {
    TCH_ASSIGN_OR_RETURN(std::string line, ExecuteStatement(&stmt));
    if (!out.empty()) out += "\n";
    out += line;
  }
  return out;
}

Result<std::string> Interpreter::ExecuteStatement(Statement* stmt) {
  if (lint_ != nullptr) {
    switch (stmt->kind) {
      case Statement::Kind::kDefineClass:
        AnalyzeClassSpec(stmt->define_class->spec, stmt->position, db_,
                         lint_);
        break;
      case Statement::Kind::kSelect:
        AnalyzeSelect(&*stmt->select, *db_, lint_);
        break;
      case Statement::Kind::kWhen:
        AnalyzeWhen(&*stmt->when, *db_, lint_);
        break;
      case Statement::Kind::kUpdate:
        AnalyzeUpdate(*stmt->update, stmt->position, *db_, lint_);
        break;
      case Statement::Kind::kCreateIndex:
        AnalyzeCreateIndex(*stmt->create_index, stmt->position, *db_,
                           lint_);
        break;
      case Statement::Kind::kDropIndex:
        AnalyzeDropIndex(*stmt->drop_index, stmt->position, *db_, lint_);
        break;
      case Statement::Kind::kSnapshot:
        AnalyzeSnapshot(*stmt->snapshot, stmt->position, *db_, lint_);
        break;
      case Statement::Kind::kHistory:
        AnalyzeHistory(*stmt->history, stmt->position, *db_, lint_);
        break;
      default:
        break;
    }
  }
  switch (stmt->kind) {
    case Statement::Kind::kDefineClass: {
      TCH_RETURN_IF_ERROR(db_->DefineClass(stmt->define_class->spec));
      return "class " + stmt->define_class->spec.name + " defined";
    }
    case Statement::Kind::kDropClass: {
      TCH_RETURN_IF_ERROR(db_->DropClass(stmt->drop_class->name));
      return "class " + stmt->drop_class->name + " dropped";
    }
    case Statement::Kind::kCreateIndex: {
      CreateIndexStmt& ci = *stmt->create_index;
      IndexDef def;
      def.name = ci.name;
      def.kind = ci.lifespan ? IndexKind::kLifespan : IndexKind::kValue;
      def.class_name = ci.class_name;
      def.attr = ci.attr;
      TCH_RETURN_IF_ERROR(db_->CreateIndex(def));
      return "index " + ci.name + " created";
    }
    case Statement::Kind::kDropIndex: {
      TCH_RETURN_IF_ERROR(db_->DropIndex(stmt->drop_index->name));
      return "index " + stmt->drop_index->name + " dropped";
    }
    case Statement::Kind::kCreate: {
      CreateStmt& c = *stmt->create;
      Database::FieldInits inits;
      for (auto& [name, expr] : c.inits) {
        TCH_ASSIGN_OR_RETURN(Value v, EvalConst(*expr, *db_));
        inits.emplace_back(name, std::move(v));
      }
      TimePoint start = c.at.has_value()
                            ? ResolveInstant(*c.at, db_->now())
                            : db_->now();
      TCH_ASSIGN_OR_RETURN(
          Oid oid, db_->CreateObjectAt(c.class_name, start,
                                       std::move(inits)));
      return oid.ToString();
    }
    case Statement::Kind::kUpdate: {
      UpdateStmt& u = *stmt->update;
      TCH_ASSIGN_OR_RETURN(Value v, EvalConst(*u.value, *db_));
      if (u.during.has_value()) {
        TCH_RETURN_IF_ERROR(
            db_->UpdateAttributeAt(u.oid, u.attr, *u.during, std::move(v)));
      } else {
        TCH_RETURN_IF_ERROR(db_->UpdateAttribute(u.oid, u.attr,
                                                 std::move(v)));
      }
      return std::string("ok");
    }
    case Statement::Kind::kMigrate: {
      MigrateStmt& m = *stmt->migrate;
      Database::FieldInits sets;
      for (auto& [name, expr] : m.sets) {
        TCH_ASSIGN_OR_RETURN(Value v, EvalConst(*expr, *db_));
        sets.emplace_back(name, std::move(v));
      }
      TCH_RETURN_IF_ERROR(db_->Migrate(m.oid, m.to_class, std::move(sets)));
      return std::string("ok");
    }
    case Statement::Kind::kDelete: {
      TCH_RETURN_IF_ERROR(db_->DeleteObject(stmt->del->oid));
      return std::string("ok");
    }
    case Statement::Kind::kSelect: {
      SelectStmt& s = *stmt->select;
      TCH_RETURN_IF_ERROR(TypeCheckSelect(&s, *db_).status());
      TCH_ASSIGN_OR_RETURN(std::vector<SelectRow> rows,
                           EvaluateSelect(s, *db_));
      return FormatSelectRows(rows);
    }
    case Statement::Kind::kSnapshot: {
      TimePoint t = stmt->snapshot->at.value_or(db_->now());
      TCH_ASSIGN_OR_RETURN(Value v, db_->SnapshotOf(stmt->snapshot->oid, t));
      return v.ToString();
    }
    case Statement::Kind::kHistory: {
      TCH_ASSIGN_OR_RETURN(const Object* obj,
                           db_->FindObject(stmt->history->oid));
      const Value* v = obj->Attribute(stmt->history->attr);
      if (v == nullptr) {
        return Status::NotFound("object " + stmt->history->oid.ToString() +
                                " has no attribute '" + stmt->history->attr +
                                "'");
      }
      if (stmt->history->during.has_value() &&
          v->kind() == ValueKind::kTemporal) {
        // Clip the reported function to the window: keep each segment's
        // intersection with `during [a,b]`. (Non-temporal attributes are
        // constant functions over the lifespan; the window does not
        // change what there is to report.)
        const Interval window = stmt->history->during->Resolve(db_->now());
        std::vector<TemporalFunction::Segment> clipped;
        for (const TemporalFunction::Segment& seg :
             v->AsTemporal().segments()) {
          Interval cut = seg.interval.Intersect(window, db_->now());
          if (!cut.empty()) {
            clipped.push_back(TemporalFunction::Segment{cut, seg.value});
          }
        }
        TCH_ASSIGN_OR_RETURN(TemporalFunction clipped_fn,
                             TemporalFunction::Make(std::move(clipped)));
        return Value::Temporal(std::move(clipped_fn)).ToString();
      }
      return v->ToString();
    }
    case Statement::Kind::kTick: {
      db_->Tick(stmt->tick->steps);
      return "now = " + InstantToString(db_->now());
    }
    case Statement::Kind::kAdvance: {
      TCH_RETURN_IF_ERROR(db_->AdvanceTo(stmt->advance->to));
      return "now = " + InstantToString(db_->now());
    }
    case Statement::Kind::kWhen: {
      WhenStmt& w = *stmt->when;
      TCH_ASSIGN_OR_RETURN(const Type* t,
                           TypeCheckExpr(w.condition.get(), *db_,
                                         TypeEnv{}));
      if (t->kind() != TypeKind::kBool) {
        return Status::TypeError("WHEN condition must be bool, got " +
                                 t->ToString());
      }
      // Temporal selection restricted to the window: evaluate only the
      // pieces inside `during [a,b]` (resolved against the clock), then
      // intersect the answer with it. Passing the window down also means
      // a data-dependent error outside it never fires — matching the
      // compiled path, which clips its boundary set the same way.
      std::optional<Interval> window;
      if (w.during.has_value()) window = w.during->Resolve(db_->now());
      TCH_ASSIGN_OR_RETURN(
          IntervalSet held,
          EvaluateWhen(*w.condition, *db_,
                       window.has_value() ? &*window : nullptr));
      if (window.has_value()) {
        held = held.Intersect(IntervalSet::Of(*window));
      }
      return held.ToString();
    }
    case Statement::Kind::kCheck: {
      Status s = CheckDatabaseConsistency(*db_);
      if (!s.ok()) return s;
      return std::string("consistent");
    }
    case Statement::Kind::kExplain: {
      // `explain <stmt>` lowers the inner statement and prints the
      // compiled program, or the reason it falls back to tree-walking.
      // Type errors in the inner statement surface unchanged.
      TCH_ASSIGN_OR_RETURN(
          LowerOutcome outcome,
          LowerStatement(stmt->explain_inner.get(), *db_));
      if (!outcome.compiled()) {
        return "fallback: " + outcome.fallback_reason;
      }
      return outcome.plan->ToString();
    }
    case Statement::Kind::kShow: {
      ShowStmt& sh = *stmt->show;
      switch (sh.what) {
        case ShowStmt::What::kNow:
          return "now = " + InstantToString(db_->now());
        case ShowStmt::What::kClasses: {
          std::string out;
          for (const std::string& name : db_->ClassNames()) {
            if (!out.empty()) out += "\n";
            out += name;
          }
          return out.empty() ? std::string("(no classes)") : out;
        }
        case ShowStmt::What::kClass: {
          TCH_ASSIGN_OR_RETURN(const ClassDef* cls,
                               db_->FindClass(sh.name));
          std::string out = "class " + cls->name() + " (" +
                            ClassKindName(cls->kind()) + ", lifespan " +
                            cls->lifespan().ToString() + ")";
          for (const AttributeDef& a : cls->attributes()) {
            out += "\n  " + a.name + ": " + a.type->ToString();
          }
          for (const MethodDef& m : cls->methods()) {
            out += "\n  method " + m.ToString();
          }
          out += "\n  history: " + cls->History().ToString();
          return out;
        }
        case ShowStmt::What::kObject: {
          TCH_ASSIGN_OR_RETURN(const Object* obj, db_->FindObject(sh.oid));
          std::string out = obj->id().ToString() + " (lifespan " +
                            obj->lifespan().ToString() + ", class-history " +
                            obj->NormalizedClassHistory(db_->now())
                                .ToString() +
                            ")";
          out += "\n  v = " + obj->AttributeRecord().ToString();
          return out;
        }
      }
      return Status::Internal("unhandled SHOW");
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace tchimera
