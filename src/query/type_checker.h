// Static type checking of TQL expressions, built directly on the typing
// machinery of Section 3.2 (the paper: "such typing rules are also the
// basis for type checking the expressions of the T_Chimera language").
//
// Key rules:
//   - the FROM binder has the object type of its class;
//   - base.attr where base : c requires attr in class c; if the attribute
//     domain is temporal(T) the access *coerces* to T (the snapshot
//     coercion of Section 6.1) — with `@ t` the projection instant is
//     explicit, otherwise it is the query's evaluation instant;
//   - `@ t` on a non-temporal attribute is a type error for t != now
//     (static attributes have no recorded past);
//   - comparisons require the operand types to be related by <=_T (either
//     direction) or both numeric of the same kind;
//   - `e in s` requires s : set-of(T) or list-of(T) with the type of e
//     related to T;
//   - set/list constructors use the least upper bound of the element
//     types, exactly like the value typing rules of Definition 3.6.
#ifndef TCHIMERA_QUERY_TYPE_CHECKER_H_
#define TCHIMERA_QUERY_TYPE_CHECKER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

// The static environment of one query: binder name -> class name.
using TypeEnv = std::map<std::string, std::string, std::less<>>;

// Checks `expr` against the database schema and environment, annotating
// every node's `inferred` type. Returns the expression's type.
Result<const Type*> TypeCheckExpr(Expr* expr, const Database& db,
                                  const TypeEnv& env);

// Checks a whole SELECT statement: binder, projections and WHERE (which
// must be bool). Returns the projection types.
Result<std::vector<const Type*>> TypeCheckSelect(SelectStmt* stmt,
                                                 const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_QUERY_TYPE_CHECKER_H_
