#include "query/vm.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

bool Truthy(const Value& v) { return !v.is_null() && v.AsBool(); }

// One virtual register: a column of per-row values, or a pointer to a
// single value shared by every row (kLoadConst — constants are
// row-independent, so a batch never materializes or even copies them).
// Column storage lives in the Vm's shared arena (one allocation for all
// registers), not per Col.
struct Col {
  bool uniform = false;
  const Value* uval = nullptr;  // into ExecProgram::constants
  Value* vals = nullptr;        // batch_cap slots in the column arena
};

class Vm {
 public:
  // `batch_cap` is the largest batch this run will see (<= kVmBatchSize):
  // small queries should not pay for columns they never fill.
  Vm(const ExecProgram& prog, const Database& db, size_t batch_cap)
      : prog_(prog),
        db_(db),
        now_(db.now()),
        batch_cap_(batch_cap),
        cols_(prog.num_regs),
        arena_(prog.num_regs * batch_cap) {
    for (size_t r = 0; r < cols_.size(); ++r) {
      cols_[r].vals = arena_.data() + r * batch_cap;
    }
    instants_.resize(batch_cap);
    // Sized once so the pool never grows mid-fragment: `cur` references
    // a pool entry while a mask instruction fills the next one, and a
    // reallocation would invalidate it.
    size_t mask_ops = 0;
    for (const Instr& in : prog.code) {
      if (in.op == OpCode::kMaskIfTrue || in.op == OpCode::kMaskIfNotTrue ||
          in.op == OpCode::kMaskIfNotNull) {
        ++mask_ops;
      }
    }
    mask_pool_.resize(mask_ops);
  }

  // Lazily sized: only RunSelect uses the binder column, so WHEN
  // programs never pay for it.
  std::vector<Value>& self() {
    if (self_.size() < batch_cap_) self_.resize(batch_cap_);
    return self_;
  }
  std::vector<TimePoint>& instants() { return instants_; }

  const Value& Get(uint16_t r, uint32_t row) const {
    const Col& c = cols_[r];
    return c.uniform ? *c.uval : c.vals[row];
  }

  // Executes a fragment over the rows in `sel` (ascending). Afterwards
  // Get(frag.result, row) holds the per-row value for every row in sel.
  Status RunFragment(const Fragment& frag, const std::vector<uint32_t>& sel) {
    mask_depth_ = 0;
    for (uint32_t pc = frag.begin; pc < frag.end; ++pc) {
      const Instr& in = prog_.code[pc];
      const std::vector<uint32_t>& cur =
          mask_depth_ == 0 ? sel : mask_pool_[mask_depth_ - 1];
      TCH_RETURN_IF_ERROR(Step(in, cur));
    }
    return Status::OK();
  }

 private:
  Value* Dst(const Instr& in) {
    Col& c = cols_[in.dst];
    c.uniform = false;
    return c.vals;
  }

  Status Step(const Instr& in, const std::vector<uint32_t>& cur) {
    switch (in.op) {
      case OpCode::kLoadConst: {
        Col& c = cols_[in.dst];
        c.uniform = true;
        c.uval = &prog_.constants[in.idx];
        return Status::OK();
      }
      case OpCode::kLoadSelf: {
        Value* out = Dst(in);
        for (uint32_t row : cur) out[row] = self_[row];
        return Status::OK();
      }
      case OpCode::kLoadAttr:
        return StepLoadAttr(in, cur);
      case OpCode::kNot: {
        Value* out = Dst(in);
        for (uint32_t row : cur) out[row] = ApplyNot(Get(in.a, row));
        return Status::OK();
      }
      case OpCode::kNegate: {
        Value* out = Dst(in);
        for (uint32_t row : cur) out[row] = ApplyNegate(Get(in.a, row));
        return Status::OK();
      }
      case OpCode::kBinary: {
        Value* out = Dst(in);
        // Operand columns resolved once per batch: the compiler cannot
        // hoist the cols_ indexing itself (stores through `out` may
        // alias the Col metadata as far as it can prove).
        const Value* const au = cols_[in.a].uniform ? cols_[in.a].uval
                                                    : nullptr;
        const Value* const av = cols_[in.a].vals;
        const Value* const bu = cols_[in.b].uniform ? cols_[in.b].uval
                                                    : nullptr;
        const Value* const bv = cols_[in.b].vals;
        for (uint32_t row : cur) {
          const Value& l = au != nullptr ? *au : av[row];
          const Value& r = bu != nullptr ? *bu : bv[row];
          // Integer/integer is the dominant predicate shape; inline it
          // to skip the kernel's dispatch and Result wrapping per row.
          // Results are identical to ApplyBinaryOp: structural equality
          // on two integers is numeric, Compare on two integers is
          // numeric, and the kernel's arithmetic is the same plain
          // int64 arithmetic. Division stays on the kernel (zero check).
          if (l.kind() == ValueKind::kInteger &&
              r.kind() == ValueKind::kInteger) {
            const int64_t a = l.AsInteger(), b = r.AsInteger();
            switch (in.bop) {
              case BinaryOp::kEq: out[row] = Value::Bool(a == b); continue;
              case BinaryOp::kNeq: out[row] = Value::Bool(a != b); continue;
              case BinaryOp::kLt: out[row] = Value::Bool(a < b); continue;
              case BinaryOp::kLe: out[row] = Value::Bool(a <= b); continue;
              case BinaryOp::kGt: out[row] = Value::Bool(a > b); continue;
              case BinaryOp::kGe: out[row] = Value::Bool(a >= b); continue;
              case BinaryOp::kAdd:
                out[row] = Value::Integer(a + b);
                continue;
              case BinaryOp::kSub:
                out[row] = Value::Integer(a - b);
                continue;
              case BinaryOp::kMul:
                out[row] = Value::Integer(a * b);
                continue;
              default:
                break;
            }
          }
          TCH_ASSIGN_OR_RETURN(out[row], ApplyBinaryOp(in.bop, l, r));
        }
        return Status::OK();
      }
      case OpCode::kCall: {
        Value* out = Dst(in);
        std::vector<Value> argv(in.args.size());
        for (uint32_t row : cur) {
          for (size_t k = 0; k < in.args.size(); ++k) {
            argv[k] = Get(in.args[k], row);
          }
          TCH_ASSIGN_OR_RETURN(
              out[row], ApplyCall(in.call, argv, db_, instants_[row]));
        }
        return Status::OK();
      }
      case OpCode::kMakeSet:
      case OpCode::kMakeList: {
        Value* out = Dst(in);
        for (uint32_t row : cur) {
          std::vector<Value> elems;
          elems.reserve(in.args.size());
          for (uint16_t r : in.args) elems.push_back(Get(r, row));
          out[row] = in.op == OpCode::kMakeSet ? Value::Set(std::move(elems))
                                               : Value::List(std::move(elems));
        }
        return Status::OK();
      }
      case OpCode::kMakeRec: {
        Value* out = Dst(in);
        for (uint32_t row : cur) {
          std::vector<Value::Field> fields;
          fields.reserve(in.args.size());
          for (size_t k = 0; k < in.args.size(); ++k) {
            fields.emplace_back(in.names[k], Get(in.args[k], row));
          }
          TCH_ASSIGN_OR_RETURN(out[row], Value::Record(std::move(fields)));
        }
        return Status::OK();
      }
      case OpCode::kMaskIfTrue:
      case OpCode::kMaskIfNotTrue:
      case OpCode::kMaskIfNotNull: {
        // Selection vectors are pooled by depth and reused across
        // batches and fragments — no allocation on the steady path.
        std::vector<uint32_t>& next = mask_pool_[mask_depth_];
        next.clear();
        next.reserve(cur.size());
        for (uint32_t row : cur) {
          const Value& v = Get(in.a, row);
          bool keep = in.op == OpCode::kMaskIfTrue     ? Truthy(v)
                      : in.op == OpCode::kMaskIfNotTrue ? !Truthy(v)
                                                        : !v.is_null();
          if (keep) next.push_back(row);
        }
        ++mask_depth_;
        return Status::OK();
      }
      case OpCode::kPopMask:
        --mask_depth_;
        return Status::OK();
      case OpCode::kAndMerge: {
        Value* out = Dst(in);
        const Value* const au = cols_[in.a].uniform ? cols_[in.a].uval
                                                    : nullptr;
        const Value* const av = cols_[in.a].vals;
        const Value* const bu = cols_[in.b].uniform ? cols_[in.b].uval
                                                    : nullptr;
        const Value* const bv = cols_[in.b].vals;
        for (uint32_t row : cur) {
          // Reads the rhs only where the lhs was truthy — exactly the
          // rows the mask window evaluated it on.
          out[row] =
              Value::Bool(Truthy(au != nullptr ? *au : av[row]) &&
                          Truthy(bu != nullptr ? *bu : bv[row]));
        }
        return Status::OK();
      }
      case OpCode::kOrMerge: {
        Value* out = Dst(in);
        const Value* const au = cols_[in.a].uniform ? cols_[in.a].uval
                                                    : nullptr;
        const Value* const av = cols_[in.a].vals;
        const Value* const bu = cols_[in.b].uniform ? cols_[in.b].uval
                                                    : nullptr;
        const Value* const bv = cols_[in.b].vals;
        for (uint32_t row : cur) {
          out[row] =
              Value::Bool(Truthy(au != nullptr ? *au : av[row]) ||
                          Truthy(bu != nullptr ? *bu : bv[row]));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unhandled opcode");
  }

  Status StepLoadAttr(const Instr& in, const std::vector<uint32_t>& cur) {
    const Col& base = cols_[in.a];
    Value* out = Dst(in);
    if (base.uniform) {
      // Constant base object (a literal oid, the WHEN shape): resolve the
      // object and attribute ONCE for the batch, then walk the temporal
      // segments linearly alongside the ascending row instants — a
      // merge-walk instead of a binary search per row.
      if (base.uval->is_null()) {
        for (uint32_t row : cur) out[row] = Value::Null();
        return Status::OK();
      }
      const Object* obj = db_.GetObject(base.uval->AsOid());
      if (obj == nullptr) {
        return Status::NotFound("dangling reference " +
                                base.uval->AsOid().ToString());
      }
      const Value* stored = obj->Attribute(in.attr);
      if (stored == nullptr) {
        for (uint32_t row : cur) out[row] = Value::Null();
        return Status::OK();
      }
      if (stored->kind() != ValueKind::kTemporal) {
        for (uint32_t row : cur) out[row] = *stored;
        return Status::OK();
      }
      if (in.at.has_value()) {
        // Explicit `@ t`: one projection serves the whole batch.
        Value projected = ProjectStoredAttribute(
            *stored, ResolveInstant(*in.at, now_));
        for (uint32_t row : cur) out[row] = projected;
        return Status::OK();
      }
      // Segments are sorted, disjoint, with kNow as +infinity — and the
      // row instants are ascending (boundaries, or one fixed instant), so
      // the segment cursor only ever moves forward. Seed it at the first
      // instant by binary search: a windowed WHEN evaluates a handful of
      // boundaries deep inside a long history, and walking the cursor
      // there linearly would cost O(history) per batch.
      const std::vector<TemporalFunction::Segment>& segs =
          stored->AsTemporal().segments();
      size_t si = 0;
      if (!cur.empty()) {
        const TimePoint t0 = instants_[cur.front()];
        si = static_cast<size_t>(
            std::lower_bound(segs.begin(), segs.end(), t0,
                             [](const TemporalFunction::Segment& seg,
                                TimePoint t) {
                               return seg.interval.end() < t;
                             }) -
            segs.begin());
      }
      for (uint32_t row : cur) {
        TimePoint t = instants_[row];
        while (si < segs.size() && segs[si].interval.end() < t) ++si;
        if (si < segs.size() && segs[si].interval.start() <= t) {
          out[row] = segs[si].value;
        } else {
          out[row] = Value::Null();
        }
      }
      return Status::OK();
    }
    const bool fixed_at = in.at.has_value();
    const TimePoint at_t = fixed_at ? ResolveInstant(*in.at, now_) : 0;
    for (uint32_t row : cur) {
      const Value& b = base.vals[row];
      if (b.is_null()) {
        out[row] = Value::Null();
        continue;
      }
      const Object* obj = db_.GetObject(b.AsOid());
      if (obj == nullptr) {
        return Status::NotFound("dangling reference " + b.AsOid().ToString());
      }
      const Value* stored = obj->Attribute(in.attr);
      if (stored == nullptr) {
        out[row] = Value::Null();
        continue;
      }
      out[row] = ProjectStoredAttribute(*stored,
                                        fixed_at ? at_t : instants_[row]);
    }
    return Status::OK();
  }

  const ExecProgram& prog_;
  const Database& db_;
  const TimePoint now_;
  const size_t batch_cap_;
  std::vector<Col> cols_;
  std::vector<Value> arena_;         // column storage, num_regs x batch_cap
  std::vector<Value> self_;          // select: the row's binder oid (lazy)
  std::vector<TimePoint> instants_;  // per-row evaluation instant (resolved)
  // Selection-vector stack: mask_pool_[0..mask_depth_) are the open mask
  // windows; entries are reused, never reallocated mid-fragment.
  std::vector<std::vector<uint32_t>> mask_pool_;
  size_t mask_depth_ = 0;
};

}  // namespace

Result<std::vector<SelectRow>> RunSelect(const ExecProgram& prog,
                                         const Database& db) {
  const TimePoint now = db.now();
  const TimePoint at =
      prog.at.has_value() ? ResolveInstant(*prog.at, now) : now;
  std::vector<Oid> oids;
  if (prog.access.has_value()) {
    // Index access path: probe the value index for the oids whose
    // indexed attribute satisfies the planned comparison at `at`, then
    // keep only extent members. The probe covers every object with the
    // attribute regardless of class, and an extent is a canonically
    // sorted oid set — so the filtered, ascending probe output visits
    // exactly the extent rows a scan would keep after its first
    // conjunct, in the same order. The full WHERE still runs below:
    // identical rows, projections, and error behavior by construction.
    const Instr& probe = *prog.access;
    std::vector<Oid> cand =
        db.IndexProbe(probe.names[0], ProbeOpOf(probe.bop),
                      prog.constants[probe.idx], at);
    TCH_ASSIGN_OR_RETURN(const ClassDef* cls, db.FindClass(prog.class_name));
    oids.reserve(cand.size());
    for (Oid oid : cand) {
      if (cls->InExtentAt(oid, at)) oids.push_back(oid);
    }
  } else {
    oids = db.Pi(prog.class_name, at);
  }
  std::vector<SelectRow> out;
  Vm vm(prog, db, std::min(kVmBatchSize, oids.size()));
  std::vector<uint32_t> sel;
  for (size_t batch = 0; batch < oids.size(); batch += kVmBatchSize) {
    const size_t n = std::min(kVmBatchSize, oids.size() - batch);
    for (size_t i = 0; i < n; ++i) {
      vm.self()[i] = Value::OfOid(oids[batch + i]);
      vm.instants()[i] = at;
    }
    sel.resize(n);
    std::iota(sel.begin(), sel.end(), 0);
    if (prog.where.has_value()) {
      TCH_RETURN_IF_ERROR(vm.RunFragment(*prog.where, sel));
      // Compact to the surviving rows: a null predicate counts as false,
      // same as the tree-walker.
      size_t kept = 0;
      for (uint32_t row : sel) {
        if (Truthy(vm.Get(prog.where->result, row))) sel[kept++] = row;
      }
      sel.resize(kept);
    }
    for (const Fragment& frag : prog.projections) {
      TCH_RETURN_IF_ERROR(vm.RunFragment(frag, sel));
    }
    for (uint32_t row : sel) {
      SelectRow r;
      r.oid = oids[batch + row];
      r.columns.reserve(prog.projections.size());
      for (const Fragment& frag : prog.projections) {
        r.columns.push_back(vm.Get(frag.result, row));
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<IntervalSet> RunWhen(const ExecProgram& prog, const Database& db) {
  const TimePoint now = db.now();
  // A `during` window restricts which pieces are evaluated at all (the
  // tree-walker clips identically — see CollectWhenBoundaries); the
  // final intersection below still trims the last piece, which runs to
  // `now` regardless.
  std::optional<Interval> window;
  if (prog.during.has_value()) {
    window = prog.during_normalized ? *prog.during
                                    : prog.during->Resolve(now);
  }
  const std::vector<TimePoint> boundaries = CollectWhenBoundaries(
      prog.when_reqs, db, window.has_value() ? &*window : nullptr);
  IntervalSet held;
  Vm vm(prog, db, std::min(kVmBatchSize, boundaries.size()));
  std::vector<uint32_t> sel;
  for (size_t batch = 0; batch < boundaries.size(); batch += kVmBatchSize) {
    const size_t n = std::min(kVmBatchSize, boundaries.size() - batch);
    for (size_t i = 0; i < n; ++i) vm.instants()[i] = boundaries[batch + i];
    sel.resize(n);
    std::iota(sel.begin(), sel.end(), 0);
    TCH_RETURN_IF_ERROR(vm.RunFragment(prog.condition, sel));
    for (size_t i = 0; i < n; ++i) {
      if (!Truthy(vm.Get(prog.condition.result, static_cast<uint32_t>(i)))) {
        continue;
      }
      const size_t g = batch + i;  // global boundary index
      const TimePoint from = boundaries[g];
      const TimePoint to =
          g + 1 < boundaries.size() ? boundaries[g + 1] - 1 : now;
      held.Add(Interval(from, to));
    }
  }
  if (window.has_value()) {
    held = held.Intersect(IntervalSet::Of(*window));
  }
  return held;
}

}  // namespace tchimera
