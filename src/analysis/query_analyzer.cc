#include "analysis/query_analyzer.h"

#include <optional>
#include <set>
#include <string>

#include "query/evaluator.h"
#include "query/type_checker.h"

namespace tchimera {
namespace {

// What kind of statement a predicate belongs to, for message wording.
enum class PredicateContext { kSelectWhere, kWhenCondition };

const char* NeverHoldsText(PredicateContext ctx) {
  return ctx == PredicateContext::kSelectWhere
             ? "the query returns no rows"
             : "the condition never holds (empty interval set)";
}

// True if evaluating `v` is instant- and database-independent: no oids
// (their state lives in the database) and no temporal functions.
bool IsPureValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kOid:
    case ValueKind::kTemporal:
      return false;
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const Value& e : v.Elements()) {
        if (!IsPureValue(e)) return false;
      }
      return true;
    case ValueKind::kRecord:
      for (const Value::Field& f : v.Fields()) {
        if (!IsPureValue(f.second)) return false;
      }
      return true;
    default:
      return true;
  }
}

// True if `e` always evaluates to the same value: built from pure
// literals and operators only (no binders, attribute accesses, oids, or
// database-dependent builtins; `size` over a pure collection is allowed).
bool IsPureExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return IsPureValue(e.literal);
    case ExprKind::kNot:
    case ExprKind::kNegate:
      return IsPureExpr(*e.base);
    case ExprKind::kBinary:
      return IsPureExpr(*e.base) && IsPureExpr(*e.rhs);
    case ExprKind::kSetCtor:
    case ExprKind::kListCtor:
      for (const ExprPtr& a : e.args) {
        if (!IsPureExpr(*a)) return false;
      }
      return true;
    case ExprKind::kRecCtor:
      for (const auto& [name, fe] : e.rec_fields) {
        if (!IsPureExpr(*fe)) return false;
      }
      return true;
    case ExprKind::kCall:
      if (e.name != "size") return false;
      for (const ExprPtr& a : e.args) {
        if (!IsPureExpr(*a)) return false;
      }
      return true;
    case ExprKind::kVar:
    case ExprKind::kAttrAccess:
      return false;
  }
  return false;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kIn:
      return true;
    default:
      return false;
  }
}

bool IsNullLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral && e.literal.is_null();
}

bool IsEmptyCollectionCtor(const Expr& e) {
  return (e.kind == ExprKind::kSetCtor || e.kind == ExprKind::kListCtor) &&
         e.args.empty();
}

// A folded boolean constant plus the reason it is constant (for the
// diagnostic message).
struct Folded {
  bool value = false;
  std::string reason;
};

// Tries to decide `e` statically. Handles three families:
//   - comparisons against the null literal (null absorbs: never true),
//   - membership in a statically empty collection,
//   - pure constant expressions, folded by the real evaluator.
std::optional<Folded> FoldBool(const Expr& e, const Database& db) {
  if (e.kind == ExprKind::kBinary && IsComparison(e.op)) {
    if (IsNullLiteral(*e.base) || IsNullLiteral(*e.rhs)) {
      return Folded{false,
                    "a comparison with the null literal is never satisfied "
                    "(null absorbs; use defined(e) to test for null)"};
    }
    if (e.op == BinaryOp::kIn && IsEmptyCollectionCtor(*e.rhs)) {
      return Folded{false, "membership in an empty collection"};
    }
  }
  if (!IsPureExpr(e) || e.inferred == nullptr ||
      e.inferred->kind() != TypeKind::kBool) {
    return std::nullopt;
  }
  // Pure expressions do not touch the database or the clock, so the
  // instant is irrelevant; evaluation errors (e.g. division by zero) make
  // the expression non-constant as far as lint is concerned.
  Result<Value> v = EvaluateExpr(e, db, ValueEnv{}, db.now());
  if (!v.ok()) return std::nullopt;
  if (v->is_null()) {
    return Folded{false, "the constant condition evaluates to null, which "
                         "filters every row"};
  }
  if (v->kind() != ValueKind::kBool) return std::nullopt;
  return Folded{v->AsBool(), "the condition is a constant expression"};
}

// A deletion fix-it for `span`, or no fix-its when the parser recorded
// none (programmatic AST, or the construct may not be removed).
std::vector<FixIt> DeleteSpan(const SourceSpan& span) {
  if (!span.valid()) return {};
  return {FixIt{span.begin, span.length(), ""}};
}

// Swap the two endpoint literals of an inverted window. The replacement
// spells the instants in canonical decimal, which the grammar accepts
// wherever a t-literal is (instant := t<digits> | tnow | <digits>).
std::vector<FixIt> SwapEndpoints(const SourceSpan& start_span,
                                 const SourceSpan& end_span,
                                 const Interval& window) {
  if (!start_span.valid() || !end_span.valid()) return {};
  return {FixIt{start_span.begin, start_span.length(),
                InstantToString(window.end())},
          FixIt{end_span.begin, end_span.length(),
                InstantToString(window.start())}};
}

class QueryLint {
 public:
  QueryLint(const Database& db, DiagnosticEngine* diags)
      : db_(db), diags_(diags) {}

  // --- TC101 ---------------------------------------------------------------

  void CheckUnusedBinders(const SelectStmt& stmt) {
    std::set<std::string> used;
    for (const ExprPtr& p : stmt.projections) CollectVars(*p, &used);
    if (stmt.where != nullptr) CollectVars(*stmt.where, &used);
    for (const SelectBinder& b : stmt.binders) {
      if (used.count(b.var) > 0) continue;
      std::string msg = "binder '" + b.var + "' (over class '" +
                        b.class_name + "') is never used";
      std::string note =
          stmt.binders.size() > 1
              ? "the unused binder still multiplies the cartesian product: "
                "each row is repeated once per member of '" +
                    b.class_name + "'"
              : "did you mean to project or filter on '" + b.var + "'?";
      diags_->Report("TC101", b.position, std::move(msg), std::move(note),
                     DeleteSpan(b.remove_span));
    }
  }

  // --- TC102 / TC103 (attribute projections) -------------------------------

  // `eval_at`: the query's resolved evaluation instant, or nullopt when
  // there is no single one (WHEN quantifies over all instants).
  void CheckProjections(const Expr& e, std::optional<TimePoint> eval_at) {
    if (e.kind == ExprKind::kAttrAccess && e.at.has_value()) {
      CheckOneProjection(e, eval_at);
    }
    if (e.base != nullptr) CheckProjections(*e.base, eval_at);
    if (e.rhs != nullptr) CheckProjections(*e.rhs, eval_at);
    for (const ExprPtr& a : e.args) CheckProjections(*a, eval_at);
    for (const auto& [name, fe] : e.rec_fields) {
      CheckProjections(*fe, eval_at);
    }
  }

  // --- TC104 / TC105 (predicates) ------------------------------------------

  // `remove_span`: the byte range that deletes the whole predicate clause
  // (the `where` keyword through the condition); invalid when the clause
  // is mandatory (WHEN) or the AST was built programmatically.
  void CheckPredicate(const Expr& where, PredicateContext ctx,
                      const SourceSpan& remove_span = SourceSpan{}) {
    if (std::optional<Folded> f = FoldBool(where, db_)) {
      if (f->value) {
        diags_->Report("TC105", where.position,
                       "condition is statically true: " + f->reason,
                       "the filter is redundant and can be removed",
                       DeleteSpan(remove_span));
      } else {
        diags_->Report("TC104", where.position,
                       "condition is statically false: " + f->reason,
                       NeverHoldsText(ctx));
      }
      return;
    }
    DescendPredicate(where, ctx);
  }

 private:
  void CollectVars(const Expr& e, std::set<std::string>* out) {
    if (e.kind == ExprKind::kVar) out->insert(e.name);
    if (e.base != nullptr) CollectVars(*e.base, out);
    if (e.rhs != nullptr) CollectVars(*e.rhs, out);
    for (const ExprPtr& a : e.args) CollectVars(*a, out);
    for (const auto& [name, fe] : e.rec_fields) CollectVars(*fe, out);
  }

  void CheckOneProjection(const Expr& e, std::optional<TimePoint> eval_at) {
    const Type* base_t = e.base != nullptr ? e.base->inferred : nullptr;
    if (base_t == nullptr || base_t->kind() != TypeKind::kObject) return;
    const ClassDef* cls = db_.GetClass(base_t->class_name());
    if (cls == nullptr) return;
    const AttributeDef* attr = cls->FindAttribute(e.name);
    if (attr == nullptr) return;
    TimePoint t = *e.at;
    if (!attr->is_temporal()) {
      // The type checker already restricts a non-temporal attribute to
      // `@ now`; a static attribute has only a current value, so the
      // explicit instant never changes the result.
      diags_->Report("TC103", e.position,
                     "'@' projection on non-temporal attribute '" + e.name +
                         "' is a no-op",
                     "a non-temporal attribute has no recorded history "
                     "(Section 5.2); drop the '@'",
                     DeleteSpan(e.at_span));
      return;
    }
    if (!IsNow(t)) {
      const Interval& lifespan = cls->lifespan();
      bool before = t < lifespan.start();
      bool after = !lifespan.is_ongoing() && t > lifespan.end();
      if (before || after) {
        diags_->Report(
            "TC102", e.position,
            "projection of '" + e.name + "' at instant " +
                InstantToString(t) + " is statically null: class '" +
                cls->name() + "' " +
                (before ? "does not exist until " +
                              InstantToString(lifespan.start())
                        : "was dropped at " +
                              InstantToString(lifespan.end())),
            "attribute histories lie within the member's lifespan, which "
            "lies within the class lifespan (Invariant 5.1 / Section 5.2)");
        return;
      }
    }
    if (eval_at.has_value() &&
        ResolveInstant(t, db_.now()) == *eval_at) {
      diags_->Report(
          "TC103", e.position,
          "'@ " + InstantToString(t) + "' on '" + e.name +
              "' is redundant: it equals the query's evaluation instant",
          "a temporal attribute access without '@' is already coerced to "
          "its value at the evaluation instant (Section 6.1)",
          DeleteSpan(e.at_span));
    }
  }

  void DescendPredicate(const Expr& e, PredicateContext ctx) {
    if (e.kind == ExprKind::kNot) {
      DescendPredicate(*e.base, ctx);
      return;
    }
    if (e.kind != ExprKind::kBinary ||
        (e.op != BinaryOp::kAnd && e.op != BinaryOp::kOr)) {
      return;
    }
    for (const Expr* side : {e.base.get(), e.rhs.get()}) {
      std::optional<Folded> f = FoldBool(*side, db_);
      if (!f.has_value()) {
        DescendPredicate(*side, ctx);
        continue;
      }
      // Deleting one side of `A and B` / `A or B` takes the connective
      // with it: the left operand extends forward to the right one's
      // start, the right operand back from the left one's end. Operand
      // spans include any parentheses, so the remainder stays balanced.
      SourceSpan side_removal;
      if (e.base->span.valid() && e.rhs->span.valid()) {
        side_removal = side == e.base.get()
                           ? SourceSpan{e.base->span.begin, e.rhs->span.begin}
                           : SourceSpan{e.base->span.end, e.rhs->span.end};
      }
      if (e.op == BinaryOp::kAnd) {
        if (f->value) {
          diags_->Report("TC105", side->position,
                         "conjunct is statically true: " + f->reason,
                         "the conjunct is redundant and can be removed",
                         DeleteSpan(side_removal));
        } else {
          diags_->Report("TC104", side->position,
                         "conjunct is statically false: " + f->reason,
                         NeverHoldsText(ctx));
        }
      } else {
        if (f->value) {
          diags_->Report("TC105", side->position,
                         "disjunct is statically true: " + f->reason,
                         "the whole disjunction is trivially true");
        } else {
          diags_->Report("TC105", side->position,
                         "disjunct is statically false: " + f->reason,
                         "the disjunct is redundant and can be removed",
                         DeleteSpan(side_removal));
        }
      }
    }
  }

  const Database& db_;
  DiagnosticEngine* diags_;
};

// TC109: a statically empty (inverted) `during` window on a read
// statement — the query is restricted to no instants at all. Mirrors
// TC106, which covers the same literal on `update`.
void CheckQueryWindow(const std::optional<Interval>& during, size_t position,
                      const char* verb, DiagnosticEngine* diags,
                      const SourceSpan& start_span = SourceSpan{},
                      const SourceSpan& end_span = SourceSpan{}) {
  if (!during.has_value()) return;
  const Interval& window = *during;
  // A symbolic `now` endpoint depends on the clock at execution time;
  // only a fully concrete inverted literal is statically empty.
  if (IsNow(window.start()) || IsNow(window.end())) return;
  if (window.end() >= window.start()) return;
  diags->Report(
      "TC109", position,
      std::string(verb) + " window [" + InstantToString(window.start()) +
          "," + InstantToString(window.end()) +
          "] is statically empty: " + InstantToString(window.end()) +
          " precedes " + InstantToString(window.start()),
      "an interval [a,b] with b < a denotes the null interval "
      "(Section 3.2); the result is unconditionally empty — swap the "
      "endpoints or drop the 'during' clause",
      SwapEndpoints(start_span, end_span, window));
}

}  // namespace

void AnalyzeSelect(SelectStmt* stmt, const Database& db,
                   DiagnosticEngine* diags) {
  if (Result<std::vector<const Type*>> r = TypeCheckSelect(stmt, db);
      !r.ok()) {
    size_t pos = stmt->binders.empty() ? SourceLocation::kNoOffset
                                       : stmt->binders.front().position;
    diags->Report("TC110", pos, r.status().message(),
                  "the statement would be rejected before evaluation "
                  "(Definition 3.6 typing rules)");
    return;
  }
  QueryLint lint(db, diags);
  lint.CheckUnusedBinders(*stmt);
  TimePoint eval_at = stmt->at.has_value()
                          ? ResolveInstant(*stmt->at, db.now())
                          : db.now();
  for (const ExprPtr& p : stmt->projections) {
    lint.CheckProjections(*p, eval_at);
  }
  if (stmt->where != nullptr) {
    lint.CheckProjections(*stmt->where, eval_at);
    lint.CheckPredicate(*stmt->where, PredicateContext::kSelectWhere,
                        stmt->where_span);
  }
}

void AnalyzeUpdate(const UpdateStmt& stmt, size_t position,
                   const Database& db, DiagnosticEngine* diags) {
  (void)db;
  if (!stmt.during.has_value()) return;
  const Interval& window = *stmt.during;
  // A symbolic `now` endpoint depends on the clock at execution time;
  // only a fully concrete inverted literal is statically empty.
  if (IsNow(window.start()) || IsNow(window.end())) return;
  if (window.end() < window.start()) {
    // ToString() renders every empty interval as "[]"; echo the literal
    // endpoints so the finding points at what was written.
    diags->Report(
        "TC106", position,
        "update window [" + InstantToString(window.start()) + "," +
            InstantToString(window.end()) +
            "] is statically empty: " + InstantToString(window.end()) +
            " precedes " + InstantToString(window.start()),
        "an interval [a,b] with b < a denotes the null interval "
        "(Section 3.2); the update asserts a value over no instants — "
        "swap the endpoints or drop the 'during' clause",
        SwapEndpoints(stmt.during_start_span, stmt.during_end_span, window));
  }
}

void AnalyzeCreateIndex(const CreateIndexStmt& stmt, size_t position,
                        const Database& db, DiagnosticEngine* diags) {
  if (db.GetIndexDef(stmt.name) != nullptr) {
    diags->Report("TC112", position,
                  "index '" + stmt.name + "' already exists",
                  "the statement would fail at execution; drop the "
                  "existing index first or pick another name");
    return;
  }
  Result<const ClassDef*> cls = db.FindClass(stmt.class_name);
  if (!cls.ok()) {
    diags->Report("TC112", position,
                  "index '" + stmt.name + "' names unknown class '" +
                      stmt.class_name + "'",
                  "an index is declared against a class so the planner "
                  "can estimate extent cardinality; define the class "
                  "first");
    return;
  }
  if (!stmt.lifespan && (*cls)->FindAttribute(stmt.attr) == nullptr) {
    diags->Report("TC112", position,
                  "class '" + stmt.class_name +
                      "' declares no attribute '" + stmt.attr + "'",
                  "a value index covers one declared attribute; check "
                  "the spelling or use `lifespan` for a timeline index");
  }
}

void AnalyzeDropIndex(const DropIndexStmt& stmt, size_t position,
                      const Database& db, DiagnosticEngine* diags) {
  if (db.GetIndexDef(stmt.name) != nullptr) return;
  diags->Report("TC112", position,
                "index '" + stmt.name + "' does not exist",
                "the statement would fail at execution with NotFound");
}

void AnalyzeSnapshot(const SnapshotStmt& stmt, size_t position,
                     const Database& db, DiagnosticEngine* diags) {
  if (!stmt.at.has_value() || IsNow(*stmt.at)) return;
  const Object* obj = db.GetObject(stmt.oid);
  if (obj == nullptr) return;  // the runtime reports the missing object
  const Interval& lifespan = obj->lifespan();
  if (lifespan.empty()) return;
  TimePoint t = *stmt.at;
  bool before = t < lifespan.start();
  bool after = !lifespan.is_ongoing() && t > lifespan.end();
  if (!before && !after) return;
  diags->Report(
      "TC107", position,
      "snapshot of " + stmt.oid.ToString() + " at instant " +
          InstantToString(t) + " is statically null: the object's "
          "lifespan is " + lifespan.ToString() +
          (before ? " (instant precedes it)" : " (instant follows it)"),
      "an object's state is defined only within its lifespan "
      "(Definition 5.3 / Section 5.2)");
}

void AnalyzeHistory(const HistoryStmt& stmt, size_t position,
                    const Database& db, DiagnosticEngine* diags) {
  CheckQueryWindow(stmt.during, position, "history", diags,
                   stmt.during_start_span, stmt.during_end_span);
  const Object* obj = db.GetObject(stmt.oid);
  if (obj == nullptr) return;  // the runtime reports the missing object
  const Value* v = obj->Attribute(stmt.attr);
  if (v == nullptr) return;  // the runtime reports the missing attribute
  if (v->kind() == ValueKind::kTemporal) return;
  diags->Report(
      "TC108", position,
      "'" + stmt.attr + "' on " + stmt.oid.ToString() +
          " is a non-temporal attribute: there is no history to show",
      "only temporal attributes record per-instant values (Section 5.2); "
      "the statement prints the single current value");
}

void AnalyzeWhen(WhenStmt* stmt, const Database& db,
                 DiagnosticEngine* diags) {
  CheckQueryWindow(stmt->during, stmt->condition->position, "when", diags,
                   stmt->during_start_span, stmt->during_end_span);
  Result<const Type*> r = TypeCheckExpr(stmt->condition.get(), db, TypeEnv{});
  if (!r.ok()) {
    diags->Report("TC110", stmt->condition->position, r.status().message(),
                  "the statement would be rejected before evaluation "
                  "(Definition 3.6 typing rules)");
    return;
  }
  if ((*r)->kind() != TypeKind::kBool) {
    diags->Report("TC110", stmt->condition->position,
                  "WHEN condition must be bool, got " + (*r)->ToString());
    return;
  }
  QueryLint lint(db, diags);
  // WHEN ranges over every instant, so there is no single evaluation
  // instant to compare '@' projections against (no TC103 here).
  lint.CheckProjections(*stmt->condition, std::nullopt);
  lint.CheckPredicate(*stmt->condition, PredicateContext::kWhenCondition);
}

}  // namespace tchimera
