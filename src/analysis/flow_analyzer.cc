#include "analysis/flow_analyzer.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "core/temporal/instant.h"
#include "core/temporal/interval.h"

namespace tchimera {
namespace {

// One assigned valid-time range of a temporal attribute. `ongoing` means
// the assignment extends indefinitely from `start` (a plain update or a
// create init); otherwise exactly [start, end].
struct WriteSpan {
  TimePoint start = 0;
  TimePoint end = 0;
  bool ongoing = false;

  bool Covers(TimePoint t) const {
    return ongoing ? t >= start : (start <= t && t <= end);
  }
};

// Abstract state of one created object.
struct AbstractObject {
  std::string class_name;
  bool deleted = false;
  // Per attribute: the valid-time ranges definitely assigned so far. A
  // non-temporal attribute's presence alone means "initialized".
  std::map<std::string, std::vector<WriteSpan>> writes;
  // Writer statements (byte offsets, in script order) whose footprint
  // includes this object, for TC202.
  std::vector<size_t> writer_positions;
  bool conflict_reported = false;
};

class FlowAnalysis {
 public:
  explicit FlowAnalysis(DiagnosticEngine* diags) : diags_(diags) {}

  void Run(const std::vector<Statement>& stmts) {
    for (const Statement& s : stmts) {
      switch (s.kind) {
        case Statement::Kind::kDefineClass:
          classes_[s.define_class->spec.name] = &s.define_class->spec;
          break;
        case Statement::Kind::kDropClass:
          classes_.erase(s.drop_class->name);
          break;
        case Statement::Kind::kCreate:
          OnCreate(*s.create);
          break;
        case Statement::Kind::kUpdate:
          OnUpdate(*s.update, s.position);
          break;
        case Statement::Kind::kMigrate:
          OnMigrate(*s.migrate, s.position);
          break;
        case Statement::Kind::kDelete:
          OnDelete(*s.del, s.position);
          break;
        case Statement::Kind::kTick:
          clock_ += s.tick->steps;
          break;
        case Statement::Kind::kAdvance:
          clock_ = ResolveInstant(s.advance->to, clock_);
          break;
        case Statement::Kind::kSelect:
          OnSelect(*s.select, s.position);
          break;
        case Statement::Kind::kWhen:
          OnWhen(*s.when, s.position);
          break;
        case Statement::Kind::kHistory:
          OnHistory(*s.history, s.position);
          break;
        default:
          break;  // snapshot / show / check: no flow facts to add or use
      }
    }
  }

 private:
  // --- schema lookups ------------------------------------------------------

  // The effective declaration of `attr` on `cls`, chasing superclasses
  // (declaration order, first hit wins; cycles guarded).
  const AttributeDef* FindAttr(const std::string& cls,
                               const std::string& attr,
                               std::set<std::string>* seen) const {
    if (!seen->insert(cls).second) return nullptr;
    auto it = classes_.find(cls);
    if (it == classes_.end()) return nullptr;
    for (const AttributeDef& a : it->second->attributes) {
      if (a.name == attr) return &a;
    }
    for (const std::string& super : it->second->superclasses) {
      if (const AttributeDef* a = FindAttr(super, attr, seen)) return a;
    }
    return nullptr;
  }

  const AttributeDef* FindAttr(const std::string& cls,
                               const std::string& attr) const {
    std::set<std::string> seen;
    return FindAttr(cls, attr, &seen);
  }

  // --- state transformers --------------------------------------------------

  void OnCreate(const CreateStmt& stmt) {
    AbstractObject obj;
    obj.class_name = stmt.class_name;
    TimePoint start = stmt.at.has_value() ? ResolveInstant(*stmt.at, clock_)
                                          : clock_;
    for (const auto& [name, expr] : stmt.inits) {
      obj.writes[name].push_back(WriteSpan{start, start, /*ongoing=*/true});
    }
    objects_[next_oid_++] = std::move(obj);
  }

  void OnUpdate(const UpdateStmt& stmt, size_t position) {
    RecordWriter(stmt.oid.id, position);
    CheckWindowUnderClock(stmt.during, position, "update");
    AbstractObject* obj = Lookup(stmt.oid.id);
    if (obj == nullptr) return;
    WriteSpan span;
    if (stmt.during.has_value()) {
      Interval w = stmt.during->Resolve(clock_);
      if (w.empty()) return;  // asserts nothing (TC106/TC203 report it)
      span = WriteSpan{w.start(), w.end(), false};
    } else {
      span = WriteSpan{clock_, clock_, /*ongoing=*/true};
    }
    obj->writes[stmt.attr].push_back(span);
  }

  void OnMigrate(const MigrateStmt& stmt, size_t position) {
    RecordWriter(stmt.oid.id, position);
    AbstractObject* obj = Lookup(stmt.oid.id);
    if (obj == nullptr) return;
    obj->class_name = stmt.to_class;
    for (const auto& [name, expr] : stmt.sets) {
      obj->writes[name].push_back(
          WriteSpan{clock_, clock_, /*ongoing=*/true});
    }
  }

  void OnDelete(const DeleteStmt& stmt, size_t position) {
    RecordWriter(stmt.oid.id, position);
    AbstractObject* obj = Lookup(stmt.oid.id);
    if (obj != nullptr) obj->deleted = true;
  }

  // --- TC202: static write footprints --------------------------------------

  void RecordWriter(uint64_t oid, size_t position) {
    AbstractObject* obj = Lookup(oid);
    if (obj == nullptr) return;
    obj->writer_positions.push_back(position);
    if (obj->writer_positions.size() == 2 && !obj->conflict_reported) {
      obj->conflict_reported = true;
      diags_->Report(
          "TC202", position,
          "i" + std::to_string(oid) +
              " is written here and by the earlier statement at offset " +
              std::to_string(obj->writer_positions.front()) +
              "; issued from concurrent transactions, these write "
              "footprints intersect",
          "footprint validation is oid-granular and first-committer-wins: "
          "the later committer would abort and pay a full optimistic "
          "retry — co-locate the writes in one transaction if they must "
          "be concurrent");
    }
  }

  // --- TC203: windows empty under the propagated clock ---------------------

  void CheckWindowUnderClock(const std::optional<Interval>& during,
                             size_t position, const char* verb) {
    if (!during.has_value()) return;
    bool symbolic = IsNow(during->start()) || IsNow(during->end());
    // Fully concrete windows are TC106/TC109 territory; re-reporting them
    // here would double up on every inverted literal.
    if (!symbolic) return;
    Interval resolved = during->Resolve(clock_);
    if (!resolved.empty()) return;
    diags_->Report(
        "TC203", position,
        std::string(verb) + " window [" + InstantToString(during->start()) +
            "," + InstantToString(during->end()) +
            "] is empty under the propagated clock: 'now' resolves to " +
            InstantToString(clock_) + " here",
        "the clock is advanced only by the script's own tick/advance "
        "statements, so this window is statically known to contain no "
        "instants (Section 3.2)");
  }

  // --- TC201: definite initialization --------------------------------------

  AbstractObject* Lookup(uint64_t oid) {
    auto it = objects_.find(oid);
    return it == objects_.end() ? nullptr : &it->second;
  }

  // Reports a read of `attr` through an oid literal when no earlier
  // statement assigned it (at `read_at`, for temporal attributes;
  // `read_at` is nullopt when the read ranges over every instant, where
  // only a never-assigned attribute is statically null).
  void CheckRead(uint64_t oid, const std::string& attr, size_t position,
                 std::optional<TimePoint> read_at) {
    AbstractObject* obj = Lookup(oid);
    if (obj == nullptr || obj->deleted) return;
    const AttributeDef* def = FindAttr(obj->class_name, attr);
    if (def == nullptr) return;  // unknown member: TC110's business
    if (!reported_uninit_.insert({oid, attr}).second) return;
    auto wit = obj->writes.find(attr);
    if (wit == obj->writes.end() || wit->second.empty()) {
      diags_->Report(
          "TC201", position,
          "'" + attr + "' of i" + std::to_string(oid) +
              " is read here but no earlier statement initializes it: "
              "the value is statically null",
          "an attribute not named in 'create' starts null and stays null "
          "until assigned (Definition 5.3: states exist only where "
          "written); initialize it or drop the read");
      return;
    }
    reported_uninit_.erase({oid, attr});  // initialized: allow instant check
    if (!def->is_temporal() || !read_at.has_value()) return;
    TimePoint t = *read_at;
    for (const WriteSpan& w : wit->second) {
      if (w.Covers(t)) return;
    }
    if (!reported_uninit_.insert({oid, attr}).second) return;
    diags_->Report(
        "TC201", position,
        "'" + attr + "' of i" + std::to_string(oid) + " is read at instant " +
            InstantToString(t) +
            ", outside every interval assigned so far: the projection is "
            "statically null",
        "a temporal attribute holds values only over the valid-time "
        "intervals written to it (Definition 5.3); assign the instant or "
        "project inside an assigned window");
  }

  // Walks an expression for reads through oid literals: i1.attr [@ t].
  void CheckExprReads(const Expr& e, size_t position,
                      std::optional<TimePoint> eval_at) {
    if (e.kind == ExprKind::kAttrAccess && e.base != nullptr &&
        e.base->kind == ExprKind::kLiteral &&
        e.base->literal.kind() == ValueKind::kOid) {
      std::optional<TimePoint> t = eval_at;
      if (e.at.has_value()) {
        t = ResolveInstant(*e.at, clock_);
      }
      CheckRead(e.base->literal.AsOid().id, e.name, position, t);
    }
    if (e.base != nullptr) CheckExprReads(*e.base, position, eval_at);
    if (e.rhs != nullptr) CheckExprReads(*e.rhs, position, eval_at);
    for (const ExprPtr& a : e.args) CheckExprReads(*a, position, eval_at);
    for (const auto& [name, fe] : e.rec_fields) {
      CheckExprReads(*fe, position, eval_at);
    }
  }

  void OnSelect(const SelectStmt& stmt, size_t position) {
    TimePoint eval_at = stmt.at.has_value()
                            ? ResolveInstant(*stmt.at, clock_)
                            : clock_;
    for (const ExprPtr& p : stmt.projections) {
      CheckExprReads(*p, position, eval_at);
    }
    if (stmt.where != nullptr) CheckExprReads(*stmt.where, position, eval_at);
  }

  void OnWhen(const WhenStmt& stmt, size_t position) {
    CheckWindowUnderClock(stmt.during, position, "when");
    // WHEN quantifies over every instant: only a never-assigned attribute
    // is null at all of them.
    CheckExprReads(*stmt.condition, position, std::nullopt);
  }

  void OnHistory(const HistoryStmt& stmt, size_t position) {
    CheckWindowUnderClock(stmt.during, position, "history");
    CheckRead(stmt.oid.id, stmt.attr, position, std::nullopt);
  }

  DiagnosticEngine* diags_;
  TimePoint clock_ = 0;
  uint64_t next_oid_ = 1;  // mirrors Database's sequential allocator
  std::map<std::string, const ClassSpec*> classes_;
  std::map<uint64_t, AbstractObject> objects_;
  std::set<std::pair<uint64_t, std::string>> reported_uninit_;
};

}  // namespace

void AnalyzeFlow(const std::vector<Statement>& stmts,
                 DiagnosticEngine* diags) {
  FlowAnalysis(diags).Run(stmts);
}

}  // namespace tchimera
