// The diagnostics engine shared by every static-analysis pass
// (tchimera-lint). A Diagnostic is a finding with a stable code, a
// severity, a source location and a human-readable message; the engine
// collects findings and renders them for humans or as JSON (the format the
// CI tooling consumes).
//
// Code ranges are stable and documented in docs/LINT.md:
//   TC0xx  schema analysis (ISA graph, Rule 6.1, Invariants 5.1-6.2)
//   TC1xx  query (TQL) analysis (dead predicates, no-op coercions, ...)
//   TC2xx  flow-sensitive script analysis (constant propagation,
//          definite initialization, static write-write conflicts)
#ifndef TCHIMERA_ANALYSIS_DIAGNOSTIC_H_
#define TCHIMERA_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tchimera {

enum class Severity {
  kNote,     // stylistic / informational
  kWarning,  // almost certainly unintended, but executable
  kError,    // the schema / query is broken; lint exits non-zero
};

const char* SeverityName(Severity s);

// Where a finding points. Analyzers know only byte offsets (the lexer's
// token positions); the CLI driver resolves offsets to file / line /
// column once it knows the source text. kNoOffset marks a finding with no
// usable position (e.g. a whole-script parse failure).
struct SourceLocation {
  static constexpr size_t kNoOffset = static_cast<size_t>(-1);

  std::string file;           // empty when linting an in-memory string
  size_t offset = kNoOffset;  // byte offset into the source text
  size_t line = 0;            // 1-based; 0 = unresolved
  size_t column = 0;          // 1-based; 0 = unresolved

  bool has_offset() const { return offset != kNoOffset; }
};

// A machine-applicable edit attached to a diagnostic: replace `length`
// bytes starting at `offset` in the source text with `replacement`.
// length == 0 is a pure insertion; an empty replacement is a deletion.
// All fix-its of one diagnostic are applied atomically (analysis/fixer.h);
// offsets refer to the text the diagnostic was produced from.
struct FixIt {
  size_t offset = 0;
  size_t length = 0;
  std::string replacement;

  size_t end() const { return offset + length; }
};

struct Diagnostic {
  std::string code;  // "TC001"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceLocation location;
  std::string note;  // optional elaboration (paper reference, fix hint)
  // Optional machine-applicable repair; empty when the finding has no
  // mechanical fix. Preserved through RenderJson / ParseDiagnosticsJson.
  std::vector<FixIt> fixits;
};

// Static metadata for one diagnostic code: a short kebab-case title and
// the paper definition the check enforces. docs/LINT.md is generated from
// the same table by tests (kept in sync by analysis_test).
struct DiagnosticInfo {
  const char* code;
  const char* title;
  Severity default_severity;
  const char* paper_ref;  // e.g. "Rule 6.1"
};

// All registered codes, ordered by code.
const std::vector<DiagnosticInfo>& AllDiagnosticInfos();
// Metadata for `code`, or nullptr for an unknown code.
const DiagnosticInfo* FindDiagnosticInfo(std::string_view code);

// Collects diagnostics emitted by the analyzers. Not thread-safe; one
// engine per lint run. Concurrent callers get isolation structurally,
// not with locks: every query Session owns a private DiagnosticEngine
// (query/session.h), and the lint CLI builds one per pass — no engine is
// ever shared across threads, so the class stays lock-free by design.
class DiagnosticEngine {
 public:
  // Reports a registered code (severity taken from the registry).
  void Report(std::string_view code, size_t offset, std::string message,
              std::string note = "", std::vector<FixIt> fixits = {});
  // Full control (used for driver-level findings such as parse errors).
  void Add(Diagnostic d);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t CountAtLeast(Severity s) const;
  size_t error_count() const { return CountAtLeast(Severity::kError); }
  bool has_errors() const { return error_count() > 0; }
  void clear() { diagnostics_.clear(); }

  // Stamps every collected diagnostic with `file` and resolves offsets to
  // 1-based line / column positions within `source`.
  void ResolveLocations(std::string_view file, std::string_view source);

  // Stable sort by (file, line, column, code); unresolved locations fall
  // back to the byte offset, which orders identically since line/column
  // are derived from it monotonically. Diagnostics with no position sort
  // last within their file.
  void SortByLocation();

 private:
  std::vector<Diagnostic> diagnostics_;
};

// "file:3:7: warning: message [TC101]" followed by an indented note line
// when present; one block per diagnostic.
std::string RenderHuman(const std::vector<Diagnostic>& diagnostics);

// A stable machine-readable rendering:
//   {"diagnostics":[{"code":...,"severity":...,...}],"errors":N,"warnings":N}
std::string RenderJson(const std::vector<Diagnostic>& diagnostics);

// Parses the output of RenderJson back into diagnostics (used by the
// golden round-trip test and by tools consuming lint output). Accepts
// exactly the subset of JSON that RenderJson emits.
Result<std::vector<Diagnostic>> ParseDiagnosticsJson(std::string_view json);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_DIAGNOSTIC_H_
