#include "analysis/schema_analyzer.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/schema/refinement.h"
#include "core/types/subtyping.h"

namespace tchimera {
namespace {

// The analyzer's working view of one class: either a script declaration
// (spec != nullptr) or a class of the base database, normalized to the
// same shape (effective members keyed by name).
struct ClassEntry {
  const ClassSpec* spec = nullptr;
  size_t position = SourceLocation::kNoOffset;
  // Removal spans for the declared members (see SchemaDecl); may be null.
  const std::vector<SourceSpan>* attribute_spans = nullptr;
  const std::vector<SourceSpan>* c_attribute_spans = nullptr;
  bool from_base = false;
  bool poisoned = false;  // on an ISA cycle / under one: members unreliable
  std::vector<std::string> supers;  // resolved direct superclasses
  std::set<std::string> ancestors;  // transitive superclasses, self excluded
  std::map<std::string, AttributeDef> attrs;  // effective attributes
  std::map<std::string, AttributeDef> c_attrs;  // effective c-attributes
  std::map<std::string, MethodDef> methods;   // effective methods
  bool ancestors_done = false;
  bool merged = false;
};

using EntryMap = std::map<std::string, ClassEntry, std::less<>>;

// The ISA relation induced by the analyzed declarations plus the base
// database, answered from the precomputed ancestor sets.
class AnalyzerIsa final : public IsaProvider {
 public:
  explicit AnalyzerIsa(const EntryMap& entries) : entries_(entries) {}

  bool IsSubclassOf(std::string_view sub,
                    std::string_view super) const override {
    if (sub == super) return true;
    auto it = entries_.find(sub);
    return it != entries_.end() &&
           it->second.ancestors.count(std::string(super)) > 0;
  }

  std::optional<std::string> LeastCommonSuperclass(
      std::string_view a, std::string_view b) const override {
    std::set<std::string> ca = SelfAndAncestors(a);
    std::set<std::string> cb = SelfAndAncestors(b);
    std::vector<std::string> common;
    for (const std::string& c : ca) {
      if (cb.count(c) > 0) common.push_back(c);
    }
    // The least elements: candidates with no strictly more specific
    // candidate below them.
    std::vector<std::string> least;
    for (const std::string& c : common) {
      bool minimal = true;
      for (const std::string& d : common) {
        if (d != c && IsSubclassOf(d, c)) {
          minimal = false;
          break;
        }
      }
      if (minimal) least.push_back(c);
    }
    if (least.size() == 1) return least[0];
    return std::nullopt;
  }

 private:
  std::set<std::string> SelfAndAncestors(std::string_view name) const {
    std::set<std::string> out;
    out.insert(std::string(name));
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      out.insert(it->second.ancestors.begin(), it->second.ancestors.end());
    }
    return out;
  }

  const EntryMap& entries_;
};

// Collects every class identifier used as an object type anywhere in `t`.
void CollectClassRefs(const Type* t, std::set<std::string>* out) {
  if (t == nullptr) return;
  switch (t->kind()) {
    case TypeKind::kObject:
      out->insert(t->class_name());
      break;
    case TypeKind::kSet:
    case TypeKind::kList:
    case TypeKind::kTemporal:
      CollectClassRefs(t->element(), out);
      break;
    case TypeKind::kRecord:
      for (const RecordField& f : t->fields()) CollectClassRefs(f.type, out);
      break;
    default:
      break;
  }
}

// The delete-the-redeclaration fix-it for declared member `i`, when the
// parser recorded a removal span for it.
std::vector<FixIt> RemoveDeclFix(const std::vector<SourceSpan>* spans,
                                 size_t i) {
  if (spans == nullptr || i >= spans->size() || !(*spans)[i].valid()) {
    return {};
  }
  return {FixIt{(*spans)[i].begin, (*spans)[i].length(), ""}};
}

class SchemaAnalysis {
 public:
  SchemaAnalysis(const Database* base, DiagnosticEngine* diags)
      : base_(base), diags_(diags) {}

  void Run(const std::vector<SchemaDecl>& decls) {
    LoadBase();
    RegisterDecls(decls);
    ResolveSupers();
    DetectCycles();
    ComputeAncestors();
    for (const std::string& name : decl_order_) {
      CheckDeclaredMembers(entries_.find(name)->second);
    }
    MergeInTopoOrder();
    CheckExtentLifespans();
  }

 private:
  // --- setup --------------------------------------------------------------

  void LoadBase() {
    if (base_ == nullptr) return;
    for (const std::string& name : base_->ClassNames()) {
      const ClassDef* def = base_->GetClass(name);
      ClassEntry e;
      e.from_base = true;
      e.merged = true;
      e.supers = def->direct_superclasses();
      for (const std::string& s : base_->isa().Superclasses(name)) {
        e.ancestors.insert(s);
      }
      for (const AttributeDef& a : def->attributes()) e.attrs[a.name] = a;
      for (const AttributeDef& a : def->c_attributes()) e.c_attrs[a.name] = a;
      for (const MethodDef& m : def->methods()) e.methods[m.name] = m;
      entries_.emplace(name, std::move(e));
    }
  }

  void RegisterDecls(const std::vector<SchemaDecl>& decls) {
    for (const SchemaDecl& d : decls) {
      if (d.spec == nullptr) continue;
      auto it = entries_.find(d.spec->name);
      if (it != entries_.end()) {
        diags_->Report(
            "TC008", d.position,
            "class '" + d.spec->name + "' is already defined" +
                (it->second.from_base ? " in the database" : "") +
                "; this definition is ignored by the analyzer",
            "class identifiers are unique (Definition 4.1)");
        continue;
      }
      ClassEntry e;
      e.spec = d.spec;
      e.position = d.position;
      e.attribute_spans = d.attribute_spans;
      e.c_attribute_spans = d.c_attribute_spans;
      entries_.emplace(d.spec->name, std::move(e));
      decl_order_.push_back(d.spec->name);
    }
  }

  void ResolveSupers() {
    for (const std::string& name : decl_order_) {
      ClassEntry& e = entries_.find(name)->second;
      for (const std::string& super : e.spec->superclasses) {
        if (entries_.count(super) == 0) {
          diags_->Report("TC002", e.position,
                         "class '" + name + "': unknown superclass '" +
                             super + "'",
                         "every superclass must be defined in the schema "
                         "or the database");
          e.poisoned = true;  // inherited members unknowable
          continue;
        }
        e.supers.push_back(super);
      }
    }
  }

  // --- ISA cycles (TC001) --------------------------------------------------

  void DetectCycles() {
    // Iterative 3-color DFS over the declared classes (base classes are
    // acyclic by construction and never point at declarations).
    std::map<std::string, int, std::less<>> color;  // 0 white 1 grey 2 black
    for (const std::string& root : decl_order_) {
      if (color[root] != 0) continue;
      // Stack of (name, next-super-index); `path` mirrors the grey chain.
      std::vector<std::pair<std::string, size_t>> stack{{root, 0}};
      std::vector<std::string> path{root};
      color[root] = 1;
      while (!stack.empty()) {
        auto& [name, next] = stack.back();
        ClassEntry& e = entries_.find(name)->second;
        if (next >= e.supers.size()) {
          color[name] = 2;
          stack.pop_back();
          path.pop_back();
          continue;
        }
        const std::string& super = e.supers[next++];
        ClassEntry& se = entries_.find(super)->second;
        if (se.from_base) continue;
        int c = color[super];
        if (c == 0) {
          color[super] = 1;
          stack.emplace_back(super, 0);
          path.push_back(super);
        } else if (c == 1) {
          ReportCycle(path, super);
        }
      }
    }
  }

  void ReportCycle(const std::vector<std::string>& path,
                   const std::string& back_to) {
    // The cycle is the suffix of `path` starting at `back_to`.
    size_t start = 0;
    while (start < path.size() && path[start] != back_to) ++start;
    std::string shown;
    for (size_t i = start; i < path.size(); ++i) {
      shown += path[i] + " -> ";
    }
    shown += back_to;
    ClassEntry& anchor = entries_.find(back_to)->second;
    diags_->Report("TC001", anchor.position,
                   "ISA cycle: " + shown,
                   "<=_ISA must be a partial order (Section 6); the classes "
                   "on the cycle are skipped by the analyzer");
    for (size_t i = start; i < path.size(); ++i) {
      entries_.find(path[i])->second.poisoned = true;
    }
  }

  // --- ancestors -----------------------------------------------------------

  void ComputeAncestors() {
    for (const std::string& name : decl_order_) {
      std::set<std::string> visiting;
      FillAncestors(name, &visiting);
    }
  }

  const std::set<std::string>& FillAncestors(const std::string& name,
                                             std::set<std::string>* visiting) {
    ClassEntry& e = entries_.find(name)->second;
    if (e.from_base || e.ancestors_done || visiting->count(name) > 0) {
      return e.ancestors;  // base sets are prefilled; cycles cut short
    }
    visiting->insert(name);
    for (const std::string& super : e.supers) {
      e.ancestors.insert(super);
      const std::set<std::string>& up = FillAncestors(super, visiting);
      e.ancestors.insert(up.begin(), up.end());
    }
    visiting->erase(name);
    e.ancestors_done = true;
    return e.ancestors;
  }

  // --- per-declaration checks (TC006, TC007) -------------------------------

  void CheckDeclaredMembers(const ClassEntry& e) {
    const ClassSpec& spec = *e.spec;
    CheckDuplicates(spec.attributes, "attribute", e);
    CheckDuplicates(spec.c_attributes, "c-attribute", e);
    std::set<std::string> refs;
    for (const AttributeDef& a : spec.attributes) {
      CollectClassRefs(a.type, &refs);
    }
    for (const AttributeDef& a : spec.c_attributes) {
      CollectClassRefs(a.type, &refs);
    }
    for (const MethodDef& m : spec.methods) {
      for (const Type* t : m.inputs) CollectClassRefs(t, &refs);
      CollectClassRefs(m.output, &refs);
    }
    for (const std::string& ref : refs) {
      if (entries_.count(ref) == 0) {
        diags_->Report("TC006", e.position,
                       "class '" + spec.name +
                           "': attribute domain references undefined class '" +
                           ref + "'",
                       "an object type names a class of the schema "
                       "(Definition 3.1); values of this domain could never "
                       "be well-typed (Definition 3.5)");
      }
    }
  }

  void CheckDuplicates(const std::vector<AttributeDef>& attrs,
                       const char* kind, const ClassEntry& e) {
    std::set<std::string> seen;
    for (const AttributeDef& a : attrs) {
      if (!seen.insert(a.name).second) {
        diags_->Report("TC007", e.position,
                       "class '" + e.spec->name + "': " + kind + " '" +
                           a.name + "' is declared more than once",
                       "attr maps each name to one domain (Definition 4.1)");
      }
    }
  }

  // --- inheritance merge (TC003, TC004, TC005, TC009) ----------------------

  void MergeInTopoOrder() {
    AnalyzerIsa isa(entries_);
    // Kahn-style: repeatedly merge declarations whose superclasses are all
    // merged. Poisoned entries (cycles / unknown supers) never merge, and
    // neither do their descendants — avoiding cascaded noise.
    bool progress = true;
    while (progress) {
      progress = false;
      for (const std::string& name : decl_order_) {
        ClassEntry& e = entries_.find(name)->second;
        if (e.merged || e.poisoned) continue;
        bool ready = true;
        for (const std::string& super : e.supers) {
          const ClassEntry& se = entries_.find(super)->second;
          if (se.poisoned) {
            ready = false;
            e.poisoned = true;  // inherited members unknowable
            break;
          }
          if (!se.merged) ready = false;
        }
        if (!ready) continue;
        MergeOne(e, isa);
        e.merged = true;
        progress = true;
      }
    }
  }

  void MergeOne(ClassEntry& e, const IsaProvider& isa) {
    const ClassSpec& spec = *e.spec;
    // name -> first providing superclass, for conflict messages.
    std::map<std::string, std::string> attr_from;
    std::map<std::string, std::string> attr_conflict;  // second source
    std::map<std::string, std::string> cattr_from;
    std::map<std::string, std::string> meth_from;
    std::map<std::string, std::string> meth_conflict;
    for (const std::string& super : e.supers) {
      const ClassEntry& se = entries_.find(super)->second;
      for (const auto& [name, a] : se.c_attrs) {
        if (e.c_attrs.emplace(name, a).second) cattr_from.emplace(name, super);
      }
      for (const auto& [name, a] : se.attrs) {
        auto it = e.attrs.find(name);
        if (it == e.attrs.end()) {
          e.attrs.emplace(name, a);
          attr_from.emplace(name, super);
        } else if (it->second.type != a.type) {
          attr_conflict.emplace(name, super);
        }
      }
      for (const auto& [name, m] : se.methods) {
        auto it = e.methods.find(name);
        if (it == e.methods.end()) {
          e.methods.emplace(name, m);
          meth_from.emplace(name, super);
        } else if (it->second.inputs != m.inputs ||
                   it->second.output != m.output) {
          meth_conflict.emplace(name, super);
        }
      }
    }
    std::set<std::string> declared_names;
    for (size_t ai = 0; ai < spec.attributes.size(); ++ai) {
      const AttributeDef& a = spec.attributes[ai];
      if (!declared_names.insert(a.name).second) continue;  // TC007 already
      auto it = e.attrs.find(a.name);
      if (it != e.attrs.end() && attr_from.count(a.name) > 0) {
        const AttributeDef& inherited = it->second;
        if (inherited.is_temporal() && !a.is_temporal()) {
          diags_->Report(
              "TC004", e.position,
              "class '" + spec.name + "': temporal attribute '" + a.name +
                  "' (inherited from '" + attr_from[a.name] +
                  "' with domain " + inherited.type->ToString() +
                  ") is redeclared with non-temporal domain " +
                  a.type->ToString(),
              "a temporal attribute can never become non-temporal "
              "(Rule 6.1): instances of the subclass could not carry the "
              "histories Invariants 6.1/6.2 require of every member of '" +
                  attr_from[a.name] + "'");
        } else if (Status s = CheckAttributeRefinement(inherited, a, isa);
                   !s.ok()) {
          diags_->Report(
              "TC003", e.position,
              "class '" + spec.name + "': " + s.message() +
                  " (inherited from '" + attr_from[a.name] + "')",
              "Rule 6.1 admits only T' <=_T T or T' = temporal(T'') with "
              "T'' <=_T T");
        }
      }
      if (auto cit = e.c_attrs.find(a.name);
          cit != e.c_attrs.end() && cattr_from.count(a.name) > 0) {
        // An instance attribute over an inherited c-attribute: the two
        // live in different namespaces at runtime (attr vs c-attr slots),
        // so the subclass silently hides the class-level member.
        diags_->Report(
            "TC013", e.position,
            "class '" + spec.name + "': attribute '" + a.name +
                "' shadows the c-attribute inherited from '" +
                cattr_from[a.name] + "' (domain " +
                cit->second.type->ToString() + ")",
            "c-attributes are class-level members with their own value "
            "slot (Section 4); an instance attribute of the same name "
            "hides it in the subclass without refining it (Rule 6.1)",
            RemoveDeclFix(e.attribute_spans, ai));
      }
      e.attrs[a.name] = a;
      attr_conflict.erase(a.name);
      attr_from.erase(a.name);  // redeclared locally: no longer inherited
    }
    for (size_t ci = 0; ci < spec.c_attributes.size(); ++ci) {
      const AttributeDef& a = spec.c_attributes[ci];
      if (auto cit = e.c_attrs.find(a.name);
          cit != e.c_attrs.end() && cattr_from.count(a.name) > 0) {
        // Redefining an inherited c-attribute gives the subclass its own
        // value slot, starting null and independent of the superclass's
        // stored value — almost never what the schema author meant.
        diags_->Report(
            "TC013", e.position,
            "class '" + spec.name + "': c-attribute '" + a.name +
                "' redefines the c-attribute inherited from '" +
                cattr_from[a.name] + "' (domain " +
                cit->second.type->ToString() +
                "); the subclass gets its own value slot, detached from "
                "the superclass's value",
            "c-attributes carry one value per class (Section 4); "
            "redefining one in a subclass shadows the inherited value "
            "slot rather than refining it (Rule 6.1)",
            RemoveDeclFix(e.c_attribute_spans, ci));
      } else if (auto ait = e.attrs.find(a.name);
                 ait != e.attrs.end() && attr_from.count(a.name) > 0) {
        diags_->Report(
            "TC013", e.position,
            "class '" + spec.name + "': c-attribute '" + a.name +
                "' shadows the attribute inherited from '" +
                attr_from[a.name] + "' (domain " +
                ait->second.type->ToString() + ")",
            "an inherited instance attribute and a class-level "
            "c-attribute of the same name are different members "
            "(Section 4); the redeclaration hides rather than refines "
            "(Rule 6.1)",
            RemoveDeclFix(e.c_attribute_spans, ci));
      }
      e.c_attrs[a.name] = a;
      cattr_from.erase(a.name);
    }
    for (const auto& [name, second_src] : attr_conflict) {
      const AttributeDef& first = e.attrs.find(name)->second;
      const AttributeDef* other =
          entries_.find(second_src)->second.attrs.count(name) > 0
              ? &entries_.find(second_src)->second.attrs.find(name)->second
              : nullptr;
      std::string detail =
          "'" + attr_from[name] + "' declares " + first.type->ToString();
      if (other != nullptr) {
        detail += ", '" + second_src + "' declares " + other->type->ToString();
        if (first.is_temporal() != other->is_temporal()) {
          detail += " (temporal vs non-temporal)";
        }
      }
      diags_->Report(
          "TC005", e.position,
          "class '" + spec.name + "' inherits conflicting domains for "
              "attribute '" + name + "' and does not redeclare it: " + detail,
          "multiple-inheritance conflicts must be resolved by an explicit "
          "Rule 6.1 redeclaration in the subclass");
    }
    declared_names.clear();
    for (const MethodDef& m : spec.methods) {
      if (!declared_names.insert(m.name).second) continue;
      auto it = e.methods.find(m.name);
      if (it != e.methods.end() && meth_from.count(m.name) > 0) {
        if (Status s = CheckMethodRefinement(it->second, m, isa); !s.ok()) {
          diags_->Report(
              "TC009", e.position,
              "class '" + spec.name + "': " + s.message() +
                  " (inherited from '" + meth_from[m.name] + "')",
              "method redefinition is covariant in the result and "
              "contravariant in the inputs (Section 6.1)");
        }
      }
      e.methods[m.name] = m;
      meth_conflict.erase(m.name);
      meth_from.erase(m.name);
    }
    for (const auto& [name, second_src] : meth_conflict) {
      diags_->Report(
          "TC005", e.position,
          "class '" + spec.name + "' inherits conflicting signatures for "
              "method '" + name + "' (from '" + meth_from[name] + "' and '" +
              second_src + "') and does not redeclare it",
          "multiple-inheritance conflicts must be resolved by an explicit "
          "redeclaration in the subclass");
    }
  }

  // --- extent / lifespan audit (TC012) -------------------------------------
  //
  // Invariant 5.1 confines ext(c) to lifespan(c); membership propagation
  // (every instance of c is a member of every superclass, Invariant 6.1)
  // lifts that to superclass lifespans: an interval during which c had
  // members but a superclass did not exist is unsatisfiable. Declarations
  // cannot carry extents, so the interval checks apply to base-database
  // classes; for declarations the analyzable shadow of the same invariant
  // is a dead base superclass — every future member of the declared class
  // would land outside that superclass's closed lifespan.

  void CheckExtentLifespans() {
    if (base_ == nullptr) return;
    const TimePoint now = base_->now();
    for (const std::string& name : base_->ClassNames()) {
      const ClassDef* def = base_->GetClass(name);
      CheckExtentWithin(name, "ext", def->ext().Domain(now), name,
                        def->lifespan(), now);
      CheckExtentWithin(name, "proper-ext", def->proper_ext().Domain(now),
                        name, def->lifespan(), now);
      for (const std::string& super : def->direct_superclasses()) {
        const ClassDef* sdef = base_->GetClass(super);
        if (sdef == nullptr) continue;
        CheckExtentWithin(name, "ext", def->ext().Domain(now), super,
                          sdef->lifespan(), now);
      }
    }
    for (const std::string& name : decl_order_) {
      const ClassEntry& e = entries_.find(name)->second;
      for (const std::string& super : e.supers) {
        if (!entries_.find(super)->second.from_base) continue;
        const ClassDef* sdef = base_->GetClass(super);
        if (sdef == nullptr || sdef->alive()) continue;
        diags_->Report(
            "TC012", e.position,
            "class '" + name + "': superclass '" + super +
                "' has a closed lifespan " + sdef->lifespan().ToString() +
                "; every future member of '" + name +
                "' would fall outside it",
            "ext(c) is confined to lifespan(c) (Invariant 5.1), and every "
            "member of a class is a member of its superclasses "
            "(Invariant 6.1), so a class cannot acquire members after a "
            "superclass's lifespan ended");
      }
    }
  }

  void CheckExtentWithin(const std::string& cls, const char* which,
                         const IntervalSet& extent_domain,
                         const std::string& owner, const Interval& lifespan,
                         TimePoint now) {
    for (const Interval& iv : extent_domain.intervals()) {
      if (lifespan.Covers(iv, now)) continue;
      const bool self = owner == cls;
      diags_->Report(
          "TC012", SourceLocation::kNoOffset,
          "class '" + cls + "': " + which + " interval " + iv.ToString() +
              " lies outside the lifespan " + lifespan.ToString() +
              (self ? "" : " of superclass '" + owner + "'"),
          self ? "ext(c) is confined to lifespan(c) (Invariant 5.1)"
               : "every member of a class is a member of its superclasses "
                 "(Invariant 6.1), and their extents are confined to their "
                 "lifespans (Invariant 5.1)");
      break;  // one finding per (class, owner) pair is enough
    }
  }

  const Database* base_;
  DiagnosticEngine* diags_;
  EntryMap entries_;
  std::vector<std::string> decl_order_;
};

}  // namespace

void AnalyzeSchema(const std::vector<SchemaDecl>& decls, const Database* base,
                   DiagnosticEngine* diags) {
  SchemaAnalysis(base, diags).Run(decls);
}

void AnalyzeClassSpec(const ClassSpec& spec, size_t position,
                      const Database* base, DiagnosticEngine* diags) {
  AnalyzeSchema({{&spec, position}}, base, diags);
}

}  // namespace tchimera
