#include "analysis/diagnostic.h"

#include <algorithm>
#include <cctype>

namespace tchimera {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

Result<Severity> SeverityFromName(std::string_view name) {
  if (name == "note") return Severity::kNote;
  if (name == "warning") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  return Status::InvalidArgument("unknown severity '" + std::string(name) +
                                 "'");
}

}  // namespace

const std::vector<DiagnosticInfo>& AllDiagnosticInfos() {
  // Appending new codes is fine; never renumber (codes are stable API, the
  // CI greps for them). Kept in code order; documented in docs/LINT.md.
  static const std::vector<DiagnosticInfo> kInfos = {
      // --- TC0xx: schema analysis ---------------------------------------
      {"TC001", "isa-cycle", Severity::kError, "Section 6 (<=_ISA order)"},
      {"TC002", "unknown-superclass", Severity::kError,
       "Definition 4.1 (schema well-formedness)"},
      {"TC003", "illegal-refinement", Severity::kError, "Rule 6.1"},
      {"TC004", "temporal-demotion", Severity::kError,
       "Rule 6.1 / Invariants 6.1-6.2"},
      {"TC005", "inheritance-conflict", Severity::kError,
       "Rule 6.1 (multiple inheritance)"},
      {"TC006", "dangling-domain", Severity::kError,
       "Definition 3.1 (object types name classes)"},
      {"TC007", "duplicate-attribute", Severity::kWarning,
       "Definition 4.1 (attr is a function)"},
      {"TC008", "duplicate-class", Severity::kWarning,
       "Definition 4.1 (class identifiers are unique)"},
      {"TC009", "illegal-method-refinement", Severity::kError,
       "Section 6.1 (co/contravariance)"},
      {"TC010", "parse-error", Severity::kError, "TQL grammar"},
      {"TC011", "file-error", Severity::kError, "driver"},
      {"TC012", "extent-outside-superclass-lifespan", Severity::kError,
       "Invariant 5.1 / Invariant 6.1 (extents within superclass "
       "lifespans)"},
      {"TC013", "c-attribute-shadowed", Severity::kWarning,
       "Section 4 (class attributes) / Rule 6.1 (member refinement)"},
      // --- TC1xx: query (TQL) analysis ----------------------------------
      {"TC101", "unused-binder", Severity::kWarning,
       "Section 6.1 (query semantics)"},
      {"TC102", "projection-outside-lifespan", Severity::kWarning,
       "Invariant 5.1 / Section 5.2 (histories within lifespans)"},
      {"TC103", "redundant-projection", Severity::kNote,
       "Section 6.1 (snapshot coercion)"},
      {"TC104", "unsatisfiable-predicate", Severity::kWarning,
       "Definition 3.6 / <=_T (no satisfying assignment)"},
      {"TC105", "trivial-predicate", Severity::kWarning,
       "Definition 3.6 (constant under every assignment)"},
      {"TC106", "empty-update-window", Severity::kWarning,
       "Section 3.2 (null interval) / Section 6.2 (update semantics)"},
      {"TC107", "snapshot-outside-lifespan", Severity::kWarning,
       "Definition 5.3 / Section 5.2 (states within lifespans)"},
      {"TC108", "history-of-non-temporal", Severity::kNote,
       "Section 5.2 (temporal vs immediate attributes)"},
      {"TC109", "empty-query-window", Severity::kWarning,
       "Section 3.2 (null interval) / Section 6.1 (query semantics)"},
      {"TC110", "query-type-error", Severity::kError,
       "Definition 3.6 (typing rules)"},
      {"TC111", "statement-failed", Severity::kError, "runtime check"},
      {"TC112", "invalid-index-ddl", Severity::kError,
       "index DDL against the declared schema (docs/INDEXING.md)"},
      // --- TC2xx: flow-sensitive script analysis ------------------------
      {"TC201", "use-before-initialization", Severity::kWarning,
       "Definition 5.3 (states defined within lifespans)"},
      {"TC202", "static-write-conflict", Severity::kNote,
       "first-committer-wins validation (optimistic concurrency)"},
      {"TC203", "empty-window-after-propagation", Severity::kWarning,
       "Section 3.2 (null interval) under the tracked clock"},
  };
  return kInfos;
}

const DiagnosticInfo* FindDiagnosticInfo(std::string_view code) {
  for (const DiagnosticInfo& info : AllDiagnosticInfos()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

void DiagnosticEngine::Report(std::string_view code, size_t offset,
                              std::string message, std::string note,
                              std::vector<FixIt> fixits) {
  const DiagnosticInfo* info = FindDiagnosticInfo(code);
  Diagnostic d;
  d.code = std::string(code);
  d.severity = info != nullptr ? info->default_severity : Severity::kWarning;
  d.message = std::move(message);
  d.location.offset = offset;
  d.note = std::move(note);
  d.fixits = std::move(fixits);
  Add(std::move(d));
}

void DiagnosticEngine::Add(Diagnostic d) {
  diagnostics_.push_back(std::move(d));
}

size_t DiagnosticEngine::CountAtLeast(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= s) ++n;
  }
  return n;
}

void DiagnosticEngine::ResolveLocations(std::string_view file,
                                        std::string_view source) {
  for (Diagnostic& d : diagnostics_) {
    d.location.file = std::string(file);
    if (!d.location.has_offset()) continue;
    size_t offset = std::min(d.location.offset, source.size());
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < offset; ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    d.location.line = line;
    d.location.column = column;
  }
}

void DiagnosticEngine::SortByLocation() {
  std::stable_sort(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        if (a.location.file != b.location.file) {
          return a.location.file < b.location.file;
        }
        // Prefer resolved (line, column) when both sides have them; they
        // order the same as offsets but also hold for diagnostics merged
        // from JSON, which carry no offset.
        if (a.location.line > 0 && b.location.line > 0) {
          if (a.location.line != b.location.line) {
            return a.location.line < b.location.line;
          }
          if (a.location.column != b.location.column) {
            return a.location.column < b.location.column;
          }
        } else if (a.location.offset != b.location.offset) {
          // kNoOffset sorts last (it is the max size_t).
          return a.location.offset < b.location.offset;
        }
        return a.code < b.code;
      });
}

std::string RenderHuman(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!d.location.file.empty()) {
      out += d.location.file;
      out += ":";
    }
    if (d.location.line > 0) {
      out += std::to_string(d.location.line) + ":" +
             std::to_string(d.location.column) + ":";
    } else if (d.location.has_offset()) {
      out += "+" + std::to_string(d.location.offset) + ":";
    }
    if (!out.empty() && out.back() == ':') out += " ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.message;
    out += " [" + d.code + "]\n";
    if (!d.note.empty()) {
      out += "    note: " + d.note + "\n";
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xF]);
          out->push_back(kHex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// A recursive-descent parser for exactly the JSON subset RenderJson
// emits: objects, arrays, strings with the escapes above, and unsigned
// integers.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Consume(c)) return Status::OK();
    return Error(std::string("expected '") + c + "'");
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("diagnostics JSON: " + what +
                                   " at offset " + std::to_string(pos_));
  }

  Result<std::string> ParseString() {
    TCH_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          if (v > 0xFF) return Error("non-latin \\u escape unsupported");
          out.push_back(static_cast<char>(v));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    TCH_RETURN_IF_ERROR(Expect('"'));
    return out;
  }

  Result<size_t> ParseUnsigned() {
    SkipSpace();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected a number");
    }
    size_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<size_t>(text_[pos_++] - '0');
    }
    return v;
  }

  // Skips any value (used for ignorable keys such as the summary counts).
  Status SkipValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("truncated value");
    char c = text_[pos_];
    if (c == '"') return ParseString().status();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ParseUnsigned().status();
    }
    return Error("unsupported value");
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<FixIt> ParseOneFixIt(JsonCursor* c) {
  TCH_RETURN_IF_ERROR(c->Expect('{'));
  FixIt f;
  bool first = true;
  while (!c->Consume('}')) {
    if (!first) TCH_RETURN_IF_ERROR(c->Expect(','));
    first = false;
    TCH_ASSIGN_OR_RETURN(std::string key, c->ParseString());
    TCH_RETURN_IF_ERROR(c->Expect(':'));
    if (key == "offset") {
      TCH_ASSIGN_OR_RETURN(f.offset, c->ParseUnsigned());
    } else if (key == "length") {
      TCH_ASSIGN_OR_RETURN(f.length, c->ParseUnsigned());
    } else if (key == "replacement") {
      TCH_ASSIGN_OR_RETURN(f.replacement, c->ParseString());
    } else {
      TCH_RETURN_IF_ERROR(c->SkipValue());
    }
  }
  return f;
}

Result<Diagnostic> ParseOneDiagnostic(JsonCursor* c) {
  TCH_RETURN_IF_ERROR(c->Expect('{'));
  Diagnostic d;
  bool first = true;
  while (!c->Consume('}')) {
    if (!first) TCH_RETURN_IF_ERROR(c->Expect(','));
    first = false;
    TCH_ASSIGN_OR_RETURN(std::string key, c->ParseString());
    TCH_RETURN_IF_ERROR(c->Expect(':'));
    if (key == "fixits") {
      TCH_RETURN_IF_ERROR(c->Expect('['));
      while (!c->Consume(']')) {
        if (!d.fixits.empty()) TCH_RETURN_IF_ERROR(c->Expect(','));
        TCH_ASSIGN_OR_RETURN(FixIt f, ParseOneFixIt(c));
        d.fixits.push_back(std::move(f));
      }
    } else if (key == "code") {
      TCH_ASSIGN_OR_RETURN(d.code, c->ParseString());
    } else if (key == "severity") {
      TCH_ASSIGN_OR_RETURN(std::string name, c->ParseString());
      TCH_ASSIGN_OR_RETURN(d.severity, SeverityFromName(name));
    } else if (key == "message") {
      TCH_ASSIGN_OR_RETURN(d.message, c->ParseString());
    } else if (key == "note") {
      TCH_ASSIGN_OR_RETURN(d.note, c->ParseString());
    } else if (key == "file") {
      TCH_ASSIGN_OR_RETURN(d.location.file, c->ParseString());
    } else if (key == "offset") {
      TCH_ASSIGN_OR_RETURN(d.location.offset, c->ParseUnsigned());
    } else if (key == "line") {
      TCH_ASSIGN_OR_RETURN(d.location.line, c->ParseUnsigned());
    } else if (key == "column") {
      TCH_ASSIGN_OR_RETURN(d.location.column, c->ParseUnsigned());
    } else {
      TCH_RETURN_IF_ERROR(c->SkipValue());
    }
  }
  return d;
}

}  // namespace

std::string RenderJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "{\"diagnostics\":[";
  size_t errors = 0;
  size_t warnings = 0;
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    if (i > 0) out += ",";
    out += "{\"code\":";
    AppendJsonString(&out, d.code);
    out += ",\"severity\":";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    if (!d.location.file.empty()) {
      out += ",\"file\":";
      AppendJsonString(&out, d.location.file);
    }
    if (d.location.has_offset()) {
      out += ",\"offset\":" + std::to_string(d.location.offset);
    }
    if (d.location.line > 0) {
      out += ",\"line\":" + std::to_string(d.location.line);
      out += ",\"column\":" + std::to_string(d.location.column);
    }
    if (!d.note.empty()) {
      out += ",\"note\":";
      AppendJsonString(&out, d.note);
    }
    if (!d.fixits.empty()) {
      out += ",\"fixits\":[";
      for (size_t j = 0; j < d.fixits.size(); ++j) {
        const FixIt& f = d.fixits[j];
        if (j > 0) out += ",";
        out += "{\"offset\":" + std::to_string(f.offset) +
               ",\"length\":" + std::to_string(f.length) +
               ",\"replacement\":";
        AppendJsonString(&out, f.replacement);
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(errors) +
         ",\"warnings\":" + std::to_string(warnings) + "}";
  return out;
}

Result<std::vector<Diagnostic>> ParseDiagnosticsJson(std::string_view json) {
  JsonCursor c(json);
  TCH_RETURN_IF_ERROR(c.Expect('{'));
  std::vector<Diagnostic> out;
  bool first = true;
  while (!c.Consume('}')) {
    if (!first) TCH_RETURN_IF_ERROR(c.Expect(','));
    first = false;
    TCH_ASSIGN_OR_RETURN(std::string key, c.ParseString());
    TCH_RETURN_IF_ERROR(c.Expect(':'));
    if (key == "diagnostics") {
      TCH_RETURN_IF_ERROR(c.Expect('['));
      while (!c.Consume(']')) {
        if (!out.empty()) TCH_RETURN_IF_ERROR(c.Expect(','));
        TCH_ASSIGN_OR_RETURN(Diagnostic d, ParseOneDiagnostic(&c));
        out.push_back(std::move(d));
      }
    } else {
      TCH_RETURN_IF_ERROR(c.SkipValue());
    }
  }
  if (!c.AtEnd()) return Status::InvalidArgument("diagnostics JSON: trailing input");
  return out;
}

}  // namespace tchimera
