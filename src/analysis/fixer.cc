#include "analysis/fixer.h"

#include <algorithm>
#include <utility>

namespace tchimera {
namespace {

// One diagnostic's worth of edits, applied atomically.
struct EditGroup {
  const Diagnostic* diag = nullptr;
  std::vector<FixIt> edits;  // sorted by offset, verified non-overlapping
  size_t begin = 0;          // min edit offset (for group ordering)
};

bool Overlaps(const FixIt& a, const FixIt& b) {
  // Half-open ranges; pure insertions at the same point do not overlap
  // (they apply in group order), but an insertion inside a replaced range
  // does.
  return a.offset < b.end() && b.offset < a.end();
}

}  // namespace

FixResult ApplyFixIts(std::string_view source,
                      const std::vector<Diagnostic>& diagnostics) {
  FixResult result;

  // Collect candidate groups, dropping malformed ones outright.
  std::vector<EditGroup> groups;
  for (const Diagnostic& d : diagnostics) {
    if (d.fixits.empty()) continue;
    EditGroup g;
    g.diag = &d;
    g.edits = d.fixits;
    std::sort(g.edits.begin(), g.edits.end(),
              [](const FixIt& a, const FixIt& b) {
                return a.offset < b.offset;
              });
    bool bad = false;
    for (size_t i = 0; i < g.edits.size(); ++i) {
      if (g.edits[i].end() > source.size()) bad = true;
      if (i > 0 && Overlaps(g.edits[i - 1], g.edits[i])) bad = true;
    }
    if (bad) {
      ++result.skipped;
      result.skipped_reasons.push_back(
          d.code + " at offset " + std::to_string(g.edits.front().offset) +
          ": malformed fix (out of bounds or self-overlapping)");
      continue;
    }
    g.begin = g.edits.front().offset;
    groups.push_back(std::move(g));
  }

  // Deterministic precedence: position, then code, then report order.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const EditGroup& a, const EditGroup& b) {
                     if (a.begin != b.begin) return a.begin < b.begin;
                     return a.diag->code < b.diag->code;
                   });

  // Greedily accept groups whose edits touch none of the already accepted
  // ranges; the first claimant of a span wins.
  std::vector<FixIt> accepted;
  for (const EditGroup& g : groups) {
    bool conflict = false;
    for (const FixIt& e : g.edits) {
      for (const FixIt& a : accepted) {
        if (Overlaps(e, a)) {
          conflict = true;
          break;
        }
      }
      if (conflict) break;
    }
    if (conflict) {
      ++result.skipped;
      result.skipped_reasons.push_back(
          g.diag->code + " at offset " + std::to_string(g.begin) +
          ": overlaps an earlier fix; re-run --fix to apply");
      continue;
    }
    accepted.insert(accepted.end(), g.edits.begin(), g.edits.end());
    ++result.applied;
  }

  // Apply back-to-front so earlier offsets stay valid.
  std::sort(accepted.begin(), accepted.end(),
            [](const FixIt& a, const FixIt& b) { return a.offset > b.offset; });
  std::string text(source);
  for (const FixIt& e : accepted) {
    text.replace(e.offset, e.length, e.replacement);
  }
  result.text = std::move(text);
  return result;
}

}  // namespace tchimera
