// The end-to-end lint pipeline over one TQL script, shared by the
// tchimera_lint CLI and the tests:
//
//   1. parse the script (failures become TC010);
//   2. analyze every DEFINE CLASS declaration as one schema, forward
//      references allowed (TC0xx);
//   3. unless `schema_only`, replay the script against a scratch
//      in-memory database — so the clock, classes and objects are exactly
//      what they would be at runtime — linting each SELECT / WHEN
//      statement in context (TC1xx) and reporting statements the dynamic
//      layer rejects (TC111);
//   4. unless `schema_only` or `no_flow`, run the flow-sensitive pass
//      (analysis/flow_analyzer.h) over the whole statement sequence
//      (TC2xx: definite initialization, static write-write conflicts,
//      windows empty under the propagated clock).
#ifndef TCHIMERA_ANALYSIS_LINT_DRIVER_H_
#define TCHIMERA_ANALYSIS_LINT_DRIVER_H_

#include <string_view>

#include "analysis/diagnostic.h"

namespace tchimera {

struct LintOptions {
  bool schema_only = false;
  bool no_flow = false;  // suppress the TC2xx flow-sensitive pass
};

// Lints `source` (a whole TQL script), appending findings to `diags`.
// Offsets in the findings are byte offsets into `source`; callers resolve
// them to line/column with DiagnosticEngine::ResolveLocations.
void LintTqlScript(std::string_view source, const LintOptions& options,
                   DiagnosticEngine* diags);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_LINT_DRIVER_H_
