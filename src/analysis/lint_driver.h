// The end-to-end lint pipeline over one TQL script, shared by the
// tchimera_lint CLI and the tests:
//
//   1. parse the script (failures become TC010);
//   2. analyze every DEFINE CLASS declaration as one schema, forward
//      references allowed (TC0xx);
//   3. unless `schema_only`, replay the script against a scratch
//      in-memory database — so the clock, classes and objects are exactly
//      what they would be at runtime — linting each SELECT / WHEN
//      statement in context (TC1xx) and reporting statements the dynamic
//      layer rejects (TC111).
#ifndef TCHIMERA_ANALYSIS_LINT_DRIVER_H_
#define TCHIMERA_ANALYSIS_LINT_DRIVER_H_

#include <string_view>

#include "analysis/diagnostic.h"

namespace tchimera {

struct LintOptions {
  bool schema_only = false;
};

// Lints `source` (a whole TQL script), appending findings to `diags`.
// Offsets in the findings are byte offsets into `source`; callers resolve
// them to line/column with DiagnosticEngine::ResolveLocations.
void LintTqlScript(std::string_view source, const LintOptions& options,
                   DiagnosticEngine* diags);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_LINT_DRIVER_H_
