// Static analysis of a T_Chimera schema *before* it is loaded into a
// database. The dynamic layer (Database::DefineClass) validates each class
// at definition time and stops at the first problem; the analyzer instead
// takes the whole set of declarations at once — forward references
// allowed — and reports every finding, so a schema document can be linted
// offline (deploy-time, in CI) rather than discovered broken at runtime.
//
// Checks (codes in docs/LINT.md):
//   TC001  ISA cycle: <=_ISA must be a partial order (Section 6)
//   TC002  superclass not defined anywhere (schema or base database)
//   TC003  Rule 6.1 violation: redeclared domain is not a refinement
//   TC004  temporal attribute redeclared non-temporal: the subclass could
//          not carry the histories Invariants 6.1/6.2 require
//   TC005  conflicting domains inherited through multiple superclasses
//          (diamond ISA) without a redeclaration
//   TC006  class-typed attribute domain names an undefined class
//   TC007  attribute declared twice in one class
//   TC008  class defined twice in one schema
//   TC009  method redefinition violating co/contravariance (Section 6.1)
//   TC012  extent outside a (superclass) lifespan: Invariant 5.1 confines
//          ext(c) to lifespan(c), and Invariant 6.1 lifts it to every
//          superclass; also flags declarations under a dead base
//          superclass (their future members could never satisfy it)
#ifndef TCHIMERA_ANALYSIS_SCHEMA_ANALYZER_H_
#define TCHIMERA_ANALYSIS_SCHEMA_ANALYZER_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/source_span.h"
#include "core/db/database.h"
#include "core/schema/class_def.h"

namespace tchimera {

// One class declaration plus the byte offset of its DEFINE CLASS statement
// in the source (for diagnostics).
struct SchemaDecl {
  const ClassSpec* spec = nullptr;
  size_t position = SourceLocation::kNoOffset;
  // Parser-recorded removal spans parallel to spec->attributes /
  // spec->c_attributes (DefineClassStmt in query/ast.h); nullptr when the
  // spec was built programmatically. Used to attach delete-the-
  // redeclaration fix-its to TC013.
  const std::vector<SourceSpan>* attribute_spans = nullptr;
  const std::vector<SourceSpan>* c_attribute_spans = nullptr;
};

// Analyzes `decls` (in declaration order) against an optional base
// database whose classes are treated as an already-valid prefix of the
// schema (the interpreter's opt-in lint passes the live database; the CLI
// passes nullptr). Appends findings to `diags`.
void AnalyzeSchema(const std::vector<SchemaDecl>& decls, const Database* base,
                   DiagnosticEngine* diags);

// Convenience for a single declaration (interpreter wiring).
void AnalyzeClassSpec(const ClassSpec& spec, size_t position,
                      const Database* base, DiagnosticEngine* diags);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_SCHEMA_ANALYZER_H_
