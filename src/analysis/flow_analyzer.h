// Flow-sensitive analysis of a whole TQL script (the TC2xx codes): an
// abstract interpretation that walks the statement sequence once,
// propagating a small constant lattice instead of executing anything.
//
// Tracked state:
//   - the clock: `tick` / `advance` are deterministic, so the instant a
//     statement executes at is a compile-time constant;
//   - object allocation: `create` hands out oids sequentially (i1, i2,
//     ...), so oid literals later in the script resolve to known objects
//     with known classes;
//   - per (object, attribute) write coverage: which valid-time intervals
//     have definitely been assigned by earlier statements (create inits,
//     updates, migrate sets);
//   - per object static write footprints, mirroring the oid-granular
//     footprint validation of the optimistic multi-writer commit path.
//
// Checks:
//   TC201  use before initialization: a read through an oid literal of an
//          attribute no earlier statement has assigned (at the instant
//          the read projects, for temporal attributes) — the value is
//          statically null (Definition 5.3: states are defined only
//          where written).
//   TC202  static write-write conflict: two statements write the same
//          object; were they issued by concurrent transactions,
//          first-committer-wins footprint validation would abort the
//          second one (a note, since sequential execution is fine).
//   TC203  empty window after constant propagation: a `during` window
//          with a symbolic `now` endpoint that resolves empty under the
//          propagated clock — invisible to TC106/TC109, which must skip
//          symbolic endpoints.
#ifndef TCHIMERA_ANALYSIS_FLOW_ANALYZER_H_
#define TCHIMERA_ANALYSIS_FLOW_ANALYZER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "query/ast.h"

namespace tchimera {

// Runs the flow-sensitive pass over `stmts` (a parsed script, in order),
// appending TC2xx findings to `diags`. Pure: touches no database.
void AnalyzeFlow(const std::vector<Statement>& stmts,
                 DiagnosticEngine* diags);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_FLOW_ANALYZER_H_
