// Applies the machine-applicable fix-its attached to diagnostics
// (diagnostic.h) to a source text. The unit of application is the
// diagnostic: either all of a diagnostic's fix-its are applied or none.
// When two diagnostics carry overlapping edits, the earlier one (in
// (offset, code) order) wins and the later one is skipped and reported —
// a re-lint of the rewritten text regenerates the skipped finding with
// fresh offsets, so the CLI's fixpoint loop (tchimera_lint --fix) picks
// it up on the next pass.
#ifndef TCHIMERA_ANALYSIS_FIXER_H_
#define TCHIMERA_ANALYSIS_FIXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"

namespace tchimera {

struct FixResult {
  std::string text;    // the rewritten source
  size_t applied = 0;  // diagnostics whose fix-its were applied
  size_t skipped = 0;  // diagnostics dropped (overlap or out of bounds)
  // One human-readable line per skipped diagnostic, e.g.
  // "TC101 at offset 42: overlaps an earlier fix".
  std::vector<std::string> skipped_reasons;

  bool changed_anything() const { return applied > 0; }
};

// Rewrites `source` by applying every applicable fix-it in `diagnostics`.
// Diagnostics without fix-its are ignored. Edits never cascade: all
// offsets are interpreted against the original `source`.
FixResult ApplyFixIts(std::string_view source,
                      const std::vector<Diagnostic>& diagnostics);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_FIXER_H_
