// Static analysis (lint) of TQL queries. Runs the Definition 3.6 type
// checker first — reusing its inferred per-node annotations — then flags
// statically-detectable problems that the type system alone admits:
//
//   TC101  a FROM binder never referenced by the projections or WHERE
//          (it still multiplies the cartesian product — rarely intended)
//   TC102  an `@ t` projection at an instant outside the class lifespan:
//          no instance can have a value there, the access is always null
//   TC103  a redundant `@` projection: the explicit instant equals the
//          query's evaluation instant, so the implicit snapshot coercion
//          (Section 6.1) already produces the same value
//   TC104  a predicate that is statically unsatisfiable (constant-folds
//          to false, compares against the null literal, or tests
//          membership in an empty collection): the query returns no rows
//   TC105  a predicate or conjunct that is statically true: redundant
//   TC106  an UPDATE whose `during` interval literal is statically empty
//          (both endpoints concrete and inverted): the update asserts a
//          value over no instants
//   TC107  a SNAPSHOT at a concrete instant outside the object's
//          lifespan: the state is statically null
//   TC108  HISTORY of a non-temporal attribute: there is no recorded
//          history, only the single current value
//   TC110  the statement fails static type checking (Definition 3.6)
//   TC112  index DDL that cannot succeed: `create index` naming an
//          unknown class or an attribute the class does not declare, a
//          duplicate index name, or `drop index` on an unknown index
#ifndef TCHIMERA_ANALYSIS_QUERY_ANALYZER_H_
#define TCHIMERA_ANALYSIS_QUERY_ANALYZER_H_

#include "analysis/diagnostic.h"
#include "core/db/database.h"
#include "query/ast.h"

namespace tchimera {

// Lints one SELECT statement against the database schema. Type-checks the
// statement (annotating `inferred` on every expression node) and reports
// findings; a type error is reported as TC110 and stops further query
// lint. Does not evaluate the query.
void AnalyzeSelect(SelectStmt* stmt, const Database& db,
                   DiagnosticEngine* diags);

// Lints a WHEN statement's closed condition (the binder-free temporal
// selection). The projection-instant checks that depend on a single
// evaluation instant (TC103) do not apply: WHEN quantifies over all
// instants.
void AnalyzeWhen(WhenStmt* stmt, const Database& db, DiagnosticEngine* diags);

// Lints the temporal sub-statements against the current database state.
// `position` is the statement's byte offset (Statement::position); these
// forms carry no per-node positions of their own.
//
// AnalyzeUpdate flags a statically empty `during` window (TC106);
// AnalyzeSnapshot flags a concrete `at` instant outside the target
// object's lifespan (TC107); AnalyzeHistory flags history of an
// attribute that keeps no history (TC108). Objects or attributes that do
// not exist are left to the runtime (NotFound), not double-reported.
void AnalyzeUpdate(const UpdateStmt& stmt, size_t position,
                   const Database& db, DiagnosticEngine* diags);

// Lints index DDL against the current schema (TC112): a `create index`
// naming an unknown class or attribute, a duplicate index name, or a
// `drop index` on an index that does not exist. Execution would fail
// with the matching runtime error; the lint surfaces it statically.
void AnalyzeCreateIndex(const CreateIndexStmt& stmt, size_t position,
                        const Database& db, DiagnosticEngine* diags);
void AnalyzeDropIndex(const DropIndexStmt& stmt, size_t position,
                      const Database& db, DiagnosticEngine* diags);
void AnalyzeSnapshot(const SnapshotStmt& stmt, size_t position,
                     const Database& db, DiagnosticEngine* diags);
void AnalyzeHistory(const HistoryStmt& stmt, size_t position,
                    const Database& db, DiagnosticEngine* diags);

}  // namespace tchimera

#endif  // TCHIMERA_ANALYSIS_QUERY_ANALYZER_H_
