#include "analysis/lint_driver.h"

#include <string>
#include <vector>

#include "analysis/flow_analyzer.h"
#include "analysis/query_analyzer.h"
#include "analysis/schema_analyzer.h"
#include "core/db/database.h"
#include "query/interpreter.h"
#include "query/parser.h"

namespace tchimera {
namespace {

// Parse errors carry their position only inside the message text
// ("... at position N ..."); recover it so the finding points somewhere
// useful.
size_t ExtractPosition(const std::string& message) {
  const std::string kMarker = "position ";
  size_t at = message.rfind(kMarker);
  if (at == std::string::npos) return SourceLocation::kNoOffset;
  size_t pos = 0;
  bool any = false;
  for (size_t i = at + kMarker.size(); i < message.size(); ++i) {
    char c = message[i];
    if (c < '0' || c > '9') break;
    pos = pos * 10 + static_cast<size_t>(c - '0');
    any = true;
  }
  return any ? pos : SourceLocation::kNoOffset;
}

// True if the analyzer reported a TC110 (type error) or TC112 (doomed
// index DDL) among the diagnostics appended after index `from` — both
// mean the replay would fail with the very error already reported.
bool ReportedTypeError(const DiagnosticEngine& diags, size_t from) {
  for (size_t i = from; i < diags.diagnostics().size(); ++i) {
    if (diags.diagnostics()[i].code == "TC110" ||
        diags.diagnostics()[i].code == "TC112") {
      return true;
    }
  }
  return false;
}

}  // namespace

void LintTqlScript(std::string_view source, const LintOptions& options,
                   DiagnosticEngine* diags) {
  Result<std::vector<Statement>> parsed = ParseScript(source);
  if (!parsed.ok()) {
    diags->Report("TC010", ExtractPosition(parsed.status().message()),
                  parsed.status().message());
    return;
  }
  std::vector<Statement>& stmts = *parsed;

  // Pass 1: the whole schema at once.
  std::vector<SchemaDecl> decls;
  for (const Statement& s : stmts) {
    if (s.kind == Statement::Kind::kDefineClass) {
      SchemaDecl d;
      d.spec = &s.define_class->spec;
      d.position = s.position;
      d.attribute_spans = &s.define_class->attribute_spans;
      d.c_attribute_spans = &s.define_class->c_attribute_spans;
      decls.push_back(d);
    }
  }
  AnalyzeSchema(decls, nullptr, diags);
  if (options.schema_only) return;

  // Pass 2: replay, linting queries in context. Statements after a failed
  // one still run — best effort, like a compiler after its first error.
  Database db;
  Interpreter interp(&db);
  for (Statement& s : stmts) {
    size_t before = diags->diagnostics().size();
    if (s.kind == Statement::Kind::kSelect) {
      AnalyzeSelect(&*s.select, db, diags);
    } else if (s.kind == Statement::Kind::kWhen) {
      AnalyzeWhen(&*s.when, db, diags);
    } else if (s.kind == Statement::Kind::kUpdate) {
      AnalyzeUpdate(*s.update, s.position, db, diags);
    } else if (s.kind == Statement::Kind::kSnapshot) {
      AnalyzeSnapshot(*s.snapshot, s.position, db, diags);
    } else if (s.kind == Statement::Kind::kHistory) {
      AnalyzeHistory(*s.history, s.position, db, diags);
    } else if (s.kind == Statement::Kind::kCreateIndex) {
      AnalyzeCreateIndex(*s.create_index, s.position, db, diags);
    } else if (s.kind == Statement::Kind::kDropIndex) {
      AnalyzeDropIndex(*s.drop_index, s.position, db, diags);
    }
    if (ReportedTypeError(*diags, before)) {
      continue;  // already reported; execution would fail the same way
    }
    if (Result<std::string> r = interp.ExecuteStatement(&s); !r.ok()) {
      diags->Report("TC111", s.position,
                    "statement failed to execute: " + r.status().ToString(),
                    "the dynamic layer rejected the statement during the "
                    "lint replay");
    }
  }

  // Pass 3: flow-sensitive analysis over the whole statement sequence
  // (TC2xx). Runs on its own abstract state — it never touches the replay
  // database — so a mid-script replay failure does not silence it.
  if (!options.no_flow) AnalyzeFlow(stmts, diags);
}

}  // namespace tchimera
