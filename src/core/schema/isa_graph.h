// The ISA hierarchy (Section 6): a user-defined partial order <=_ISA on
// class identifiers, structured as a DAG whose connected components are
// the "hierarchies" of Invariant 6.2 (roots = classes without
// superclasses; an object can never migrate across hierarchies).
//
// IsaGraph implements the IsaProvider interface consumed by the subtyping
// relation, maintains reachability closures incrementally, and computes
// least common superclasses for the lub.
#ifndef TCHIMERA_CORE_SCHEMA_ISA_GRAPH_H_
#define TCHIMERA_CORE_SCHEMA_ISA_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/types/subtyping.h"

namespace tchimera {

class IsaGraph final : public IsaProvider {
 public:
  IsaGraph() = default;

  // Registers a class under its direct superclasses (which must already be
  // registered; cycles are impossible by construction). Fails with
  // AlreadyExists / NotFound.
  Status AddClass(const std::string& name,
                  const std::vector<std::string>& superclasses);

  bool Contains(std::string_view name) const;

  // IsaProvider:
  bool IsSubclassOf(std::string_view sub,
                    std::string_view super) const override;
  std::optional<std::string> LeastCommonSuperclass(
      std::string_view a, std::string_view b) const override;

  // All (transitive) superclasses of `name`, itself excluded, in
  // topological order from most to least specific (BFS layers).
  std::vector<std::string> Superclasses(std::string_view name) const;
  // All (transitive) subclasses of `name`, itself excluded.
  std::vector<std::string> Subclasses(std::string_view name) const;
  const std::vector<std::string>& DirectSuperclasses(
      std::string_view name) const;

  // The identifier of the connected component (hierarchy) `name` belongs
  // to: the lexicographically smallest root of the component. Two classes
  // admit object migration between them iff they share a hierarchy id
  // (Invariant 6.2).
  Result<std::string> HierarchyId(std::string_view name) const;

  // The root classes (no superclasses), sorted.
  std::vector<std::string> Roots() const;

  // All registered classes, sorted.
  std::vector<std::string> Classes() const;

 private:
  struct Node {
    std::vector<std::string> direct_supers;
    std::vector<std::string> direct_subs;
    std::set<std::string> ancestors;  // transitive supers, self excluded
    std::string hierarchy;            // component id (smallest root)
  };

  const Node* Find(std::string_view name) const;

  std::map<std::string, Node, std::less<>> nodes_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_SCHEMA_ISA_GRAPH_H_
