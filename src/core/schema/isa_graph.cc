#include "core/schema/isa_graph.h"

#include <algorithm>
#include <deque>

namespace tchimera {

const IsaGraph::Node* IsaGraph::Find(std::string_view name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

Status IsaGraph::AddClass(const std::string& name,
                          const std::vector<std::string>& superclasses) {
  if (nodes_.count(name) != 0) {
    return Status::AlreadyExists("class " + name + " already in ISA graph");
  }
  Node node;
  for (const std::string& super : superclasses) {
    auto it = nodes_.find(super);
    if (it == nodes_.end()) {
      return Status::NotFound("superclass " + super + " of " + name +
                              " is not defined");
    }
    node.direct_supers.push_back(super);
    node.ancestors.insert(super);
    node.ancestors.insert(it->second.ancestors.begin(),
                          it->second.ancestors.end());
  }
  // Hierarchy id: the class starts a new component when it has no supers;
  // otherwise it joins (and possibly merges) its supers' components.
  if (superclasses.empty()) {
    node.hierarchy = name;
  } else {
    std::set<std::string> merged;
    for (const std::string& super : superclasses) {
      merged.insert(nodes_.at(super).hierarchy);
    }
    node.hierarchy = *merged.begin();
    if (merged.size() > 1) {
      // Two previously separate hierarchies are being connected; relabel.
      for (auto& [unused, n] : nodes_) {
        if (merged.count(n.hierarchy) != 0) n.hierarchy = node.hierarchy;
      }
    }
  }
  for (const std::string& super : superclasses) {
    nodes_.at(super).direct_subs.push_back(name);
  }
  nodes_.emplace(name, std::move(node));
  return Status::OK();
}

bool IsaGraph::Contains(std::string_view name) const {
  return Find(name) != nullptr;
}

bool IsaGraph::IsSubclassOf(std::string_view sub,
                            std::string_view super) const {
  if (sub == super) return true;  // reflexive, also for unknown names
  const Node* node = Find(sub);
  if (node == nullptr) return false;
  return node->ancestors.find(std::string(super)) != node->ancestors.end();
}

std::optional<std::string> IsaGraph::LeastCommonSuperclass(
    std::string_view a, std::string_view b) const {
  if (a == b) return std::string(a);
  const Node* na = Find(a);
  const Node* nb = Find(b);
  if (na == nullptr || nb == nullptr) return std::nullopt;
  // Common superclasses (each class counts as a superclass of itself for
  // the purpose of the lub: lub(c, sub-of-c) = c).
  std::set<std::string> sa = na->ancestors;
  sa.insert(std::string(a));
  std::set<std::string> sb = nb->ancestors;
  sb.insert(std::string(b));
  std::vector<std::string> common;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(common));
  if (common.empty()) return std::nullopt;
  // The least element, if one exists: a common superclass that is
  // <=_ISA every other common superclass.
  for (const std::string& c : common) {
    bool least = true;
    for (const std::string& d : common) {
      if (!IsSubclassOf(c, d)) {
        least = false;
        break;
      }
    }
    if (least) return c;
  }
  return std::nullopt;  // only incomparable minimal common superclasses
}

std::vector<std::string> IsaGraph::Superclasses(std::string_view name) const {
  const Node* node = Find(name);
  if (node == nullptr) return {};
  // BFS for most-to-least specific layering.
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::deque<std::string> queue(node->direct_supers.begin(),
                                node->direct_supers.end());
  while (!queue.empty()) {
    std::string cur = std::move(queue.front());
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    const Node* n = Find(cur);
    if (n != nullptr) {
      queue.insert(queue.end(), n->direct_supers.begin(),
                   n->direct_supers.end());
    }
    out.push_back(std::move(cur));
  }
  return out;
}

std::vector<std::string> IsaGraph::Subclasses(std::string_view name) const {
  const Node* node = Find(name);
  if (node == nullptr) return {};
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::deque<std::string> queue(node->direct_subs.begin(),
                                node->direct_subs.end());
  while (!queue.empty()) {
    std::string cur = std::move(queue.front());
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    const Node* n = Find(cur);
    if (n != nullptr) {
      queue.insert(queue.end(), n->direct_subs.begin(),
                   n->direct_subs.end());
    }
    out.push_back(std::move(cur));
  }
  return out;
}

const std::vector<std::string>& IsaGraph::DirectSuperclasses(
    std::string_view name) const {
  static const std::vector<std::string>& kEmpty =
      *new std::vector<std::string>();
  const Node* node = Find(name);
  return node == nullptr ? kEmpty : node->direct_supers;
}

Result<std::string> IsaGraph::HierarchyId(std::string_view name) const {
  const Node* node = Find(name);
  if (node == nullptr) {
    return Status::NotFound("class " + std::string(name) +
                            " is not in the ISA graph");
  }
  return node->hierarchy;
}

std::vector<std::string> IsaGraph::Roots() const {
  std::vector<std::string> out;
  for (const auto& [name, node] : nodes_) {
    if (node.direct_supers.empty()) out.push_back(name);
  }
  return out;
}

std::vector<std::string> IsaGraph::Classes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, unused] : nodes_) out.push_back(name);
  return out;
}

}  // namespace tchimera
