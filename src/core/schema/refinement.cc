#include "core/schema/refinement.h"

#include <map>

namespace tchimera {

Status CheckAttributeRefinement(const AttributeDef& inherited,
                                const AttributeDef& refined,
                                const IsaProvider& isa) {
  const Type* t = inherited.type;
  const Type* t_prime = refined.type;
  // Clause 1: T' <=_T T. (Covers temporal-to-temporal refinement through
  // the temporal clause of Definition 6.1.)
  if (IsSubtype(t_prime, t, isa)) return Status::OK();
  // Clause 2: T' = temporal(T'') with T'' <=_T T — a non-temporal domain
  // may be refined into a temporal one.
  if (t_prime->kind() == TypeKind::kTemporal &&
      IsSubtype(t_prime->element(), t, isa)) {
    return Status::OK();
  }
  return Status::TypeError(
      "attribute '" + refined.name + "': domain " + t_prime->ToString() +
      " is not a legal refinement of inherited domain " + t->ToString() +
      " (Rule 6.1; note a temporal attribute can never become "
      "non-temporal)");
}

Status CheckMethodRefinement(const MethodDef& inherited,
                             const MethodDef& refined,
                             const IsaProvider& isa) {
  if (inherited.inputs.size() != refined.inputs.size()) {
    return Status::TypeError("method '" + refined.name +
                             "': arity mismatch with inherited signature");
  }
  // Contravariance for input parameters: the redefined method must accept
  // at least everything the inherited one accepted.
  for (size_t i = 0; i < inherited.inputs.size(); ++i) {
    if (!IsSubtype(inherited.inputs[i], refined.inputs[i], isa)) {
      return Status::TypeError(
          "method '" + refined.name + "': input parameter " +
          std::to_string(i + 1) + " of type " +
          refined.inputs[i]->ToString() +
          " violates the contravariance rule against inherited " +
          inherited.inputs[i]->ToString());
    }
  }
  // Covariance for the result parameter.
  if (!IsSubtype(refined.output, inherited.output, isa)) {
    return Status::TypeError(
        "method '" + refined.name + "': result type " +
        refined.output->ToString() +
        " violates the covariance rule against inherited " +
        inherited.output->ToString());
  }
  return Status::OK();
}

namespace {

bool SameSignature(const AttributeDef& a, const AttributeDef& b) {
  return a.type == b.type;
}

bool SameSignature(const MethodDef& a, const MethodDef& b) {
  return a.inputs == b.inputs && a.output == b.output;
}

// Merges one member kind (attributes or methods).
template <typename Member, typename CheckFn>
Result<std::vector<Member>> MergeMembers(
    const std::string& class_name, const char* member_kind,
    const std::vector<Member>& declared,
    const std::vector<const ClassDef*>& supers,
    const std::vector<Member>& (ClassDef::*getter)() const,
    const IsaProvider& isa, CheckFn check) {
  std::map<std::string, Member> merged;
  std::map<std::string, std::string> source;  // member name -> superclass
  // Gather inherited members; a same-named member inherited twice must
  // agree structurally unless redeclared below.
  std::map<std::string, bool> conflicting;
  for (const ClassDef* super : supers) {
    for (const Member& m : (super->*getter)()) {
      auto it = merged.find(m.name);
      if (it == merged.end()) {
        merged.emplace(m.name, m);
        source.emplace(m.name, super->name());
      } else if (!SameSignature(it->second, m)) {
        conflicting[m.name] = true;
      }
    }
  }
  // Apply declarations (new members or refinements).
  for (const Member& m : declared) {
    auto it = merged.find(m.name);
    if (it != merged.end()) {
      TCH_RETURN_IF_ERROR(check(it->second, m, isa));
      it->second = m;
      conflicting.erase(m.name);
    } else {
      merged.emplace(m.name, m);
    }
  }
  for (const auto& [name, unused] : conflicting) {
    return Status::TypeError(
        "class " + class_name + " inherits conflicting definitions of " +
        member_kind + " '" + name +
        "' from multiple superclasses and does not redeclare it");
  }
  std::vector<Member> out;
  out.reserve(merged.size());
  for (auto& [unused, m] : merged) out.push_back(std::move(m));
  return out;
}

}  // namespace

Result<MergedMembers> MergeClassMembers(
    const ClassSpec& spec,
    const std::vector<const ClassDef*>& direct_superclasses,
    const IsaProvider& isa) {
  MergedMembers out;
  TCH_ASSIGN_OR_RETURN(
      out.attributes,
      MergeMembers(spec.name, "attribute", spec.attributes,
                   direct_superclasses, &ClassDef::attributes, isa,
                   CheckAttributeRefinement));
  TCH_ASSIGN_OR_RETURN(
      out.methods,
      MergeMembers(spec.name, "method", spec.methods, direct_superclasses,
                   &ClassDef::methods, isa, CheckMethodRefinement));
  TCH_ASSIGN_OR_RETURN(
      out.c_attributes,
      MergeMembers(spec.name, "c-attribute", spec.c_attributes,
                   direct_superclasses, &ClassDef::c_attributes, isa,
                   CheckAttributeRefinement));
  TCH_ASSIGN_OR_RETURN(
      out.c_methods,
      MergeMembers(spec.name, "c-method", spec.c_methods,
                   direct_superclasses, &ClassDef::c_methods, isa,
                   CheckMethodRefinement));
  return out;
}

}  // namespace tchimera
