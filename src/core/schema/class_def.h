// Classes (Section 4, Definition 4.1). A T_Chimera class is the 7-tuple
//
//   (c, type, lifespan, attr, meth, history, mc)
//
// where `type` says whether the class itself is static or historical (it
// is historical iff it has at least one *temporal c-attribute*), `attr` /
// `meth` describe instances, `history` is a record value holding the
// c-attribute values plus the two temporal values `ext` and `proper-ext`
// (the members / instances of the class over time), and `mc` is the
// metaclass identifier.
//
// ClassDef also derives the three types associated with a class
// (Section 4): the structural type (all attributes), the historical type
// (the T^- images of the temporal attributes) and the static type (the
// non-temporal attributes), which drive consistency checking (Section 5.2).
#ifndef TCHIMERA_CORE_SCHEMA_CLASS_DEF_H_
#define TCHIMERA_CORE_SCHEMA_CLASS_DEF_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval.h"
#include "core/types/type.h"
#include "core/values/temporal_function.h"
#include "core/values/value.h"

namespace tchimera {

// One instance attribute or c-attribute: (a_name, a_type).
struct AttributeDef {
  std::string name;
  const Type* type = nullptr;

  bool is_temporal() const {
    return type != nullptr && type->kind() == TypeKind::kTemporal;
  }
};

// One method signature: m_name : T1 x ... x Tn -> T.
struct MethodDef {
  std::string name;
  std::vector<const Type*> inputs;
  const Type* output = nullptr;

  std::string ToString() const;
};

// static / historical (the `type` component of Definition 4.1; determined
// by the c-attributes).
enum class ClassKind { kStatic, kHistorical };

const char* ClassKindName(ClassKind kind);

// What a user supplies to define a class; the database turns a validated
// spec into a ClassDef (computing inherited members, the metaclass and the
// initial history).
struct ClassSpec {
  std::string name;
  std::vector<std::string> superclasses;  // direct superclasses
  std::vector<AttributeDef> attributes;   // declared (may refine inherited)
  std::vector<MethodDef> methods;         // declared (may refine inherited)
  std::vector<AttributeDef> c_attributes;
  std::vector<MethodDef> c_methods;
};

class ClassDef {
 public:
  // `effective_*` are the declared members merged with the inherited ones
  // (refinements already applied); validation happens in the database /
  // refinement layer before construction.
  ClassDef(std::string name, TimePoint created_at,
           std::vector<std::string> direct_superclasses,
           std::vector<AttributeDef> effective_attributes,
           std::vector<MethodDef> effective_methods,
           std::vector<AttributeDef> effective_c_attributes,
           std::vector<MethodDef> effective_c_methods);

  // --- the 7-tuple -------------------------------------------------------

  // c: the class identifier.
  const std::string& name() const { return name_; }
  // type: static iff every c-attribute is non-temporal.
  ClassKind kind() const;
  // lifespan (contiguous by construction; classes are never recreated).
  const Interval& lifespan() const { return lifespan_; }
  // attr: the instance attributes (inherited ones included), sorted by
  // name.
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  // meth: the instance methods, sorted by name.
  const std::vector<MethodDef>& methods() const { return methods_; }
  // history: assembled on demand as the record value
  // (a1:v1,...,an:vn, ext:E, proper-ext:PE).
  Value History() const;
  // mc: the metaclass identifier ("m-<name>").
  const std::string& metaclass() const { return metaclass_; }

  // --- structure ---------------------------------------------------------

  const std::vector<std::string>& direct_superclasses() const {
    return superclasses_;
  }
  const std::vector<AttributeDef>& c_attributes() const {
    return c_attributes_;
  }
  const std::vector<MethodDef>& c_methods() const { return c_methods_; }

  // Attribute lookup by name (nullptr when absent).
  const AttributeDef* FindAttribute(std::string_view name) const;
  const AttributeDef* FindCAttribute(std::string_view name) const;
  const MethodDef* FindMethod(std::string_view name) const;

  // True if the class has at least one temporal / one non-temporal
  // instance attribute.
  bool HasTemporalAttributes() const;
  bool HasStaticAttributes() const;

  // --- the three types of Section 4 --------------------------------------

  // record-of(a1:T1,...,an:Tn) over all attributes; nullptr when the class
  // has no attributes.
  const Type* StructuralType() const;
  // record-of over the temporal attributes with temporal() stripped (T^-);
  // nullptr when the class has no temporal attributes (the paper's h_type
  // returns null then).
  const Type* HistoricalType() const;
  // record-of over the non-temporal attributes; nullptr when all
  // attributes are temporal.
  const Type* StaticType() const;

  // --- extent history and c-attribute values (mutated by the database) ---

  // E(t): members over time (sets of oids).
  const TemporalFunction& ext() const { return ext_; }
  // PE(t): instances over time; PE(t) subset of E(t) always.
  const TemporalFunction& proper_ext() const { return proper_ext_; }

  // pi(c, t) as stored in this class: the member oids at instant t.
  // (Function pi of Table 3 is pi(c,t) = C.history.ext(t).)
  std::vector<Oid> ExtentAt(TimePoint t) const;
  std::vector<Oid> ProperExtentAt(TimePoint t) const;
  bool InExtentAt(Oid oid, TimePoint t) const;
  bool InProperExtentAt(Oid oid, TimePoint t) const;
  // All instants at which `oid` is a member: the basis of c_lifespan.
  IntervalSet MemberIntervals(Oid oid, TimePoint current) const;
  // Like MemberIntervals but with ongoing membership kept unclipped
  // (endpoint kNow), for subset checks against ongoing intervals.
  IntervalSet RawMemberIntervals(Oid oid) const;

  // Adds/removes `oid` from the member set (`ext`) or instance set
  // (`proper-ext`) from instant `t` onward.
  Status AddMember(Oid oid, TimePoint t);
  Status RemoveMember(Oid oid, TimePoint t);
  Status AddInstance(Oid oid, TimePoint t);
  Status RemoveInstance(Oid oid, TimePoint t);

  // The current value of c-attribute `name` (for a temporal c-attribute
  // the whole function); null Value when unset.
  Result<Value> CAttributeValue(std::string_view name) const;
  // Sets a c-attribute. For a temporal c-attribute, `v` is the value
  // asserted from instant `t` onward; for a static one `t` is ignored.
  // The caller (database) has already type-checked `v`.
  Status SetCAttribute(std::string_view name, Value v, TimePoint t);

  // Ends the class lifespan at instant `t` (class deletion; classes are
  // never recreated, Section 4).
  Status CloseLifespan(TimePoint t);
  bool alive() const { return lifespan_.is_ongoing(); }

  // Restores raw state from persistent storage (storage layer only; no
  // validation beyond c-attribute count).
  Status RestoreState(const Interval& lifespan, TemporalFunction ext,
                      TemporalFunction proper_ext,
                      std::vector<Value> c_attr_values);

  // Removes every trace of `oid` from ext / proper-ext, at all instants
  // (segments whose member set becomes empty are dropped). Not a model
  // operation: recovery-only surgery used when quarantining an object
  // that failed the post-recovery audit (see storage/recovery.h).
  void ScrubFromExtents(Oid oid);

 private:
  std::string name_;
  Interval lifespan_;
  std::vector<std::string> superclasses_;
  std::vector<AttributeDef> attributes_;    // sorted by name
  std::vector<MethodDef> methods_;          // sorted by name
  std::vector<AttributeDef> c_attributes_;  // sorted by name
  std::vector<MethodDef> c_methods_;        // sorted by name
  std::string metaclass_;

  std::vector<Value> c_attr_values_;  // parallel to c_attributes_
  TemporalFunction ext_;
  TemporalFunction proper_ext_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_SCHEMA_CLASS_DEF_H_
