#include "core/schema/class_def.h"

#include <algorithm>

#include "core/types/type_registry.h"

namespace tchimera {
namespace {

// Adds/removes an oid in a set-valued temporal function over [t, now].
// Unlike a plain AssertFrom (which would overwrite any changes recorded
// after t), this splices per segment, so retroactive membership updates
// preserve later history.
Status UpdateOidSet(TemporalFunction* f, Oid oid, TimePoint t, bool add) {
  Value needle = Value::OfOid(oid);
  // Fast path: the change lands inside the final ongoing segment (every
  // current-time create / migrate / delete does). Read-modify-assert is
  // then an O(set) tail operation instead of a full segment-vector
  // rebuild.
  if (!f->empty()) {
    const auto& last = f->segments().back();
    if (last.interval.is_ongoing() && last.interval.start() <= t) {
      std::vector<Value> elems;
      if (last.value.kind() == ValueKind::kSet) {
        elems = last.value.Elements();
      }
      auto it = std::find(elems.begin(), elems.end(), needle);
      if (add == (it != elems.end())) return Status::OK();  // no change
      if (add) {
        elems.push_back(needle);
      } else {
        elems.erase(it);
      }
      return f->AssertFrom(t, Value::Set(std::move(elems)));
    }
  } else if (add) {
    return f->AssertFrom(t, Value::Set({needle}));
  }
  std::vector<TemporalFunction::Segment> out;
  TimePoint cursor = t;  // next instant of [t, +inf) not yet produced
  bool tail_done = false;
  for (const auto& seg : f->segments()) {
    const Interval& iv = seg.interval;
    if (iv.end() < t) {
      out.push_back(seg);
      continue;
    }
    // Part strictly before t is unchanged.
    if (iv.start() < t) {
      out.push_back({Interval(iv.start(), t - 1), seg.value});
    }
    TimePoint s = std::max(iv.start(), t);
    // Gap [cursor, s-1] inside the update range: membership was empty.
    if (add && cursor < s) {
      out.push_back({Interval(cursor, s - 1), Value::Set({needle})});
    }
    // Overlapping part: modified set.
    std::vector<Value> elems;
    if (seg.value.kind() == ValueKind::kSet) elems = seg.value.Elements();
    auto it = std::find(elems.begin(), elems.end(), needle);
    if (add && it == elems.end()) elems.push_back(needle);
    if (!add && it != elems.end()) elems.erase(it);
    out.push_back({Interval(s, iv.end()), Value::Set(std::move(elems))});
    if (IsNow(iv.end())) tail_done = true;
    cursor = IsNow(iv.end()) ? kNow : iv.end() + 1;
  }
  // Tail [cursor, +inf) uncovered by any segment.
  if (add && !tail_done) {
    out.push_back({Interval(cursor, kNow), Value::Set({needle})});
  }
  TCH_ASSIGN_OR_RETURN(*f, TemporalFunction::Make(std::move(out)));
  return Status::OK();
}

template <typename T>
void SortByName(std::vector<T>* items) {
  std::sort(items->begin(), items->end(),
            [](const T& a, const T& b) { return a.name < b.name; });
}

}  // namespace

std::string MethodDef::ToString() const {
  std::string out = name + ": ";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) out += " x ";
    out += inputs[i]->ToString();
  }
  if (inputs.empty()) out += "()";
  out += " -> ";
  out += output == nullptr ? "void" : output->ToString();
  return out;
}

const char* ClassKindName(ClassKind kind) {
  return kind == ClassKind::kStatic ? "static" : "historical";
}

ClassDef::ClassDef(std::string name, TimePoint created_at,
                   std::vector<std::string> direct_superclasses,
                   std::vector<AttributeDef> effective_attributes,
                   std::vector<MethodDef> effective_methods,
                   std::vector<AttributeDef> effective_c_attributes,
                   std::vector<MethodDef> effective_c_methods)
    : name_(std::move(name)),
      lifespan_(Interval::FromUntilNow(created_at)),
      superclasses_(std::move(direct_superclasses)),
      attributes_(std::move(effective_attributes)),
      methods_(std::move(effective_methods)),
      c_attributes_(std::move(effective_c_attributes)),
      c_methods_(std::move(effective_c_methods)),
      metaclass_("m-" + name_) {
  SortByName(&attributes_);
  SortByName(&methods_);
  SortByName(&c_attributes_);
  SortByName(&c_methods_);
  c_attr_values_.resize(c_attributes_.size());  // all null initially
}

ClassKind ClassDef::kind() const {
  for (const AttributeDef& a : c_attributes_) {
    if (a.is_temporal()) return ClassKind::kHistorical;
  }
  return ClassKind::kStatic;
}

Value ClassDef::History() const {
  std::vector<Value::Field> fields;
  fields.reserve(c_attributes_.size() + 2);
  for (size_t i = 0; i < c_attributes_.size(); ++i) {
    fields.emplace_back(c_attributes_[i].name, c_attr_values_[i]);
  }
  fields.emplace_back("ext", Value::Temporal(ext_));
  fields.emplace_back("proper-ext", Value::Temporal(proper_ext_));
  // Field names are unique by construction ("ext"/"proper-ext" are
  // reserved and rejected as c-attribute names at definition time).
  Result<Value> record = Value::Record(std::move(fields));
  return record.ok() ? std::move(record).value() : Value::Null();
}

const AttributeDef* ClassDef::FindAttribute(std::string_view name) const {
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), name,
      [](const AttributeDef& a, std::string_view n) { return a.name < n; });
  if (it == attributes_.end() || it->name != name) return nullptr;
  return &*it;
}

const AttributeDef* ClassDef::FindCAttribute(std::string_view name) const {
  auto it = std::lower_bound(
      c_attributes_.begin(), c_attributes_.end(), name,
      [](const AttributeDef& a, std::string_view n) { return a.name < n; });
  if (it == c_attributes_.end() || it->name != name) return nullptr;
  return &*it;
}

const MethodDef* ClassDef::FindMethod(std::string_view name) const {
  auto it = std::lower_bound(
      methods_.begin(), methods_.end(), name,
      [](const MethodDef& m, std::string_view n) { return m.name < n; });
  if (it == methods_.end() || it->name != name) return nullptr;
  return &*it;
}

bool ClassDef::HasTemporalAttributes() const {
  for (const AttributeDef& a : attributes_) {
    if (a.is_temporal()) return true;
  }
  return false;
}

bool ClassDef::HasStaticAttributes() const {
  for (const AttributeDef& a : attributes_) {
    if (!a.is_temporal()) return true;
  }
  return false;
}

const Type* ClassDef::StructuralType() const {
  if (attributes_.empty()) return nullptr;
  std::vector<RecordField> fields;
  fields.reserve(attributes_.size());
  for (const AttributeDef& a : attributes_) {
    fields.push_back({a.name, a.type});
  }
  Result<const Type*> r = types::RecordOf(std::move(fields));
  return r.ok() ? r.value() : nullptr;
}

const Type* ClassDef::HistoricalType() const {
  std::vector<RecordField> fields;
  for (const AttributeDef& a : attributes_) {
    if (!a.is_temporal()) continue;
    // (a_i, T'_i) with T'_i = T^-(T_i).
    fields.push_back({a.name, a.type->element()});
  }
  if (fields.empty()) return nullptr;
  Result<const Type*> r = types::RecordOf(std::move(fields));
  return r.ok() ? r.value() : nullptr;
}

const Type* ClassDef::StaticType() const {
  std::vector<RecordField> fields;
  for (const AttributeDef& a : attributes_) {
    if (a.is_temporal()) continue;
    fields.push_back({a.name, a.type});
  }
  if (fields.empty()) return nullptr;
  Result<const Type*> r = types::RecordOf(std::move(fields));
  return r.ok() ? r.value() : nullptr;
}

std::vector<Oid> ClassDef::ExtentAt(TimePoint t) const {
  std::vector<Oid> out;
  const Value* v = ext_.At(t);
  if (v != nullptr && v->kind() == ValueKind::kSet) {
    for (const Value& e : v->Elements()) out.push_back(e.AsOid());
  }
  return out;
}

std::vector<Oid> ClassDef::ProperExtentAt(TimePoint t) const {
  std::vector<Oid> out;
  const Value* v = proper_ext_.At(t);
  if (v != nullptr && v->kind() == ValueKind::kSet) {
    for (const Value& e : v->Elements()) out.push_back(e.AsOid());
  }
  return out;
}

bool ClassDef::InExtentAt(Oid oid, TimePoint t) const {
  const Value* v = ext_.At(t);
  return v != nullptr && v->kind() == ValueKind::kSet &&
         v->Contains(Value::OfOid(oid));
}

bool ClassDef::InProperExtentAt(Oid oid, TimePoint t) const {
  const Value* v = proper_ext_.At(t);
  return v != nullptr && v->kind() == ValueKind::kSet &&
         v->Contains(Value::OfOid(oid));
}

IntervalSet ClassDef::MemberIntervals(Oid oid, TimePoint current) const {
  std::vector<Interval> out;
  Value needle = Value::OfOid(oid);
  for (const auto& seg : ext_.segments()) {
    if (seg.value.kind() == ValueKind::kSet && seg.value.Contains(needle)) {
      Interval r = seg.interval.Resolve(current);
      if (!r.empty()) out.push_back(r);
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet ClassDef::RawMemberIntervals(Oid oid) const {
  std::vector<Interval> out;
  Value needle = Value::OfOid(oid);
  for (const auto& seg : ext_.segments()) {
    if (seg.value.kind() == ValueKind::kSet && seg.value.Contains(needle)) {
      out.push_back(seg.interval);
    }
  }
  return IntervalSet(std::move(out));
}

Status ClassDef::AddMember(Oid oid, TimePoint t) {
  return UpdateOidSet(&ext_, oid, t, /*add=*/true);
}
Status ClassDef::RemoveMember(Oid oid, TimePoint t) {
  return UpdateOidSet(&ext_, oid, t, /*add=*/false);
}
Status ClassDef::AddInstance(Oid oid, TimePoint t) {
  return UpdateOidSet(&proper_ext_, oid, t, /*add=*/true);
}
Status ClassDef::RemoveInstance(Oid oid, TimePoint t) {
  return UpdateOidSet(&proper_ext_, oid, t, /*add=*/false);
}

Result<Value> ClassDef::CAttributeValue(std::string_view name) const {
  for (size_t i = 0; i < c_attributes_.size(); ++i) {
    if (c_attributes_[i].name == name) return c_attr_values_[i];
  }
  return Status::NotFound("class " + name_ + " has no c-attribute '" +
                          std::string(name) + "'");
}

Status ClassDef::SetCAttribute(std::string_view name, Value v, TimePoint t) {
  for (size_t i = 0; i < c_attributes_.size(); ++i) {
    if (c_attributes_[i].name != name) continue;
    if (c_attributes_[i].is_temporal()) {
      TemporalFunction f;
      if (c_attr_values_[i].kind() == ValueKind::kTemporal) {
        f = c_attr_values_[i].AsTemporal();
      }
      TCH_RETURN_IF_ERROR(f.AssertFrom(t, std::move(v)));
      c_attr_values_[i] = Value::Temporal(std::move(f));
    } else {
      c_attr_values_[i] = std::move(v);
    }
    return Status::OK();
  }
  return Status::NotFound("class " + name_ + " has no c-attribute '" +
                          std::string(name) + "'");
}

Status ClassDef::RestoreState(const Interval& lifespan, TemporalFunction ext,
                              TemporalFunction proper_ext,
                              std::vector<Value> c_attr_values) {
  if (c_attr_values.size() != c_attributes_.size()) {
    return Status::Corruption(
        "class " + name_ + ": restored " +
        std::to_string(c_attr_values.size()) + " c-attribute values for " +
        std::to_string(c_attributes_.size()) + " c-attributes");
  }
  lifespan_ = lifespan;
  ext_ = std::move(ext);
  proper_ext_ = std::move(proper_ext);
  c_attr_values_ = std::move(c_attr_values);
  return Status::OK();
}

namespace {

// Rebuilds `f` with `oid` removed from every set-valued segment.
TemporalFunction WithoutOid(const TemporalFunction& f, Oid oid) {
  const Value target = Value::OfOid(oid);
  std::vector<TemporalFunction::Segment> segments;
  segments.reserve(f.segment_count());
  for (const TemporalFunction::Segment& seg : f.segments()) {
    if (seg.value.kind() != ValueKind::kSet) {
      segments.push_back(seg);
      continue;
    }
    std::vector<Value> kept;
    kept.reserve(seg.value.Elements().size());
    for (const Value& e : seg.value.Elements()) {
      if (!(e == target)) kept.push_back(e);
    }
    if (kept.empty()) continue;  // empty pieces leave the domain entirely
    segments.push_back({seg.interval, Value::Set(std::move(kept))});
  }
  // The segments came from a valid function, so they stay disjoint and
  // Make cannot fail; fall back to the original defensively.
  Result<TemporalFunction> rebuilt =
      TemporalFunction::Make(std::move(segments));
  return rebuilt.ok() ? *std::move(rebuilt) : f;
}

}  // namespace

void ClassDef::ScrubFromExtents(Oid oid) {
  ext_ = WithoutOid(ext_, oid);
  proper_ext_ = WithoutOid(proper_ext_, oid);
}

Status ClassDef::CloseLifespan(TimePoint t) {
  if (!lifespan_.is_ongoing()) {
    return Status::FailedPrecondition("class " + name_ +
                                      " is already deleted");
  }
  if (t < lifespan_.start()) {
    return Status::TemporalError("cannot close lifespan of class " + name_ +
                                 " before its creation");
  }
  lifespan_ = Interval(lifespan_.start(), t);
  ext_.CloseAt(t);
  proper_ext_.CloseAt(t);
  return Status::OK();
}

}  // namespace tchimera
