// Inheritance-time validation (Section 6.1):
//
//   Rule 6.1 (refinement of attribute domains): a subclass may redeclare
//   an inherited attribute of domain T with domain T' provided
//     (1) T' <=_T T, or
//     (2) T' = temporal(T'') with T'' <=_T T
//   — i.e. a non-temporal attribute may become temporal (never the
//   reverse; substitutability is then obtained through the snapshot
//   coercion, implemented in the object layer).
//
//   Method redefinition must respect the covariance rule for the result
//   and the contravariance rule for the inputs.
//
// MergeClassMembers applies these rules while computing a subclass's
// effective attribute/method lists from its declared members and its
// superclasses' effective members.
#ifndef TCHIMERA_CORE_SCHEMA_REFINEMENT_H_
#define TCHIMERA_CORE_SCHEMA_REFINEMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/schema/class_def.h"
#include "core/types/subtyping.h"

namespace tchimera {

// Checks Rule 6.1 for a single attribute: may `refined` legally override
// `inherited` in a subclass?
Status CheckAttributeRefinement(const AttributeDef& inherited,
                                const AttributeDef& refined,
                                const IsaProvider& isa);

// Checks method redefinition: same arity, covariant output, contravariant
// inputs.
Status CheckMethodRefinement(const MethodDef& inherited,
                             const MethodDef& refined, const IsaProvider& isa);

// The result of merging declared members with inherited ones.
struct MergedMembers {
  std::vector<AttributeDef> attributes;
  std::vector<MethodDef> methods;
  std::vector<AttributeDef> c_attributes;
  std::vector<MethodDef> c_methods;
};

// Computes the effective members of a class declared by `spec` whose
// superclasses have the given effective members. Validates every
// redeclaration against the refinement rules; when two superclasses both
// provide an attribute/method with the same name, their types must agree
// unless the subclass redeclares it (multiple-inheritance conflicts are
// reported, not silently resolved).
Result<MergedMembers> MergeClassMembers(
    const ClassSpec& spec,
    const std::vector<const ClassDef*>& direct_superclasses,
    const IsaProvider& isa);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_SCHEMA_REFINEMENT_H_
