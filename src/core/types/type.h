// The T_Chimera type system (Section 3.1 of the paper).
//
//   - basic predefined value types BVT: integer, real, bool, char, string,
//     plus `time` (added by T_Chimera);
//   - object types OT: one per class identifier;
//   - structured value types: set-of(T), list-of(T),
//     record-of(a1:T1,...,an:Tn);
//   - temporal types TT: temporal(T) for each *Chimera* type T
//     (Definition 3.3) — temporal may not be nested inside temporal;
//   - T_Chimera types (Definition 3.4) close set-of / list-of / record-of
//     over temporal types as well.
//
// In addition to the paper's types we provide the pseudo-type `any`, the
// bottom of the subtype order. It is the inferred element type of the empty
// collection and the inferred type of `null` (the paper's rule "null : T
// for all T"); it never appears in a class signature.
//
// Types are immutable and interned: two structurally equal types are the
// same pointer (see type_registry.h), so type equality is pointer equality.
#ifndef TCHIMERA_CORE_TYPES_TYPE_H_
#define TCHIMERA_CORE_TYPES_TYPE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tchimera {

enum class TypeKind {
  kAny,      // bottom pseudo-type (implementation extension, see above)
  kInteger,  // BVT
  kReal,     // BVT
  kBool,     // BVT
  kChar,     // BVT
  kString,   // BVT
  kTime,     // BVT (added by T_Chimera, Section 3.1)
  kObject,   // a class identifier used as a type (Definition 3.1)
  kSet,      // set-of(T)
  kList,     // list-of(T)
  kRecord,   // record-of(a1:T1,...,an:Tn)
  kTemporal  // temporal(T), T a Chimera type (Definition 3.3)
};

const char* TypeKindName(TypeKind kind);

class Type;

// One component of a record type. Fields are kept sorted by name; the
// paper's record types are sets of (name, type) pairs, so order carries no
// meaning.
struct RecordField {
  std::string name;
  const Type* type;

  friend bool operator==(const RecordField& a, const RecordField& b) {
    return a.name == b.name && a.type == b.type;
  }
};

// An interned, immutable type node. Construct through the factory
// functions in type_registry.h; never directly.
class Type {
 public:
  TypeKind kind() const { return kind_; }

  bool IsBasicValueType() const {
    switch (kind_) {
      case TypeKind::kInteger:
      case TypeKind::kReal:
      case TypeKind::kBool:
      case TypeKind::kChar:
      case TypeKind::kString:
      case TypeKind::kTime:
        return true;
      default:
        return false;
    }
  }
  bool IsObjectType() const { return kind_ == TypeKind::kObject; }
  bool IsTemporal() const { return kind_ == TypeKind::kTemporal; }
  bool IsCollection() const {
    return kind_ == TypeKind::kSet || kind_ == TypeKind::kList;
  }
  bool IsRecord() const { return kind_ == TypeKind::kRecord; }

  // True if this is a *Chimera* type CT = VT u OT (Definition 3.2): no
  // temporal constructor anywhere in the term, and no `any`.
  bool IsChimeraType() const { return !contains_any_ && !contains_temporal_; }

  // True if the `any` pseudo-type occurs anywhere in this type.
  bool ContainsAny() const { return contains_any_; }

  // True if a temporal(...) constructor occurs anywhere in this type.
  bool ContainsTemporal() const { return contains_temporal_; }

  // The class identifier; requires kind() == kObject.
  const std::string& class_name() const { return name_; }

  // The component type of set-of / list-of / temporal; requires one of
  // those kinds.
  const Type* element() const { return element_; }

  // The fields of a record type, sorted by name; requires kind() == kRecord.
  const std::vector<RecordField>& fields() const { return fields_; }
  // The type of field `name`, or nullptr if no such field (or not a record).
  const Type* FieldType(std::string_view name) const;

  // Canonical syntax, e.g. "temporal(set-of(project))" or
  // "record-of(name:string,score:temporal(integer))".
  const std::string& ToString() const { return printed_; }

 private:
  friend struct TypeFactory;  // the interning factory in type_registry.cc
  Type() = default;

  TypeKind kind_ = TypeKind::kAny;
  std::string name_;                 // kObject: class identifier
  const Type* element_ = nullptr;    // kSet / kList / kTemporal
  std::vector<RecordField> fields_;  // kRecord
  bool contains_any_ = false;
  bool contains_temporal_ = false;
  std::string printed_;  // cached ToString
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TYPES_TYPE_H_
