#include "core/types/type_registry.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"

namespace tchimera {

// Befriended by Type: the only code allowed to construct Type nodes.
// The registry maps a canonical key (the printed form) to the interned
// node. Leaked on purpose: types have static-storage-duration semantics,
// and leaking guarantees pointer stability with a trivial shutdown.
//
// The registry is process-global mutable state reached from const read
// paths (type-checking a query interns composite types), so with the
// concurrent reader engine (core/db/versioned_db.h) it is guarded by a
// mutex. Interning is rare after warm-up — every distinct type is built
// once and the returned pointers are immutable — so the lock is not a
// contention point.
struct TypeFactory {
  static std::mutex& Mutex() {
    static auto& mu = *new std::mutex();
    return mu;
  }

  static std::unordered_map<std::string, const Type*>& Map() {
    static auto& m = *new std::unordered_map<std::string, const Type*>();
    return m;
  }

  static const Type* Intern(Type&& proto) {
    std::lock_guard<std::mutex> lock(Mutex());
    auto& map = Map();
    auto it = map.find(proto.printed_);
    if (it != map.end()) return it->second;
    auto* node = new Type(std::move(proto));
    map.emplace(node->printed_, node);
    return node;
  }

  static const Type* MakeLeaf(TypeKind kind) {
    Type proto;
    proto.kind_ = kind;
    proto.contains_any_ = kind == TypeKind::kAny;
    proto.printed_ = TypeKindName(kind);
    return Intern(std::move(proto));
  }

  static const Type* MakeObject(std::string_view class_name) {
    Type proto;
    proto.kind_ = TypeKind::kObject;
    proto.name_ = std::string(class_name);
    proto.printed_ = proto.name_;
    return Intern(std::move(proto));
  }

  static const Type* MakeCollection(TypeKind kind, const Type* element) {
    Type proto;
    proto.kind_ = kind;
    proto.element_ = element;
    proto.contains_any_ = element->ContainsAny();
    proto.contains_temporal_ = element->ContainsTemporal();
    proto.printed_ = std::string(TypeKindName(kind)) + "(" +
                     element->ToString() + ")";
    return Intern(std::move(proto));
  }

  static const Type* MakeRecord(std::vector<RecordField> fields) {
    Type proto;
    proto.kind_ = TypeKind::kRecord;
    proto.printed_ = "record-of(";
    for (size_t i = 0; i < fields.size(); ++i) {
      proto.contains_any_ = proto.contains_any_ || fields[i].type->ContainsAny();
      proto.contains_temporal_ =
          proto.contains_temporal_ || fields[i].type->ContainsTemporal();
      if (i > 0) proto.printed_ += ",";
      proto.printed_ += fields[i].name + ":" + fields[i].type->ToString();
    }
    proto.printed_ += ")";
    proto.fields_ = std::move(fields);
    return Intern(std::move(proto));
  }

  static const Type* MakeTemporal(const Type* element) {
    Type proto;
    proto.kind_ = TypeKind::kTemporal;
    proto.element_ = element;
    proto.contains_any_ = element->ContainsAny();
    proto.contains_temporal_ = true;
    proto.printed_ = "temporal(" + element->ToString() + ")";
    return Intern(std::move(proto));
  }
};

}  // namespace tchimera

namespace tchimera::types {

const Type* Any() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kAny);
  return t;
}
const Type* Integer() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kInteger);
  return t;
}
const Type* Real() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kReal);
  return t;
}
const Type* Bool() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kBool);
  return t;
}
const Type* Char() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kChar);
  return t;
}
const Type* String() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kString);
  return t;
}
const Type* Time() {
  static const Type* t = TypeFactory::MakeLeaf(TypeKind::kTime);
  return t;
}

const Type* Object(std::string_view class_name) {
  return TypeFactory::MakeObject(class_name);
}

const Type* SetOf(const Type* element) {
  return TypeFactory::MakeCollection(TypeKind::kSet, element);
}

const Type* ListOf(const Type* element) {
  return TypeFactory::MakeCollection(TypeKind::kList, element);
}

Result<const Type*> RecordOf(std::vector<RecordField> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const RecordField& a, const RecordField& b) {
              return a.name < b.name;
            });
  for (size_t i = 0; i < fields.size(); ++i) {
    if (!IsIdentifier(fields[i].name)) {
      return Status::InvalidArgument("record field name '" + fields[i].name +
                                     "' is not a valid identifier");
    }
    if (i > 0 && fields[i].name == fields[i - 1].name) {
      return Status::InvalidArgument("duplicate record field name '" +
                                     fields[i].name + "'");
    }
    if (fields[i].type == nullptr) {
      return Status::InvalidArgument("record field '" + fields[i].name +
                                     "' has null type");
    }
  }
  return TypeFactory::MakeRecord(std::move(fields));
}

Result<const Type*> Temporal(const Type* element) {
  if (element == nullptr) {
    return Status::InvalidArgument("temporal() requires an element type");
  }
  if (element->ContainsTemporal()) {
    // Definition 3.3: temporal(T) is defined only for T in CT, which rules
    // out nesting temporal inside temporal. (`any` inside the element is
    // tolerated here because type inference produces it for empty
    // collections/histories; class signatures reject it separately.)
    return Status::TypeError(
        "temporal(" + element->ToString() +
        ") is not a T_Chimera type: the argument of temporal() must be a "
        "Chimera type (Definition 3.3)");
  }
  return TypeFactory::MakeTemporal(element);
}

Result<const Type*> TMinus(const Type* t) {
  if (t == nullptr || t->kind() != TypeKind::kTemporal) {
    return Status::TypeError(
        "T^- is defined on temporal types only; got " +
        std::string(t == nullptr ? "null" : t->ToString()));
  }
  return t->element();
}

size_t InternedTypeCount() {
  std::lock_guard<std::mutex> lock(TypeFactory::Mutex());
  return TypeFactory::Map().size();
}

}  // namespace tchimera::types
