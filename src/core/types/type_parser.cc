#include "core/types/type_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "core/types/type_registry.h"

namespace tchimera {
namespace {

// A minimal recursive-descent parser over a string_view cursor.
class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  Result<const Type*> Parse() {
    TCH_ASSIGN_OR_RETURN(const Type* t, ParseType());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after type at " +
                                     std::to_string(pos_) + " in '" +
                                     std::string(text_) + "'");
    }
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Reads an identifier token ([A-Za-z_][A-Za-z0-9_-]*). Empty on failure.
  std::string_view ReadIdentifier() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    return text_.substr(start, pos_ - start);
  }

  Result<const Type*> ParseType() {
    std::string_view id = ReadIdentifier();
    if (id.empty()) {
      return Status::InvalidArgument("expected a type at position " +
                                     std::to_string(pos_) + " in '" +
                                     std::string(text_) + "'");
    }
    if (id == "integer") return types::Integer();
    if (id == "real") return types::Real();
    if (id == "bool" || id == "boolean") return types::Bool();
    if (id == "char" || id == "character") return types::Char();
    if (id == "string") return types::String();
    if (id == "time") return types::Time();
    if (id == "any") return types::Any();
    if (id == "set-of" || id == "list-of" || id == "temporal") {
      if (!Consume('(')) {
        return Status::InvalidArgument("expected '(' after '" +
                                       std::string(id) + "'");
      }
      TCH_ASSIGN_OR_RETURN(const Type* element, ParseType());
      if (!Consume(')')) {
        return Status::InvalidArgument("expected ')' closing '" +
                                       std::string(id) + "'");
      }
      if (id == "set-of") return types::SetOf(element);
      if (id == "list-of") return types::ListOf(element);
      return types::Temporal(element);
    }
    if (id == "record-of") {
      if (!Consume('(')) {
        return Status::InvalidArgument("expected '(' after 'record-of'");
      }
      std::vector<RecordField> fields;
      SkipSpace();
      if (!Consume(')')) {
        while (true) {
          std::string_view name = ReadIdentifier();
          if (name.empty()) {
            return Status::InvalidArgument(
                "expected a field name in record-of at position " +
                std::to_string(pos_));
          }
          if (!Consume(':')) {
            return Status::InvalidArgument("expected ':' after field name '" +
                                           std::string(name) + "'");
          }
          TCH_ASSIGN_OR_RETURN(const Type* ft, ParseType());
          fields.push_back({std::string(name), ft});
          if (Consume(')')) break;
          if (!Consume(',')) {
            return Status::InvalidArgument(
                "expected ',' or ')' in record-of field list");
          }
        }
      }
      return types::RecordOf(std::move(fields));
    }
    // Any other identifier denotes an object type (a class name,
    // Definition 3.1).
    return types::Object(id);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<const Type*> ParseType(std::string_view text) {
  return TypeParser(text).Parse();
}

}  // namespace tchimera
