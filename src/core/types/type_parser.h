// Parser for the canonical textual type syntax produced by Type::ToString:
//
//   type      := "integer" | "real" | "bool" | "char" | "string" | "time"
//              | "any"
//              | "set-of" "(" type ")"
//              | "list-of" "(" type ")"
//              | "temporal" "(" type ")"
//              | "record-of" "(" [field ("," field)*] ")"
//              | identifier                     (an object type / class name)
//   field     := identifier ":" type
//
// Whitespace is permitted between tokens. ParseType(ToString(t)) == t for
// every interned type (round-trip property, tested).
#ifndef TCHIMERA_CORE_TYPES_TYPE_PARSER_H_
#define TCHIMERA_CORE_TYPES_TYPE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "core/types/type.h"

namespace tchimera {

// Parses `text` as a T_Chimera type. Fails with InvalidArgument on syntax
// errors and TypeError on well-formed but illegal types (e.g. nested
// temporal).
Result<const Type*> ParseType(std::string_view text);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TYPES_TYPE_PARSER_H_
