// The subtype relation <=_T of Definition 6.1 and the derived least upper
// bound (lub) used by the typing rule for sets (Definition 3.6).
//
// Subtyping over object types is induced by the ISA hierarchy, which lives
// in the schema layer; to keep the type system independent of the schema
// the relation is parameterized by an IsaProvider.
//
// Note on record subtyping: Definition 6.1 as printed in the paper relates
// the fields as T'_i <=_T T''_i (contravariantly). Taken literally this
// contradicts Theorem 6.1 ([[T1]]_t subset of [[T2]]_t whenever
// T1 <=_T T2): a record value whose field values are legal for the
// *sub*type's field types must also be legal for the *super*type's. We
// therefore implement the covariant reading — T2 <=_T T1 iff each field
// type of T2 is a subtype of the corresponding field type of T1 — which is
// also the rule used by Rule 6.1's examples and by the Chimera base model.
// This is recorded as a paper erratum in DESIGN.md.
#ifndef TCHIMERA_CORE_TYPES_SUBTYPING_H_
#define TCHIMERA_CORE_TYPES_SUBTYPING_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/types/type.h"

namespace tchimera {

// The ISA hierarchy seen by the type system (a partial order <=_ISA on
// class identifiers, Section 6).
class IsaProvider {
 public:
  virtual ~IsaProvider() = default;

  // True iff `sub` <=_ISA `super` (reflexive: every class is a subclass of
  // itself). Unknown class names are only related to themselves.
  virtual bool IsSubclassOf(std::string_view sub,
                            std::string_view super) const = 0;

  // The least class c with a <=_ISA c and b <=_ISA c, if a unique least
  // one exists; nullopt otherwise (unrelated hierarchies, or an ambiguous
  // pair of uncomparable common superclasses in a DAG).
  virtual std::optional<std::string> LeastCommonSuperclass(
      std::string_view a, std::string_view b) const = 0;
};

// The trivial hierarchy: no user classes are related. Useful for value-only
// code and tests.
class EmptyIsaProvider final : public IsaProvider {
 public:
  bool IsSubclassOf(std::string_view sub,
                    std::string_view super) const override {
    return sub == super;
  }
  std::optional<std::string> LeastCommonSuperclass(
      std::string_view a, std::string_view b) const override {
    if (a == b) return std::string(a);
    return std::nullopt;
  }
};

// True iff sub <=_T super according to Definition 6.1 (with `any` as
// bottom). Reflexive and transitive.
bool IsSubtype(const Type* sub, const Type* super, const IsaProvider& isa);

// Least upper bound of {a, b} in the <=_T poset. Fails with TypeError when
// the two types have no upper bound (e.g. integer vs string) or no *least*
// one (ambiguous common superclasses).
Result<const Type*> LeastUpperBound(const Type* a, const Type* b,
                                    const IsaProvider& isa);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TYPES_SUBTYPING_H_
