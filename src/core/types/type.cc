#include "core/types/type.h"

#include <algorithm>

namespace tchimera {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kAny:
      return "any";
    case TypeKind::kInteger:
      return "integer";
    case TypeKind::kReal:
      return "real";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kString:
      return "string";
    case TypeKind::kTime:
      return "time";
    case TypeKind::kObject:
      return "object";
    case TypeKind::kSet:
      return "set-of";
    case TypeKind::kList:
      return "list-of";
    case TypeKind::kRecord:
      return "record-of";
    case TypeKind::kTemporal:
      return "temporal";
  }
  return "unknown";
}

const Type* Type::FieldType(std::string_view name) const {
  if (kind_ != TypeKind::kRecord) return nullptr;
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), name,
      [](const RecordField& f, std::string_view n) { return f.name < n; });
  if (it == fields_.end() || it->name != name) return nullptr;
  return it->type;
}

}  // namespace tchimera
