// Factory and interning registry for T_Chimera types.
//
// All Type nodes live in a process-wide registry; structurally equal types
// intern to the same pointer, so `==` on `const Type*` is type equality.
// The registry is append-only and never destroyed (trivial-destruction rule
// for static storage), which also guarantees pointer stability.
#ifndef TCHIMERA_CORE_TYPES_TYPE_REGISTRY_H_
#define TCHIMERA_CORE_TYPES_TYPE_REGISTRY_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/types/type.h"

namespace tchimera::types {

// Basic predefined value types (BVT).
const Type* Any();
const Type* Integer();
const Type* Real();
const Type* Bool();
const Type* Char();
const Type* String();
const Type* Time();

// The object type for class `class_name` (Definition 3.1).
const Type* Object(std::string_view class_name);

// Structured types (Definition 3.4). Element/field types may be any
// T_Chimera type, including temporal ones.
const Type* SetOf(const Type* element);
const Type* ListOf(const Type* element);

// record-of(...). Field names must be distinct identifiers; fields are
// canonicalized by sorting on name.
Result<const Type*> RecordOf(std::vector<RecordField> fields);

// temporal(T) (Definition 3.3). Fails with TypeError unless T is a Chimera
// type (no nested temporal, no `any`).
Result<const Type*> Temporal(const Type* element);

// The function T^- of the paper: maps temporal(T) to its static
// counterpart T. Fails with TypeError when `t` is not a temporal type.
Result<const Type*> TMinus(const Type* t);

// Number of types interned so far (diagnostics / benchmarks).
size_t InternedTypeCount();

}  // namespace tchimera::types

#endif  // TCHIMERA_CORE_TYPES_TYPE_REGISTRY_H_
