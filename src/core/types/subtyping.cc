#include "core/types/subtyping.h"

#include <vector>

#include "core/types/type_registry.h"

namespace tchimera {

bool IsSubtype(const Type* sub, const Type* super, const IsaProvider& isa) {
  if (sub == nullptr || super == nullptr) return false;
  // T1 = T2 (types are interned, so pointer equality is type equality).
  if (sub == super) return true;
  // `any` is the bottom element (implementation extension: the type of
  // null and of empty collections).
  if (sub->kind() == TypeKind::kAny) return true;
  if (sub->kind() != super->kind()) return false;
  switch (sub->kind()) {
    case TypeKind::kObject:
      // T2, T1 in OT and T2 <=_ISA T1.
      return isa.IsSubclassOf(sub->class_name(), super->class_name());
    case TypeKind::kSet:
    case TypeKind::kList:
      // set-of / list-of are covariant in the element type.
      return IsSubtype(sub->element(), super->element(), isa);
    case TypeKind::kTemporal:
      // temporal(T2') <=_T temporal(T1') iff T2' <=_T T1'.
      return IsSubtype(sub->element(), super->element(), isa);
    case TypeKind::kRecord: {
      // Same field names, covariant field types (see header note on the
      // paper's erratum).
      const auto& sub_fields = sub->fields();
      const auto& super_fields = super->fields();
      if (sub_fields.size() != super_fields.size()) return false;
      for (size_t i = 0; i < sub_fields.size(); ++i) {
        if (sub_fields[i].name != super_fields[i].name) return false;
        if (!IsSubtype(sub_fields[i].type, super_fields[i].type, isa)) {
          return false;
        }
      }
      return true;
    }
    default:
      // Distinct basic types are unrelated.
      return false;
  }
}

Result<const Type*> LeastUpperBound(const Type* a, const Type* b,
                                    const IsaProvider& isa) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("lub of null type");
  }
  if (a == b) return a;
  if (a->kind() == TypeKind::kAny) return b;
  if (b->kind() == TypeKind::kAny) return a;
  if (a->kind() != b->kind()) {
    return Status::TypeError("types " + a->ToString() + " and " +
                             b->ToString() + " have no upper bound");
  }
  switch (a->kind()) {
    case TypeKind::kObject: {
      std::optional<std::string> lcs =
          isa.LeastCommonSuperclass(a->class_name(), b->class_name());
      if (!lcs.has_value()) {
        return Status::TypeError("classes " + a->class_name() + " and " +
                                 b->class_name() +
                                 " have no least common superclass");
      }
      return types::Object(*lcs);
    }
    case TypeKind::kSet: {
      TCH_ASSIGN_OR_RETURN(const Type* e,
                           LeastUpperBound(a->element(), b->element(), isa));
      return types::SetOf(e);
    }
    case TypeKind::kList: {
      TCH_ASSIGN_OR_RETURN(const Type* e,
                           LeastUpperBound(a->element(), b->element(), isa));
      return types::ListOf(e);
    }
    case TypeKind::kTemporal: {
      TCH_ASSIGN_OR_RETURN(const Type* e,
                           LeastUpperBound(a->element(), b->element(), isa));
      return types::Temporal(e);
    }
    case TypeKind::kRecord: {
      const auto& fa = a->fields();
      const auto& fb = b->fields();
      if (fa.size() != fb.size()) {
        return Status::TypeError("record types " + a->ToString() + " and " +
                                 b->ToString() +
                                 " have different field sets");
      }
      std::vector<RecordField> fields;
      fields.reserve(fa.size());
      for (size_t i = 0; i < fa.size(); ++i) {
        if (fa[i].name != fb[i].name) {
          return Status::TypeError("record types " + a->ToString() + " and " +
                                   b->ToString() +
                                   " have different field sets");
        }
        TCH_ASSIGN_OR_RETURN(
            const Type* ft, LeastUpperBound(fa[i].type, fb[i].type, isa));
        fields.push_back({fa[i].name, ft});
      }
      return types::RecordOf(std::move(fields));
    }
    default:
      // Distinct basic types (a != b was already checked).
      return Status::TypeError("types " + a->ToString() + " and " +
                               b->ToString() + " have no upper bound");
  }
}

}  // namespace tchimera
