// The four notions of object equality of Section 5.3:
//
//   Definition 5.7  equality by identity        EqualByIdentity
//   Definition 5.8  value equality              EqualByValue
//   Definition 5.9  instantaneous-value eq.     InstantaneousEqualityWitness
//   Definition 5.10 weak-value equality         WeakEqualityWitness
//
// The implication lattice (Section 5.3) holds by construction and is
// verified by property tests:
//
//   identity ==> value ==> instantaneous ==> weak
//
// Snapshot-based equalities return the *witness instants* so callers can
// display or verify them; per Section 5.3, objects with static attributes
// can only be compared at the current time (their snapshots at past
// instants are undefined).
//
// Projection note: for an all-temporal object, snapshot(i, t) projects
// every attribute at t; attributes not meaningful at t project to null, so
// two objects whose attribute is undefined at the compared instants agree
// on it. (The paper leaves this case open; see DESIGN.md.)
#ifndef TCHIMERA_CORE_DB_EQUALITY_H_
#define TCHIMERA_CORE_DB_EQUALITY_H_

#include <optional>
#include <utility>

#include "core/object/object.h"

namespace tchimera {

// Definition 5.7: same oid.
bool EqualByIdentity(const Object& a, const Object& b);

// Definition 5.8: same attribute record — same attribute names and, for
// temporal attributes, the same complete history.
bool EqualByValue(const Object& a, const Object& b);

// Definition 5.9: the earliest instant t in both lifespans with
// snapshot(a,t) == snapshot(b,t), or nullopt if none exists. `now` is the
// database's current time.
std::optional<TimePoint> InstantaneousEqualityWitness(const Object& a,
                                                      const Object& b,
                                                      TimePoint now);
inline bool InstantaneousValueEqual(const Object& a, const Object& b,
                                    TimePoint now) {
  return InstantaneousEqualityWitness(a, b, now).has_value();
}

// Definition 5.10: instants (t', t'') with snapshot(a,t') ==
// snapshot(b,t''), or nullopt.
std::optional<std::pair<TimePoint, TimePoint>> WeakEqualityWitness(
    const Object& a, const Object& b, TimePoint now);
inline bool WeakValueEqual(const Object& a, const Object& b, TimePoint now) {
  return WeakEqualityWitness(a, b, now).has_value();
}

class Database;

// Deep value equality (Section 5.3 distinguishes shallow from deep value
// equality; Definition 5.8 is the shallow one): attribute records are
// compared recursively, with oid references followed into the referenced
// objects' attribute records. Bisimulation-style: a pair of oids under
// comparison is assumed equal while its components are being compared, so
// cyclic reference graphs terminate.
//
// Collections are compared element-wise in their canonical (shallow)
// order; two sets whose deep-equal elements sort differently under the
// shallow order are conservatively reported unequal (see DESIGN.md).
bool DeepValueEqual(const Database& db, const Object& a, const Object& b);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_EQUALITY_H_
