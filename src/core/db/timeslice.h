// Database timeslice: the whole-database form of the paper's snapshot
// coercion (Section 6.1), and the executable version of Section 1's
// contrast — "the content of a [conventional] database represents a
// snapshot of the reality".
//
// TimeSlice(db, t) materializes a *non-temporal* database whose content is
// the state of `db` at instant t:
//
//   - every class alive at t reappears with its temporal attribute domains
//     coerced to their static counterparts (temporal(T) -> T, the paper's
//     T^-); temporal c-attributes are projected likewise;
//   - every object alive at t reappears (same oid) with its attributes
//     projected at t; its most specific class is its class at t;
//   - extents are the memberships as of t;
//   - the slice's clock reads t: inside the slice, t is "the present".
//
// Faithfulness to Section 5.3's limits: at a *past* instant the values of
// non-temporal attributes are not recorded, so for t < now the slice
// schema keeps only the temporal attributes (the historical type
// h_type(c), coerced); at t = now the full structural type is coerced and
// static attributes carry their current values. Temporal attributes
// undefined at t project to null.
//
// The result is an ordinary Database: it passes the full consistency
// check, answers (now-only) queries, serializes, and can evolve
// independently — a what-if copy of the world as of t.
#ifndef TCHIMERA_CORE_DB_TIMESLICE_H_
#define TCHIMERA_CORE_DB_TIMESLICE_H_

#include <memory>

#include "common/result.h"
#include "core/db/database.h"

namespace tchimera {

// Slices `db` at instant `t` (kNow or db.now() for the present). Fails
// with TemporalError for t outside [0, db.now()].
Result<std::unique_ptr<Database>> TimeSlice(const Database& db, TimePoint t);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_TIMESLICE_H_
