#include "core/db/timeslice.h"

#include <set>
#include <string>
#include <vector>

#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

// temporal(T) -> T; everything else unchanged.
const Type* Coerce(const Type* type) {
  return type->kind() == TypeKind::kTemporal ? type->element() : type;
}

// The attributes a class keeps in the slice: all of them at the current
// instant; only the (coerced) temporal ones at a past instant
// (Section 5.3: past static values are not recorded).
std::vector<AttributeDef> SliceAttributes(const ClassDef& cls,
                                          bool at_current) {
  std::vector<AttributeDef> out;
  for (const AttributeDef& a : cls.attributes()) {
    if (!at_current && !a.is_temporal()) continue;
    out.push_back({a.name, Coerce(a.type)});
  }
  return out;
}

// Projects one stored attribute value at t (temporal values project to
// f(t) or null; static values pass through).
Value ProjectValue(const Value& stored, TimePoint t) {
  if (stored.kind() != ValueKind::kTemporal) return stored;
  const Value* at = stored.AsTemporal().At(t);
  return at == nullptr ? Value::Null() : *at;
}

}  // namespace

Result<std::unique_ptr<Database>> TimeSlice(const Database& db,
                                            TimePoint t) {
  TimePoint at = ResolveInstant(t, db.now());
  if (at < 0 || at > db.now()) {
    return Status::TemporalError(
        "timeslice instant " + InstantToString(t) +
        " is outside [0, now=" + InstantToString(db.now()) + "]");
  }
  const bool at_current = at == db.now();
  auto slice = std::make_unique<Database>();
  slice->RestoreClock(at);

  // Classes, in an ISA-respecting order (superclasses first); only those
  // alive at the instant survive into the slice. Invariant 6.1 guarantees
  // a subclass alive at t has all its superclasses alive at t.
  std::vector<std::string> pending = db.ClassNames();
  std::set<std::string> done;
  while (!pending.empty()) {
    std::vector<std::string> next;
    bool progress = false;
    for (const std::string& name : pending) {
      const ClassDef* cls = db.GetClass(name);
      if (!cls->lifespan().ContainsResolved(at)) {
        done.insert(name);  // dead at t: skipped, but unblocks subclasses
        progress = true;
        continue;
      }
      bool ready = true;
      for (const std::string& super : cls->direct_superclasses()) {
        if (done.count(super) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        next.push_back(name);
        continue;
      }
      progress = true;
      done.insert(name);
      ClassSpec spec;
      spec.name = name;
      for (const std::string& super : cls->direct_superclasses()) {
        if (slice->GetClass(super) != nullptr) {
          spec.superclasses.push_back(super);
        }
      }
      spec.attributes = SliceAttributes(*cls, at_current);
      spec.methods = cls->methods();
      for (const AttributeDef& ca : cls->c_attributes()) {
        if (!at_current && !ca.is_temporal()) continue;
        spec.c_attributes.push_back({ca.name, Coerce(ca.type)});
      }
      spec.c_methods = cls->c_methods();
      // Extents freeze at their t-state, ongoing from t.
      TemporalFunction ext = TemporalFunction::Constant(
          Interval::FromUntilNow(at),
          Value::Set([&] {
            std::vector<Value> members;
            for (Oid oid : cls->ExtentAt(at)) {
              members.push_back(Value::OfOid(oid));
            }
            return members;
          }()));
      TemporalFunction pext = TemporalFunction::Constant(
          Interval::FromUntilNow(at),
          Value::Set([&] {
            std::vector<Value> instances;
            for (Oid oid : cls->ProperExtentAt(at)) {
              instances.push_back(Value::OfOid(oid));
            }
            return instances;
          }()));
      std::vector<Value::Field> c_values;
      for (const AttributeDef& ca : spec.c_attributes) {
        Result<Value> v = cls->CAttributeValue(ca.name);
        if (v.ok()) {
          c_values.emplace_back(ca.name, ProjectValue(*v, at));
        }
      }
      TCH_RETURN_IF_ERROR(slice->RestoreClass(spec,
                                              Interval::FromUntilNow(at),
                                              std::move(ext),
                                              std::move(pext),
                                              std::move(c_values)));
    }
    if (!progress) {
      return Status::Internal("ISA cycle while slicing");
    }
    pending = std::move(next);
  }

  // Objects alive at t, projected.
  for (Oid oid : db.AllOids()) {
    const Object* obj = db.GetObject(oid);
    if (!obj->lifespan().ContainsResolved(at)) continue;
    std::optional<std::string> cls_name = obj->ClassAt(at);
    if (!cls_name.has_value()) continue;
    const ClassDef* sliced_cls = slice->GetClass(*cls_name);
    if (sliced_cls == nullptr) continue;  // class dead at t (impossible
                                          // under Invariant 5.1)
    std::vector<Value::Field> attrs;
    for (const AttributeDef& a : sliced_cls->attributes()) {
      const Value* stored = obj->Attribute(a.name);
      attrs.emplace_back(
          a.name, stored == nullptr ? Value::Null()
                                    : ProjectValue(*stored, at));
    }
    TCH_RETURN_IF_ERROR(slice->RestoreObject(
        oid, Interval::FromUntilNow(at),
        TemporalFunction::Constant(Interval::FromUntilNow(at),
                                   Value::String(*cls_name)),
        std::move(attrs)));
  }
  slice->RestoreNextOid(db.next_oid());
  return slice;
}

}  // namespace tchimera
