// The T_Chimera database: classes + objects + the model clock.
//
// Database is the owner of every ClassDef and Object, enforces the model's
// rules on every mutation (typing of attribute values per Definition 3.5,
// Rule 6.1 refinement at class definition, hierarchy confinement of
// migrations per Invariant 6.2), and exposes the formal functions of
// Table 3:
//
//   T^-          types::TMinus (type layer)
//   pi           Database::Pi
//   type         Database::StructuralTypeOf
//   h_type       Database::HistoricalTypeOf
//   s_type       Database::StaticTypeOf
//   h_state      Database::HStateOf
//   s_state      Database::SStateOf
//   o_lifespan   Database::OLifespan
//   m_lifespan   Database::MLifespan   (the paper also calls it c_lifespan)
//   ref          Database::Ref
//   snapshot     Database::SnapshotOf
//
// Database implements ExtentProvider, and its IsaGraph implements
// IsaProvider, so a Database can be handed directly to the typing layer
// (typing_context()).
#ifndef TCHIMERA_CORE_DB_DATABASE_H_
#define TCHIMERA_CORE_DB_DATABASE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/db/index.h"
#include "core/object/object.h"
#include "core/schema/class_def.h"
#include "core/schema/isa_graph.h"
#include "core/temporal/clock.h"
#include "core/values/typing.h"

namespace tchimera {

// What a writer touched since the footprint was last taken — the unit of
// commit-time validation for optimistic multi-writer concurrency
// (core/db/versioned_db.h). Recorded by the mutable accessors, so it
// covers exactly the slots whose COW clones a commit would publish.
struct WriteFootprint {
  // Objects cloned for mutation or newly created (slot-level granularity:
  // two writers touching different oids never conflict, regardless of
  // shard collisions).
  std::set<uint64_t> oids;
  // Objects whose lifespan this writer closed (DeleteObject) — tracked
  // separately because referential integrity (Definition 5.6) must be
  // re-validated against objects a *concurrent* committer touched.
  std::set<uint64_t> deleted_oids;
  // Classes cloned for mutation (extent splices, c-attribute updates).
  std::set<std::string> classes;
  // Schema-shape changes (define/drop/restore): conflict with everything —
  // they rewrite the ISA graph and class table spine.
  bool schema_changed = false;
  // The clock moved. Journal replay re-runs statements in commit order,
  // so a clock move must serialize against every concurrent commit.
  bool clock_advanced = false;
  // An oid was allocated from next_oid_. Two allocating transactions must
  // conflict or replay would assign different oids than the live run.
  bool oid_allocated = false;
  // Sledgehammer: treat the write set as "everything" (quarantine and
  // other surgery that scans or rewrites arbitrary state).
  bool all = false;

  bool empty() const {
    return oids.empty() && deleted_oids.empty() && classes.empty() &&
           !schema_changed && !clock_advanced && !oid_allocated && !all;
  }
};

// Database is copy-on-write: the copy constructor is O(1)-ish — it shares
// every class, object and object-map shard with the source via shared_ptr
// and gives BOTH sides fresh COW epochs, so whichever side mutates first
// clones exactly the entities it touches (structural sharing of the
// rest). This is what makes MVCC publication cheap: VersionedDatabase
// publishes a committed version by copying the writer's database, and
// the writer's next statement clones only what it writes.
//
// The sharing protocol is single-writer: concurrent READS of two copies
// are always safe (shared entities are never mutated in place once a
// copy exists — the epoch check forces a clone first), but each copy
// must only be MUTATED by one thread at a time. VersionedDatabase
// enforces this with its writer lock.
class Database final : public ExtentProvider {
 public:
  Database();
  // The COW copy: shares all entities, refreshes both sides' epochs.
  Database(const Database& other);
  ~Database() override;

  Database& operator=(const Database&) = delete;

  // Live Database instances in the process (tests: version retirement —
  // a retired MVCC version must actually free its Database).
  static int64_t live_instance_count();

  // --- time ---------------------------------------------------------------

  TimePoint now() const { return clock_.now(); }
  void Tick(int64_t steps = 1) {
    clock_.Tick(steps);
    footprint_.clock_advanced = true;
  }
  Status AdvanceTo(TimePoint t) {
    TCH_RETURN_IF_ERROR(clock_.AdvanceTo(t));
    footprint_.clock_advanced = true;
    return Status::OK();
  }

  // --- schema -------------------------------------------------------------

  // Defines a class (lifespan starts now). Validates the spec: identifier
  // syntax, attribute/method types (well-formed, no `any`), existing &
  // alive superclasses, Rule 6.1 refinement, method co/contravariance.
  Status DefineClass(const ClassSpec& spec);
  // Ends the class lifespan now. Fails while the class has living members
  // or subclasses that are still alive.
  Status DropClass(std::string_view name);

  // Monotone counter bumped by every schema-shape change (define / drop /
  // restore). Copied through COW publication, so a pinned snapshot's
  // schema version is consistent with its class table — the plan cache
  // (query/session.h) keys compiled statements on it.
  uint64_t schema_version() const { return schema_version_; }

  const ClassDef* GetClass(std::string_view name) const;
  Result<const ClassDef*> FindClass(std::string_view name) const;
  std::vector<std::string> ClassNames() const;
  size_t class_count() const { return classes_->map.size(); }
  const IsaGraph& isa() const { return *isa_; }

  // Sets a c-attribute of a class (type-checked; temporal c-attributes are
  // asserted from now).
  Status SetClassAttribute(std::string_view class_name,
                           std::string_view attr_name, Value v);
  // The metaclass view of Section 4: the class seen as the unique instance
  // of its metaclass, with the class `history` record as its state.
  Result<Value> ClassHistory(std::string_view class_name) const;
  // Materializes the full meta-object: an Object whose attributes are the
  // class's c-attributes plus `ext`/`proper-ext`, whose lifespan is the
  // class lifespan, and whose class history names the metaclass
  // ("m-<name>"). Built on demand — the class state stays the single
  // source of truth. The meta-object's oid is synthetic (not in the
  // object store; metaclass extents are the singleton {class}).
  Result<Object> MetaObjectOf(std::string_view class_name) const;
  // The class signature of the metaclass itself: attributes are the
  // class's c-attributes plus ext/proper-ext, methods its c-methods; its
  // own metaclass is the fixed root "metaclass" (Smalltalk-80 style, so
  // the tower terminates).
  Result<ClassSpec> MetaclassSpecOf(std::string_view class_name) const;

  // --- object lifecycle ----------------------------------------------------

  // Initial attribute values at creation. For a temporal attribute the
  // value may be either a plain value of the static counterpart type
  // (asserted from the creation instant) or a full temporal-function value
  // (retroactive history; must lie within the lifespan).
  using FieldInits = std::vector<Value::Field>;

  // Creates an object of `class_name`, alive from now.
  Result<Oid> CreateObject(std::string_view class_name,
                           FieldInits init = {});
  // Creates an object retroactively, alive from `start` (start <= now and
  // within the class lifespan). Extent histories are spliced, not
  // overwritten.
  Result<Oid> CreateObjectAt(std::string_view class_name, TimePoint start,
                             FieldInits init = {});

  // Updates attribute `attr` of `oid` to `v`:
  //   static attribute   — replaces the current value (no history kept);
  //   temporal attribute — asserts `v` from now onward.
  // `v` is type-checked against the attribute domain first.
  Status UpdateAttribute(Oid oid, std::string_view attr, Value v);
  // Valid-time update of a temporal attribute over an explicit interval
  // (retroactive corrections, future-dated assertions).
  Status UpdateAttributeAt(Oid oid, std::string_view attr,
                           const Interval& interval, Value v);

  // Migrates `oid` so that its most specific class becomes `new_class`
  // from now on (specialization or generalization; must stay within the
  // object's ISA hierarchy, Invariant 6.2). Attributes are adjusted per
  // Section 5.2: dropped static attributes disappear; dropped temporal
  // attributes are closed but retained; `added` supplies initial values
  // for attributes gained by the migration.
  Status Migrate(Oid oid, std::string_view new_class, FieldInits added = {});

  // Deletes `oid`: its lifespan ends at now (it still exists *at* now) and
  // it leaves every extent from now+1. Fails if other live objects still
  // reference it (referential integrity, Definition 5.6).
  Status DeleteObject(Oid oid);
  // Deletes unconditionally (used by failure-injection tests).
  Status DeleteObjectUnchecked(Oid oid);
  // Erases `oid` outright and scrubs it from every class extent, at all
  // instants — no lifespan bookkeeping, no referential-integrity check.
  // Not a model operation: recovery-only surgery for quarantining objects
  // that fail the post-recovery audit (see storage/recovery.h). Callers
  // must re-audit afterwards, since references *to* the quarantined
  // object may now dangle.
  Status QuarantineObject(Oid oid);

  const Object* GetObject(Oid oid) const;
  Object* GetMutableObject(Oid oid);
  Result<const Object*> FindObject(Oid oid) const;
  std::vector<Oid> AllOids() const;
  size_t object_count() const;
  // The next oid the database will assign (serialized with snapshots).
  uint64_t next_oid() const { return next_oid_; }

  // --- Table 3 functions ----------------------------------------------------

  // pi(c, t): the extent of class c at instant t.
  std::vector<Oid> Pi(std::string_view class_name, TimePoint t) const;
  Result<const Type*> StructuralTypeOf(std::string_view class_name) const;
  Result<const Type*> HistoricalTypeOf(std::string_view class_name) const;
  Result<const Type*> StaticTypeOf(std::string_view class_name) const;
  Result<Value> HStateOf(Oid oid, TimePoint t) const;
  Result<Value> SStateOf(Oid oid) const;
  Result<Interval> OLifespan(Oid oid) const;
  // m_lifespan(i, c): the instants at which i was a member of c.
  Result<IntervalSet> MLifespan(Oid oid, std::string_view class_name) const;
  Result<std::vector<Oid>> Ref(Oid oid, TimePoint t) const;
  Result<Value> SnapshotOf(Oid oid, TimePoint t) const;

  // --- temporal secondary indexes (core/db/index.h) -------------------------

  // Registers and builds a secondary index. Validates the declared class
  // (and, for a value index, its attribute), bumps schema_version() —
  // index DDL invalidates every cached plan, including negative entries —
  // and records a schema-shape footprint (index DDL serializes against
  // every concurrent commit).
  Status CreateIndex(const IndexDef& def);
  Status DropIndex(std::string_view name);
  const IndexDef* GetIndexDef(std::string_view name) const;
  // All registered definitions, sorted by name (serialization order).
  std::vector<IndexDef> IndexDefs() const;
  // The first (by name) value index over `attr`; nullptr when none.
  // Class is not part of the match: postings cover every object carrying
  // the attribute, and extent membership is re-checked per probe.
  const IndexDef* FindValueIndex(std::string_view attr) const;

  // Probes a value index: ascending, deduplicated oids whose indexed
  // attribute satisfies `op bound` at instant `t` (raw validity intervals
  // are resolved against now()). Extent filtering is the caller's job.
  std::vector<Oid> IndexProbe(std::string_view index_name, ProbeOp op,
                              const Value& bound, TimePoint t) const;
  // How many postings `op bound` spans across all shards, ignoring
  // validity intervals — the planner's cardinality estimate.
  size_t IndexProbeEstimate(std::string_view index_name, ProbeOp op,
                            const Value& bound) const;
  // Total postings in `index_name` across all shards.
  size_t IndexEntryCount(std::string_view index_name) const;

  // The pre-extracted boundary timeline of `oid`'s attribute `attr`
  // under any value index covering it (nullptr when not indexed), and of
  // its lifespan under any lifespan index. Used by WHEN boundary
  // collection to binary-search a `during` window instead of walking
  // segments (query/evaluator.cc).
  const std::vector<TimePoint>* AttrTimeline(Oid oid,
                                             std::string_view attr) const;
  const std::vector<TimePoint>* LifespanTimeline(Oid oid) const;

  // Canonical text dump of every index's full content (defs, postings,
  // timelines). Two databases with identical objects and index defs dump
  // identically — the bit-identical-rebuild check recovery/replication
  // tests assert.
  std::string DebugDumpIndexes() const;

  // --- typing ----------------------------------------------------------------

  TypingContext typing_context() const { return {*this, *isa_}; }

  // ExtentProvider:
  bool InExtent(std::string_view class_name, Oid oid,
                TimePoint t) const override;
  bool InExtentThroughout(std::string_view class_name, Oid oid,
                          const Interval& interval) const override;
  std::optional<std::string> MostSpecificClass(Oid oid,
                                               TimePoint t) const override;

  // Total approximate footprint of all stored objects (bench accounting).
  size_t ApproxObjectBytes() const;

  // --- raw restore (storage layer only) -----------------------------------

  // Restores the clock / oid counter without the monotonicity checks
  // (loading a snapshot starts from scratch).
  void RestoreClock(TimePoint t) { clock_ = Clock(t); }
  void RestoreNextOid(uint64_t next) { next_oid_ = next; }
  // Registers a class whose members are already *effective* (inherited
  // members included) and whose state was captured by a serializer.
  // Superclasses must have been restored first.
  Status RestoreClass(const ClassSpec& effective_spec,
                      const Interval& lifespan, TemporalFunction ext,
                      TemporalFunction proper_ext,
                      std::vector<Value::Field> c_attr_values);
  // Registers an object with raw state (no typing or extent side effects;
  // the serialized extents already contain it).
  Status RestoreObject(Oid oid, const Interval& lifespan,
                       TemporalFunction class_history,
                       std::vector<Value::Field> attributes);

  // --- optimistic concurrency (core/db/versioned_db.h) ---------------------

  // Everything mutated since the last TakeFootprint() (or construction /
  // copy — copies start with an empty footprint). Mutating accessors
  // record into this as a side effect.
  const WriteFootprint& footprint() const { return footprint_; }
  // Returns the accumulated footprint and resets it to empty.
  WriteFootprint TakeFootprint();

  // Adopts the slots listed in `fp` from `src` (a transaction-private COW
  // copy of an ancestor of *this) into this database. Used by the
  // optimistic commit path after validation has established that no
  // concurrently committed transaction touched any of these slots, so
  // per-slot substitution is equivalent to having run the transaction on
  // the tip directly. Adopted slots get epoch 0 (matches no Database), so
  // this side re-clones them before its next in-place mutation. Schema or
  // `all` footprints adopt the full spines (validation guarantees the tip
  // has not advanced in that case). Deliberately does NOT record into
  // this database's own footprint: the caller tracks the transaction's
  // footprint separately.
  void AdoptChanges(const Database& src, const WriteFootprint& fp);

 private:
  // --- COW storage ---------------------------------------------------------
  //
  // Classes and objects live behind shared_ptr so copies of the Database
  // share them structurally. Every slot (and every map spine / shard)
  // carries the COW epoch of the Database that created it; a mutable
  // accessor clones the slot's entity iff its epoch differs from ours —
  // i.e. exactly when the entity may be shared with another copy. Epochs
  // come from a process-global counter, so two copies can never
  // accidentally agree on an epoch and mutate a shared structure.
  struct ClassSlot {
    std::shared_ptr<ClassDef> def;
    uint64_t epoch = 0;
  };
  struct ClassTable {
    uint64_t epoch = 0;
    std::map<std::string, ClassSlot, std::less<>> map;
  };
  struct ObjectSlot {
    std::shared_ptr<Object> obj;
    uint64_t epoch = 0;
  };
  struct ObjectShard {
    uint64_t epoch = 0;
    std::unordered_map<uint64_t, ObjectSlot> slots;
  };
  static constexpr size_t kObjectShardCount = 64;

  static size_t ShardIndex(uint64_t id) { return id % kObjectShardCount; }
  // Spine-level COW: a private, mutable class table / shard (cloned from
  // the shared one on first touch per epoch).
  ClassTable& MutableClassTable();
  ObjectShard& MutableShard(uint64_t id);
  // The index shard covering `oid`'s object shard, cloned on first touch
  // per epoch (index entries ride the same COW protocol as objects, so a
  // commit publishes index clones for exactly the shards it wrote).
  IndexShard& MutableIndexShard(uint64_t id);
  // Recomputes every registered index's entries for `oid` from the
  // object's current state (removal when the slot is gone). Called by
  // every object mutation and by AdoptChanges for each adopted oid; does
  // not record footprint — index writes conflict through the oid slots
  // they accompany.
  void ReindexOid(uint64_t id);
  // Rebuilds all shards of `def` from scratch (index creation).
  void BuildIndex(const IndexDef& def);

  ClassDef* GetMutableClass(std::string_view name);
  IsaGraph& MutableIsa();
  // The class and its transitive superclasses.
  std::vector<ClassDef*> SelfAndSuperclasses(std::string_view name);
  // Validates one creation/migration init value and installs it.
  Status InstallInitialValue(Object* obj, const AttributeDef& attr,
                             Value v, TimePoint start);

  Clock clock_;
  std::shared_ptr<IsaGraph> isa_;
  uint64_t isa_epoch_ = 0;
  std::shared_ptr<ClassTable> classes_;
  std::array<std::shared_ptr<ObjectShard>, kObjectShardCount> objects_;
  // Index definitions (shared spine, replaced wholesale by DDL) and the
  // per-shard index partitions (COW, parallel to objects_).
  std::shared_ptr<const std::map<std::string, IndexDef, std::less<>>>
      index_defs_;
  std::array<std::shared_ptr<IndexShard>, kObjectShardCount> index_shards_;
  uint64_t next_oid_ = 1;
  uint64_t schema_version_ = 1;  // see schema_version()
  // Slots mutated since the last TakeFootprint(). Deliberately NOT copied
  // by the copy constructor: a fresh copy has touched nothing yet.
  WriteFootprint footprint_;
  // This copy's COW epoch (see ClassSlot). Atomic only because the copy
  // constructor refreshes the SOURCE's epoch too (both sides must re-COW
  // after a copy), and published MVCC versions may be copied while other
  // threads read them.
  mutable std::atomic<uint64_t> cow_epoch_{0};
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_DATABASE_H_
