// Consistency notions of Section 5.2 and the temporal invariants of
// Sections 5.1 and 6.2, as executable checkers over a Database.
//
//   Definition 5.3  historical consistency   CheckHistoricalConsistency*
//   Definition 5.4  static consistency       CheckStaticConsistency
//   Definition 5.5  object consistency       CheckObjectConsistency
//   Definition 5.6  consistent set           CheckConsistentObjectSet
//   Invariant 5.1   extents vs lifespans / class histories
//   Invariant 5.2   lifespan partition by membership
//   Invariant 6.1   extent & lifespan inclusion along ISA
//   Invariant 6.2   hierarchy disjointness over all time
//   (Theorem 6.1 is a property of the type system; see the test suite.)
//
// All checks are *exact* over dense time: temporal values and extents are
// piecewise constant, so quantifications "for every instant t" are
// evaluated per maximal constant piece (with object-type membership
// verified throughout each piece via ExtentProvider::InExtentThroughout).
#ifndef TCHIMERA_CORE_DB_CONSISTENCY_H_
#define TCHIMERA_CORE_DB_CONSISTENCY_H_

#include "common/status.h"
#include "core/db/database.h"

namespace tchimera {

// Definition 5.3 at a single instant: h_state(o,t) is legal for
// h_type(c).
Status CheckHistoricalConsistency(const Database& db, const Object& obj,
                                  const ClassDef& cls, TimePoint t);

// Definition 5.3 quantified over every instant of `interval` (piecewise).
// Requires: every temporal attribute of `cls` meaningful throughout with
// legal values, and no extra temporal attribute of the object meaningful
// anywhere in the interval.
Status CheckHistoricalConsistencyOver(const Database& db, const Object& obj,
                                      const ClassDef& cls,
                                      const Interval& interval);

// Definition 5.4: s_state(o) is legal for s_type(c).
Status CheckStaticConsistency(const Database& db, const Object& obj,
                              const ClassDef& cls);

// Definition 5.5: the object is consistent — every class-history pair
// <tau, c> lies within c's lifespan and is historically consistent
// throughout tau, and the object is statically consistent with its
// current class.
Status CheckObjectConsistency(const Database& db, Oid oid);

// Definition 5.6 at instant t: OID-uniqueness (structural in this store)
// and referential integrity — every oid referenced at t by a then-living
// object denotes an object alive at t.
Status CheckConsistentObjectSet(const Database& db, TimePoint t);

// Referential integrity quantified over all time: every reference
// recorded in any temporal segment points to an object whose lifespan
// covers the segment.
Status CheckReferentialIntegrityAllTime(const Database& db);

// Invariant 5.1: (1) extent membership implies the instant is within the
// object lifespan; (2) proper-extent membership intervals coincide with
// the object's class history.
Status CheckInvariant51(const Database& db);

// Invariant 5.2: (1) the object lifespan equals the union of its
// membership intervals over all classes; (2) membership intervals derived
// from extents agree with those derived from class histories.
Status CheckInvariant52(const Database& db);

// Invariant 6.1: for c2 <=_ISA c1, lifespan inclusion, extent inclusion at
// every instant, and membership-interval inclusion per object.
Status CheckInvariant61(const Database& db);

// Invariant 6.2: the sets of objects that have ever belonged to different
// hierarchies are disjoint.
Status CheckInvariant62(const Database& db);

// Runs every check above over the whole database (every object, every
// invariant, referential integrity over all time).
Status CheckDatabaseConsistency(const Database& db);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_CONSISTENCY_H_
