#include "core/db/database.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "core/schema/refinement.h"
#include "core/types/type_registry.h"

namespace tchimera {
namespace {

// COW epochs are process-global and strictly increasing, so no two
// Database copies ever share an epoch (see the ClassSlot comment in
// database.h). Relaxed is enough: epochs only need uniqueness, and the
// copies themselves are handed across threads with proper publication
// (VersionedDatabase's atomic version pointer).
uint64_t NextCowEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::atomic<int64_t> g_live_databases{0};

// Attribute names reserved for the class history record (Definition 4.1).
bool IsReservedName(std::string_view name) {
  return name == "ext" || name == "proper-ext";
}

Status ValidateMemberType(const std::string& owner, const char* kind,
                          const std::string& name, const Type* type) {
  if (type == nullptr) {
    return Status::InvalidArgument(kind + (" '" + name + "' of class ") +
                                   owner + " has no type");
  }
  if (type->ContainsAny()) {
    return Status::TypeError(kind + (" '" + name + "' of class ") + owner +
                             ": type " + type->ToString() +
                             " contains the pseudo-type 'any'");
  }
  return Status::OK();
}

}  // namespace

// --- construction / COW machinery -------------------------------------------

Database::Database()
    : isa_(std::make_shared<IsaGraph>()),
      classes_(std::make_shared<ClassTable>()),
      index_defs_(
          std::make_shared<std::map<std::string, IndexDef, std::less<>>>()) {
  const uint64_t epoch = NextCowEpoch();
  cow_epoch_.store(epoch, std::memory_order_relaxed);
  isa_epoch_ = epoch;
  classes_->epoch = epoch;
  g_live_databases.fetch_add(1, std::memory_order_relaxed);
}

Database::Database(const Database& other)
    : clock_(other.clock_),
      isa_(other.isa_),
      isa_epoch_(other.isa_epoch_),
      classes_(other.classes_),
      objects_(other.objects_),
      index_defs_(other.index_defs_),
      index_shards_(other.index_shards_),
      next_oid_(other.next_oid_),
      schema_version_(other.schema_version_) {
  // Both sides get fresh epochs: every structure the two copies now share
  // carries an epoch neither side owns, so whichever side mutates first
  // clones before writing. Epochs are strictly increasing, so a stale
  // slot can never collide with a fresh epoch.
  cow_epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
  other.cow_epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
  g_live_databases.fetch_add(1, std::memory_order_relaxed);
}

Database::~Database() {
  g_live_databases.fetch_sub(1, std::memory_order_relaxed);
}

int64_t Database::live_instance_count() {
  return g_live_databases.load(std::memory_order_relaxed);
}

Database::ClassTable& Database::MutableClassTable() {
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  if (classes_->epoch != epoch) {
    auto clone = std::make_shared<ClassTable>(*classes_);
    clone->epoch = epoch;
    classes_ = std::move(clone);
  }
  return *classes_;
}

Database::ObjectShard& Database::MutableShard(uint64_t id) {
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  std::shared_ptr<ObjectShard>& shard = objects_[ShardIndex(id)];
  if (shard == nullptr) {
    shard = std::make_shared<ObjectShard>();
    shard->epoch = epoch;
  } else if (shard->epoch != epoch) {
    auto clone = std::make_shared<ObjectShard>(*shard);
    clone->epoch = epoch;
    shard = std::move(clone);
  }
  return *shard;
}

IndexShard& Database::MutableIndexShard(uint64_t id) {
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  std::shared_ptr<IndexShard>& shard = index_shards_[ShardIndex(id)];
  if (shard == nullptr) {
    shard = std::make_shared<IndexShard>();
    shard->epoch = epoch;
  } else if (shard->epoch != epoch) {
    auto clone = std::make_shared<IndexShard>(*shard);
    clone->epoch = epoch;
    shard = std::move(clone);
  }
  return *shard;
}

void Database::ReindexOid(uint64_t id) {
  if (index_defs_->empty()) return;
  const Object* obj = GetObject(Oid{id});
  IndexShard& shard = MutableIndexShard(id);
  for (const auto& [name, def] : *index_defs_) {
    RebuildPartitionEntry(def, obj, Oid{id}, &shard.parts[name]);
  }
}

void Database::BuildIndex(const IndexDef& def) {
  for (uint64_t s = 0; s < kObjectShardCount; ++s) {
    IndexPartition& part = MutableIndexShard(s).parts[def.name];
    part = IndexPartition{};
    const ObjectShard* src = objects_[s].get();
    if (src == nullptr) continue;
    for (const auto& [id, slot] : src->slots) {
      AppendIndexEntries(def, *slot.obj, Oid{id}, &part);
    }
    // Shard iteration order is unordered; the sorted postings and the
    // oid-keyed timeline map are order-independent, so a build is
    // deterministic for given object state.
    std::sort(part.postings.begin(), part.postings.end(), IndexEntryLess);
  }
}

Status Database::CreateIndex(const IndexDef& def) {
  if (!IsIdentifier(def.name)) {
    return Status::InvalidArgument("index name '" + def.name +
                                   "' is not a valid identifier");
  }
  if (index_defs_->count(def.name) != 0) {
    return Status::AlreadyExists("index " + def.name + " already exists");
  }
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(def.class_name));
  if (def.kind == IndexKind::kValue &&
      cls->FindAttribute(def.attr) == nullptr) {
    return Status::NotFound("class " + def.class_name +
                            " has no attribute '" + def.attr + "'");
  }
  // Index DDL is a schema-shape change: it must invalidate every cached
  // plan (schema_version gates the PlanCache, negative entries included)
  // and serialize against every concurrent commit (the full build below
  // reads all shards).
  footprint_.schema_changed = true;
  ++schema_version_;
  auto defs =
      std::make_shared<std::map<std::string, IndexDef, std::less<>>>(
          *index_defs_);
  (*defs)[def.name] = def;
  index_defs_ = std::move(defs);
  BuildIndex(def);
  return Status::OK();
}

Status Database::DropIndex(std::string_view name) {
  if (index_defs_->find(name) == index_defs_->end()) {
    return Status::NotFound("index " + std::string(name) +
                            " does not exist");
  }
  footprint_.schema_changed = true;
  ++schema_version_;
  auto defs =
      std::make_shared<std::map<std::string, IndexDef, std::less<>>>(
          *index_defs_);
  defs->erase(defs->find(name));
  index_defs_ = std::move(defs);
  for (uint64_t s = 0; s < kObjectShardCount; ++s) {
    if (index_shards_[s] == nullptr) continue;
    MutableIndexShard(s).parts.erase(std::string(name));
  }
  return Status::OK();
}

const IndexDef* Database::GetIndexDef(std::string_view name) const {
  auto it = index_defs_->find(name);
  return it == index_defs_->end() ? nullptr : &it->second;
}

std::vector<IndexDef> Database::IndexDefs() const {
  std::vector<IndexDef> out;
  out.reserve(index_defs_->size());
  for (const auto& [unused, def] : *index_defs_) out.push_back(def);
  return out;
}

const IndexDef* Database::FindValueIndex(std::string_view attr) const {
  for (const auto& [unused, def] : *index_defs_) {
    if (def.kind == IndexKind::kValue && def.attr == attr) return &def;
  }
  return nullptr;
}

std::vector<Oid> Database::IndexProbe(std::string_view index_name,
                                      ProbeOp op, const Value& bound,
                                      TimePoint t) const {
  std::vector<Oid> out;
  for (const auto& shard : index_shards_) {
    if (shard == nullptr) continue;
    auto it = shard->parts.find(index_name);
    if (it == shard->parts.end()) continue;
    auto [lo, hi] = ProbeRange(it->second, op, bound);
    for (size_t i = lo; i < hi; ++i) {
      const IndexEntry& e = it->second.postings[i];
      // Raw containment (ongoing = valid at every t >= start): matches
      // TemporalFunction::At, which the scan path projects with, even
      // for instants beyond the current clock.
      if (e.valid.ContainsResolved(t)) out.push_back(e.oid);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t Database::IndexProbeEstimate(std::string_view index_name, ProbeOp op,
                                    const Value& bound) const {
  size_t n = 0;
  for (const auto& shard : index_shards_) {
    if (shard == nullptr) continue;
    auto it = shard->parts.find(index_name);
    if (it == shard->parts.end()) continue;
    auto [lo, hi] = ProbeRange(it->second, op, bound);
    n += hi - lo;
  }
  return n;
}

size_t Database::IndexEntryCount(std::string_view index_name) const {
  size_t n = 0;
  for (const auto& shard : index_shards_) {
    if (shard == nullptr) continue;
    auto it = shard->parts.find(index_name);
    if (it != shard->parts.end()) n += it->second.postings.size();
  }
  return n;
}

const std::vector<TimePoint>* Database::AttrTimeline(
    Oid oid, std::string_view attr) const {
  const IndexDef* def = FindValueIndex(attr);
  if (def == nullptr) return nullptr;
  const IndexShard* shard = index_shards_[ShardIndex(oid.id)].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->parts.find(def->name);
  if (it == shard->parts.end()) return nullptr;
  auto tl = it->second.timelines.find(oid.id);
  return tl == it->second.timelines.end() ? nullptr : &tl->second;
}

const std::vector<TimePoint>* Database::LifespanTimeline(Oid oid) const {
  const IndexDef* def = nullptr;
  for (const auto& [unused, d] : *index_defs_) {
    if (d.kind == IndexKind::kLifespan) {
      def = &d;
      break;
    }
  }
  if (def == nullptr) return nullptr;
  const IndexShard* shard = index_shards_[ShardIndex(oid.id)].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->parts.find(def->name);
  if (it == shard->parts.end()) return nullptr;
  auto tl = it->second.timelines.find(oid.id);
  return tl == it->second.timelines.end() ? nullptr : &tl->second;
}

std::string Database::DebugDumpIndexes() const {
  std::string out;
  for (const auto& [name, def] : *index_defs_) {
    out += "index " + name + " kind=" + IndexKindName(def.kind) +
           " class=" + def.class_name + " attr=" +
           (def.attr.empty() ? "-" : def.attr) + "\n";
    for (size_t s = 0; s < kObjectShardCount; ++s) {
      const IndexShard* shard = index_shards_[s].get();
      if (shard == nullptr) continue;
      auto it = shard->parts.find(name);
      if (it == shard->parts.end()) continue;
      const IndexPartition& part = it->second;
      if (part.postings.empty() && part.timelines.empty()) continue;
      out += " shard " + std::to_string(s) + "\n";
      for (const IndexEntry& e : part.postings) {
        out += "  post " + e.value.ToString() + " " + e.valid.ToString() +
               " " + e.oid.ToString() + "\n";
      }
      for (const auto& [id, tl] : part.timelines) {
        out += "  timeline " + Oid{id}.ToString();
        for (TimePoint b : tl) out += " " + std::to_string(b);
        out += "\n";
      }
    }
  }
  return out;
}

IsaGraph& Database::MutableIsa() {
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  if (isa_epoch_ != epoch) {
    isa_ = std::make_shared<IsaGraph>(*isa_);
    isa_epoch_ = epoch;
  }
  return *isa_;
}

ClassDef* Database::GetMutableClass(std::string_view name) {
  // Miss-check against the shared table first so NotFound paths do not
  // clone the spine.
  if (classes_->map.find(name) == classes_->map.end()) return nullptr;
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  ClassSlot& slot = MutableClassTable().map.find(name)->second;
  if (slot.epoch != epoch) {
    slot.def = std::make_shared<ClassDef>(*slot.def);
    slot.epoch = epoch;
  }
  footprint_.classes.insert(std::string(name));
  return slot.def.get();
}

// --- schema ------------------------------------------------------------------

Status Database::DefineClass(const ClassSpec& spec) {
  if (!IsIdentifier(spec.name)) {
    return Status::InvalidArgument("class name '" + spec.name +
                                   "' is not a valid identifier");
  }
  if (classes_->map.count(spec.name) != 0) {
    return Status::AlreadyExists("class " + spec.name + " already exists");
  }
  std::vector<const ClassDef*> supers;
  for (const std::string& super : spec.superclasses) {
    TCH_ASSIGN_OR_RETURN(const ClassDef* sc, FindClass(super));
    if (!sc->alive()) {
      return Status::FailedPrecondition("superclass " + super +
                                        " has been deleted");
    }
    supers.push_back(sc);
  }
  for (const AttributeDef& a : spec.attributes) {
    if (!IsIdentifier(a.name)) {
      return Status::InvalidArgument("attribute name '" + a.name +
                                     "' is not a valid identifier");
    }
    TCH_RETURN_IF_ERROR(
        ValidateMemberType(spec.name, "attribute", a.name, a.type));
  }
  for (const AttributeDef& a : spec.c_attributes) {
    if (!IsIdentifier(a.name) || IsReservedName(a.name)) {
      return Status::InvalidArgument(
          "c-attribute name '" + a.name +
          "' is not a valid identifier (note 'ext' and 'proper-ext' are "
          "reserved)");
    }
    TCH_RETURN_IF_ERROR(
        ValidateMemberType(spec.name, "c-attribute", a.name, a.type));
  }
  for (const MethodDef& m : spec.methods) {
    if (!IsIdentifier(m.name)) {
      return Status::InvalidArgument("method name '" + m.name +
                                     "' is not a valid identifier");
    }
    for (const Type* in : m.inputs) {
      TCH_RETURN_IF_ERROR(ValidateMemberType(spec.name, "method", m.name, in));
    }
    TCH_RETURN_IF_ERROR(
        ValidateMemberType(spec.name, "method", m.name, m.output));
  }
  for (const MethodDef& m : spec.c_methods) {
    for (const Type* in : m.inputs) {
      TCH_RETURN_IF_ERROR(
          ValidateMemberType(spec.name, "c-method", m.name, in));
    }
    TCH_RETURN_IF_ERROR(
        ValidateMemberType(spec.name, "c-method", m.name, m.output));
  }
  // Rule 6.1 / method variance checks + member merge.
  TCH_ASSIGN_OR_RETURN(MergedMembers merged,
                       MergeClassMembers(spec, supers, *isa_));
  footprint_.schema_changed = true;
  ++schema_version_;
  TCH_RETURN_IF_ERROR(MutableIsa().AddClass(spec.name, spec.superclasses));
  MutableClassTable().map.emplace(
      spec.name,
      ClassSlot{std::make_shared<ClassDef>(spec.name, now(),
                                           spec.superclasses,
                                           std::move(merged.attributes),
                                           std::move(merged.methods),
                                           std::move(merged.c_attributes),
                                           std::move(merged.c_methods)),
                cow_epoch_.load(std::memory_order_relaxed)});
  return Status::OK();
}

Status Database::DropClass(std::string_view name) {
  ClassDef* cls = GetMutableClass(name);
  if (cls == nullptr) {
    return Status::NotFound("class " + std::string(name) + " does not exist");
  }
  if (!cls->alive()) {
    return Status::FailedPrecondition("class " + std::string(name) +
                                      " is already deleted");
  }
  if (!cls->ExtentAt(now()).empty()) {
    return Status::FailedPrecondition("class " + std::string(name) +
                                      " still has members");
  }
  for (const std::string& sub : isa_->Subclasses(name)) {
    const ClassDef* c = GetClass(sub);
    if (c != nullptr && c->alive()) {
      return Status::FailedPrecondition("class " + std::string(name) +
                                        " still has a live subclass " + sub);
    }
  }
  // Dropping ends the class lifespan, which gates superclass liveness and
  // creations database-wide — serialize against every concurrent commit.
  footprint_.schema_changed = true;
  ++schema_version_;
  return cls->CloseLifespan(now());
}

const ClassDef* Database::GetClass(std::string_view name) const {
  auto it = classes_->map.find(name);
  return it == classes_->map.end() ? nullptr : it->second.def.get();
}

Result<const ClassDef*> Database::FindClass(std::string_view name) const {
  const ClassDef* cls = GetClass(name);
  if (cls == nullptr) {
    return Status::NotFound("class " + std::string(name) + " does not exist");
  }
  return cls;
}

std::vector<std::string> Database::ClassNames() const {
  std::vector<std::string> out;
  out.reserve(classes_->map.size());
  for (const auto& [name, unused] : classes_->map) out.push_back(name);
  return out;
}

Status Database::SetClassAttribute(std::string_view class_name,
                                   std::string_view attr_name, Value v) {
  ClassDef* cls = GetMutableClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("class " + std::string(class_name) +
                            " does not exist");
  }
  const AttributeDef* attr = cls->FindCAttribute(attr_name);
  if (attr == nullptr) {
    return Status::NotFound("class " + std::string(class_name) +
                            " has no c-attribute '" + std::string(attr_name) +
                            "'");
  }
  const Type* check_type =
      attr->is_temporal() ? attr->type->element() : attr->type;
  TCH_RETURN_IF_ERROR(
      CheckLegalValue(v, check_type, now(), typing_context()));
  return cls->SetCAttribute(attr_name, std::move(v), now());
}

Result<Value> Database::ClassHistory(std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  return cls->History();
}

Result<Object> Database::MetaObjectOf(std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  // Synthetic oid: offset past any real object so the two id spaces never
  // collide (meta-objects are views, not stored objects).
  constexpr uint64_t kMetaOidBase = 1ull << 62;
  uint64_t index = 1;
  for (const std::string& name : ClassNames()) {
    if (name == class_name) break;
    ++index;
  }
  Object meta(Oid{kMetaOidBase + index}, cls->metaclass(),
              cls->lifespan().start());
  if (!cls->lifespan().is_ongoing()) {
    TCH_RETURN_IF_ERROR(meta.CloseLifespan(cls->lifespan().end()));
  }
  for (const AttributeDef& a : cls->c_attributes()) {
    TCH_ASSIGN_OR_RETURN(Value v, cls->CAttributeValue(a.name));
    meta.SetAttribute(a.name, std::move(v));
  }
  meta.SetAttribute("ext", Value::Temporal(cls->ext()));
  meta.SetAttribute("proper-ext", Value::Temporal(cls->proper_ext()));
  return meta;
}

Result<ClassSpec> Database::MetaclassSpecOf(
    std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  ClassSpec spec;
  spec.name = cls->metaclass();
  spec.attributes = cls->c_attributes();
  // ext / proper-ext: temporal sets of members / instances. Their element
  // type is the described class itself.
  const Type* oid_set = types::SetOf(types::Object(cls->name()));
  TCH_ASSIGN_OR_RETURN(const Type* temporal_set, types::Temporal(oid_set));
  spec.attributes.push_back({"ext", temporal_set});
  spec.attributes.push_back({"proper-ext", temporal_set});
  spec.methods = cls->c_methods();
  return spec;
}

// --- object lifecycle ----------------------------------------------------------

Status Database::InstallInitialValue(Object* obj, const AttributeDef& attr,
                                     Value v, TimePoint start) {
  if (!attr.is_temporal()) {
    TCH_RETURN_IF_ERROR(
        CheckLegalValue(v, attr.type, now(), typing_context()));
    obj->SetAttribute(attr.name, std::move(v));
    return Status::OK();
  }
  if (v.kind() == ValueKind::kTemporal) {
    // A full history supplied at creation: must be legal for the temporal
    // type and lie within the object lifespan.
    TCH_RETURN_IF_ERROR(
        CheckLegalValue(v, attr.type, start, typing_context()));
    if (!v.AsTemporal().empty() && v.AsTemporal().DomainStart() < start) {
      return Status::TemporalError(
          "initial history of attribute '" + attr.name +
          "' starts before the object lifespan");
    }
    obj->SetAttribute(attr.name, std::move(v));
    return Status::OK();
  }
  // A plain value of the static counterpart type, asserted from `start`.
  TCH_RETURN_IF_ERROR(
      CheckLegalValue(v, attr.type->element(), start, typing_context()));
  return obj->AssertTemporalAttribute(attr.name, start, std::move(v));
}

Result<Oid> Database::CreateObject(std::string_view class_name,
                                   FieldInits init) {
  return CreateObjectAt(class_name, now(), std::move(init));
}

Result<Oid> Database::CreateObjectAt(std::string_view class_name,
                                     TimePoint start, FieldInits init) {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  if (!cls->alive()) {
    return Status::FailedPrecondition("class " + std::string(class_name) +
                                      " has been deleted");
  }
  if (start > now()) {
    return Status::TemporalError(
        "objects cannot be created in the future (start=" +
        InstantToString(start) + ", now=" + InstantToString(now()) + ")");
  }
  if (!cls->lifespan().ContainsResolved(start)) {
    return Status::TemporalError(
        "creation instant " + InstantToString(start) +
        " is outside the lifespan of class " + std::string(class_name));
  }
  Oid oid{next_oid_};
  auto obj = std::make_shared<Object>(oid, std::string(class_name), start);

  // Initial values: every attribute of the class gets a slot. Explicit
  // inits are validated; missing attributes default to null (asserted from
  // `start` for temporal ones, so the object is consistent by
  // construction — Definition 5.5 requires a value for every temporal
  // attribute at every instant of membership).
  std::map<std::string, Value, std::less<>> provided;
  for (auto& [name, v] : init) {
    if (cls->FindAttribute(name) == nullptr) {
      return Status::NotFound("class " + std::string(class_name) +
                              " has no attribute '" + name + "'");
    }
    if (!provided.emplace(name, std::move(v)).second) {
      return Status::InvalidArgument("duplicate initial value for '" + name +
                                     "'");
    }
  }
  for (const AttributeDef& attr : cls->attributes()) {
    auto it = provided.find(attr.name);
    Value v = it == provided.end() ? Value::Null() : std::move(it->second);
    TCH_RETURN_IF_ERROR(InstallInitialValue(obj.get(), attr, std::move(v),
                                            start));
  }

  // Extents: instance of `cls`, member of `cls` and all superclasses.
  ClassDef* mut_cls = GetMutableClass(class_name);
  TCH_RETURN_IF_ERROR(mut_cls->AddInstance(oid, start));
  for (ClassDef* c : SelfAndSuperclasses(class_name)) {
    TCH_RETURN_IF_ERROR(c->AddMember(oid, start));
  }
  ++next_oid_;
  footprint_.oids.insert(oid.id);
  footprint_.oid_allocated = true;
  MutableShard(oid.id).slots.emplace(
      oid.id,
      ObjectSlot{std::move(obj), cow_epoch_.load(std::memory_order_relaxed)});
  ReindexOid(oid.id);
  return oid;
}

Status Database::UpdateAttribute(Oid oid, std::string_view attr, Value v) {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  if (!obj->alive()) {
    return Status::FailedPrecondition("object " + oid.ToString() +
                                      " has been deleted");
  }
  std::optional<std::string> cls_name = obj->CurrentClass();
  if (!cls_name.has_value()) {
    return Status::Internal("object " + oid.ToString() + " has no class");
  }
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(*cls_name));
  const AttributeDef* def = cls->FindAttribute(attr);
  if (def == nullptr) {
    return Status::NotFound("class " + *cls_name + " has no attribute '" +
                            std::string(attr) + "'");
  }
  Object* mut = GetMutableObject(oid);
  if (def->is_temporal()) {
    TCH_RETURN_IF_ERROR(CheckLegalValueOverInterval(
        v, def->type->element(), Interval::FromUntilNow(now()),
        typing_context()));
    TCH_RETURN_IF_ERROR(
        mut->AssertTemporalAttribute(attr, now(), std::move(v)));
    ReindexOid(oid.id);
    return Status::OK();
  }
  TCH_RETURN_IF_ERROR(CheckLegalValue(v, def->type, now(), typing_context()));
  mut->SetAttribute(attr, std::move(v));
  ReindexOid(oid.id);
  return Status::OK();
}

Status Database::UpdateAttributeAt(Oid oid, std::string_view attr,
                                   const Interval& interval, Value v) {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  std::optional<std::string> cls_name = obj->CurrentClass();
  if (!cls_name.has_value()) {
    return Status::Internal("object " + oid.ToString() + " has no class");
  }
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(*cls_name));
  const AttributeDef* def = cls->FindAttribute(attr);
  if (def == nullptr) {
    return Status::NotFound("class " + *cls_name + " has no attribute '" +
                            std::string(attr) + "'");
  }
  if (!def->is_temporal()) {
    return Status::FailedPrecondition(
        "attribute '" + std::string(attr) +
        "' is non-temporal; valid-time updates do not apply (its past "
        "values are not recorded)");
  }
  if (!obj->lifespan().Covers(interval, now())) {
    return Status::TemporalError("interval " + interval.ToString() +
                                 " is not within the lifespan of " +
                                 oid.ToString());
  }
  TCH_RETURN_IF_ERROR(CheckLegalValueOverInterval(
      v, def->type->element(), interval, typing_context()));
  TCH_RETURN_IF_ERROR(GetMutableObject(oid)->DefineTemporalAttribute(
      attr, interval, std::move(v)));
  ReindexOid(oid.id);
  return Status::OK();
}

Status Database::Migrate(Oid oid, std::string_view new_class,
                         FieldInits added) {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  if (!obj->alive()) {
    return Status::FailedPrecondition("object " + oid.ToString() +
                                      " has been deleted");
  }
  std::optional<std::string> old_name = obj->CurrentClass();
  if (!old_name.has_value()) {
    return Status::Internal("object " + oid.ToString() + " has no class");
  }
  if (*old_name == new_class) return Status::OK();
  TCH_ASSIGN_OR_RETURN(const ClassDef* old_cls, FindClass(*old_name));
  TCH_ASSIGN_OR_RETURN(const ClassDef* new_cls, FindClass(new_class));
  if (!new_cls->alive()) {
    return Status::FailedPrecondition("class " + std::string(new_class) +
                                      " has been deleted");
  }
  // Invariant 6.2: objects never migrate across hierarchies.
  TCH_ASSIGN_OR_RETURN(std::string old_h, isa_->HierarchyId(*old_name));
  TCH_ASSIGN_OR_RETURN(std::string new_h, isa_->HierarchyId(new_class));
  if (old_h != new_h) {
    return Status::FailedPrecondition(
        "cannot migrate " + oid.ToString() + " from class " + *old_name +
        " to class " + std::string(new_class) +
        ": the classes belong to different ISA hierarchies (Invariant "
        "6.2)");
  }

  TimePoint t = now();
  Object* mut = GetMutableObject(oid);

  std::map<std::string, Value, std::less<>> provided;
  for (auto& [name, v] : added) {
    if (new_cls->FindAttribute(name) == nullptr) {
      return Status::NotFound("class " + std::string(new_class) +
                              " has no attribute '" + name + "'");
    }
    provided.emplace(name, std::move(v));
  }

  // Attributes gained by the migration (Section 5.2: promotion adds
  // dependents/officialcar). Also covers re-specialization after an
  // earlier generalization: a retained temporal attribute is simply
  // asserted again from now.
  for (const AttributeDef& attr : new_cls->attributes()) {
    const bool had = old_cls->FindAttribute(attr.name) != nullptr;
    auto it = provided.find(attr.name);
    if (had && it == provided.end()) continue;
    Value v = it == provided.end() ? Value::Null() : std::move(it->second);
    if (attr.is_temporal()) {
      TCH_RETURN_IF_ERROR(CheckLegalValueOverInterval(
          v, attr.type->element(), Interval::FromUntilNow(t),
          typing_context()));
      TCH_RETURN_IF_ERROR(mut->AssertTemporalAttribute(attr.name, t,
                                                       std::move(v)));
    } else {
      TCH_RETURN_IF_ERROR(
          CheckLegalValue(v, attr.type, t, typing_context()));
      mut->SetAttribute(attr.name, std::move(v));
    }
  }
  // Attributes lost by the migration (Section 5.2: demotion drops
  // dependents/officialcar; static ones vanish, temporal ones are closed
  // but retained).
  for (const AttributeDef& attr : old_cls->attributes()) {
    if (new_cls->FindAttribute(attr.name) != nullptr) continue;
    if (attr.is_temporal()) {
      TCH_RETURN_IF_ERROR(mut->CloseTemporalAttribute(attr.name, t - 1));
    } else {
      mut->RemoveAttribute(attr.name);
    }
  }

  TCH_RETURN_IF_ERROR(mut->MigrateTo(new_class, t));

  // Extents: the instance moves between proper extents; membership is
  // recomputed as {new class + its superclasses}.
  TCH_RETURN_IF_ERROR(GetMutableClass(*old_name)->RemoveInstance(oid, t));
  TCH_RETURN_IF_ERROR(GetMutableClass(new_class)->AddInstance(oid, t));
  std::set<std::string> new_membership;
  new_membership.insert(std::string(new_class));
  for (const std::string& s : isa_->Superclasses(new_class)) {
    new_membership.insert(s);
  }
  std::set<std::string> old_membership;
  old_membership.insert(*old_name);
  for (const std::string& s : isa_->Superclasses(*old_name)) {
    old_membership.insert(s);
  }
  for (const std::string& cls : old_membership) {
    if (new_membership.count(cls) == 0) {
      TCH_RETURN_IF_ERROR(GetMutableClass(cls)->RemoveMember(oid, t));
    }
  }
  for (const std::string& cls : new_membership) {
    if (old_membership.count(cls) == 0) {
      TCH_RETURN_IF_ERROR(GetMutableClass(cls)->AddMember(oid, t));
    }
  }
  ReindexOid(oid.id);
  return Status::OK();
}

Status Database::DeleteObject(Oid oid) {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  if (!obj->alive()) {
    return Status::FailedPrecondition("object " + oid.ToString() +
                                      " is already deleted");
  }
  // Referential integrity: no *live* object may still reference oid at
  // the current time.
  for (const auto& shard : objects_) {
    if (shard == nullptr) continue;
    for (const auto& [other_id, slot] : shard->slots) {
      const Object* other = slot.obj.get();
      if (other_id == oid.id || !other->alive()) continue;
      std::vector<Oid> refs = other->ReferencedOids(now());
      if (std::binary_search(refs.begin(), refs.end(), oid)) {
        return Status::ConsistencyViolation(
            "cannot delete " + oid.ToString() + ": object " +
            other->id().ToString() + " still references it at time " +
            InstantToString(now()));
      }
    }
  }
  return DeleteObjectUnchecked(oid);
}

Status Database::DeleteObjectUnchecked(Oid oid) {
  Object* obj = GetMutableObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("object " + oid.ToString() + " does not exist");
  }
  // Deletions must re-validate referential integrity (Definition 5.6)
  // against concurrently committed writers, not just local state.
  footprint_.deleted_oids.insert(oid.id);
  TimePoint t = now();
  std::optional<std::string> cls = obj->CurrentClass();
  TCH_RETURN_IF_ERROR(obj->CloseLifespan(t));
  if (cls.has_value()) {
    ClassDef* c = GetMutableClass(*cls);
    if (c != nullptr) TCH_RETURN_IF_ERROR(c->RemoveInstance(oid, t + 1));
    for (ClassDef* sc : SelfAndSuperclasses(*cls)) {
      TCH_RETURN_IF_ERROR(sc->RemoveMember(oid, t + 1));
    }
  }
  ReindexOid(oid.id);
  return Status::OK();
}

Status Database::QuarantineObject(Oid oid) {
  if (GetObject(oid) == nullptr) {
    return Status::NotFound("object " + oid.ToString() + " does not exist");
  }
  // Recovery surgery rewrites arbitrary extents: no per-slot footprint can
  // describe it, so it conflicts with everything.
  footprint_.all = true;
  MutableShard(oid.id).slots.erase(oid.id);
  for (const std::string& name : ClassNames()) {
    GetMutableClass(name)->ScrubFromExtents(oid);
  }
  ReindexOid(oid.id);
  return Status::OK();
}

const Object* Database::GetObject(Oid oid) const {
  const ObjectShard* shard = objects_[ShardIndex(oid.id)].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->slots.find(oid.id);
  return it == shard->slots.end() ? nullptr : it->second.obj.get();
}

Object* Database::GetMutableObject(Oid oid) {
  // Miss-check against the shared shard first so NotFound paths do not
  // clone it.
  if (GetObject(oid) == nullptr) return nullptr;
  const uint64_t epoch = cow_epoch_.load(std::memory_order_relaxed);
  ObjectSlot& slot = MutableShard(oid.id).slots.find(oid.id)->second;
  if (slot.epoch != epoch) {
    slot.obj = std::make_shared<Object>(*slot.obj);
    slot.epoch = epoch;
  }
  footprint_.oids.insert(oid.id);
  return slot.obj.get();
}

Result<const Object*> Database::FindObject(Oid oid) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("object " + oid.ToString() + " does not exist");
  }
  return obj;
}

std::vector<Oid> Database::AllOids() const {
  std::vector<Oid> out;
  out.reserve(object_count());
  for (const auto& shard : objects_) {
    if (shard == nullptr) continue;
    for (const auto& [id, unused] : shard->slots) out.push_back(Oid{id});
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Database::object_count() const {
  size_t n = 0;
  for (const auto& shard : objects_) {
    if (shard != nullptr) n += shard->slots.size();
  }
  return n;
}

// --- Table 3 functions ------------------------------------------------------

std::vector<Oid> Database::Pi(std::string_view class_name,
                              TimePoint t) const {
  const ClassDef* cls = GetClass(class_name);
  if (cls == nullptr) return {};
  return cls->ExtentAt(ResolveInstant(t, now()));
}

Result<const Type*> Database::StructuralTypeOf(
    std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  return cls->StructuralType();
}

Result<const Type*> Database::HistoricalTypeOf(
    std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  return cls->HistoricalType();
}

Result<const Type*> Database::StaticTypeOf(
    std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  return cls->StaticType();
}

Result<Value> Database::HStateOf(Oid oid, TimePoint t) const {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  return obj->HState(ResolveInstant(t, now()));
}

Result<Value> Database::SStateOf(Oid oid) const {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  return obj->SState();
}

Result<Interval> Database::OLifespan(Oid oid) const {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  return obj->lifespan();
}

Result<IntervalSet> Database::MLifespan(Oid oid,
                                        std::string_view class_name) const {
  TCH_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(class_name));
  TCH_RETURN_IF_ERROR(FindObject(oid).status());
  return cls->MemberIntervals(oid, now());
}

Result<std::vector<Oid>> Database::Ref(Oid oid, TimePoint t) const {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  return obj->ReferencedOids(ResolveInstant(t, now()));
}

Result<Value> Database::SnapshotOf(Oid oid, TimePoint t) const {
  TCH_ASSIGN_OR_RETURN(const Object* obj, FindObject(oid));
  return obj->Snapshot(t, now());
}

// --- ExtentProvider ------------------------------------------------------------

bool Database::InExtent(std::string_view class_name, Oid oid,
                        TimePoint t) const {
  const ClassDef* cls = GetClass(class_name);
  if (cls == nullptr) return false;
  return cls->InExtentAt(oid, ResolveInstant(t, now()));
}

bool Database::InExtentThroughout(std::string_view class_name, Oid oid,
                                  const Interval& interval) const {
  const ClassDef* cls = GetClass(class_name);
  if (cls == nullptr) return false;
  return cls->RawMemberIntervals(oid).CoversInterval(interval);
}

std::optional<std::string> Database::MostSpecificClass(Oid oid,
                                                       TimePoint t) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) return std::nullopt;
  return obj->ClassAt(ResolveInstant(t, now()));
}

std::vector<ClassDef*> Database::SelfAndSuperclasses(std::string_view name) {
  std::vector<ClassDef*> out;
  ClassDef* self = GetMutableClass(name);
  if (self == nullptr) return out;
  out.push_back(self);
  for (const std::string& super : isa_->Superclasses(name)) {
    ClassDef* c = GetMutableClass(super);
    if (c != nullptr) out.push_back(c);
  }
  return out;
}

Status Database::RestoreClass(const ClassSpec& effective_spec,
                              const Interval& lifespan, TemporalFunction ext,
                              TemporalFunction proper_ext,
                              std::vector<Value::Field> c_attr_values) {
  if (classes_->map.count(effective_spec.name) != 0) {
    return Status::AlreadyExists("class " + effective_spec.name +
                                 " already exists");
  }
  footprint_.schema_changed = true;
  ++schema_version_;
  TCH_RETURN_IF_ERROR(
      MutableIsa().AddClass(effective_spec.name,
                            effective_spec.superclasses));
  auto cls = std::make_shared<ClassDef>(
      effective_spec.name, lifespan.start(), effective_spec.superclasses,
      effective_spec.attributes, effective_spec.methods,
      effective_spec.c_attributes, effective_spec.c_methods);
  // Reorder the c-attribute values to the class's sorted layout.
  std::vector<Value> values(cls->c_attributes().size());
  for (auto& [name, v] : c_attr_values) {
    bool found = false;
    for (size_t i = 0; i < cls->c_attributes().size(); ++i) {
      if (cls->c_attributes()[i].name == name) {
        values[i] = std::move(v);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Corruption("restored value for unknown c-attribute '" +
                                name + "' of class " + effective_spec.name);
    }
  }
  TCH_RETURN_IF_ERROR(cls->RestoreState(lifespan, std::move(ext),
                                        std::move(proper_ext),
                                        std::move(values)));
  MutableClassTable().map.emplace(
      effective_spec.name,
      ClassSlot{std::move(cls),
                cow_epoch_.load(std::memory_order_relaxed)});
  return Status::OK();
}

Status Database::RestoreObject(Oid oid, const Interval& lifespan,
                               TemporalFunction class_history,
                               std::vector<Value::Field> attributes) {
  if (GetObject(oid) != nullptr) {
    return Status::AlreadyExists("object " + oid.ToString() +
                                 " already exists");
  }
  auto obj = std::make_shared<Object>(oid, "", lifespan.start());
  obj->RestoreState(lifespan, std::move(class_history));
  for (auto& [name, v] : attributes) {
    obj->SetAttribute(name, std::move(v));
  }
  footprint_.oids.insert(oid.id);
  footprint_.oid_allocated = true;
  MutableShard(oid.id).slots.emplace(
      oid.id,
      ObjectSlot{std::move(obj), cow_epoch_.load(std::memory_order_relaxed)});
  if (oid.id >= next_oid_) next_oid_ = oid.id + 1;
  ReindexOid(oid.id);
  return Status::OK();
}

WriteFootprint Database::TakeFootprint() {
  WriteFootprint out = std::move(footprint_);
  footprint_ = WriteFootprint{};
  return out;
}

void Database::AdoptChanges(const Database& src, const WriteFootprint& fp) {
  if (fp.all || fp.schema_changed) {
    // Spine-level adoption. Validation admits schema transactions only
    // when no other commit intervened, so taking src's whole state is
    // exactly what running the transaction on the tip would have built.
    clock_ = src.clock_;
    isa_ = src.isa_;
    isa_epoch_ = src.isa_epoch_;
    classes_ = src.classes_;
    objects_ = src.objects_;
    index_defs_ = src.index_defs_;
    index_shards_ = src.index_shards_;
    next_oid_ = src.next_oid_;
    // Fresh epochs on both sides (the same protocol as the copy
    // constructor): every adopted structure is now shared, so whichever
    // side mutates next must clone first. Epochs are strictly increasing,
    // so the fresh values match no existing slot.
    cow_epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
    src.cow_epoch_.store(NextCowEpoch(), std::memory_order_relaxed);
    return;
  }
  if (fp.clock_advanced) clock_ = src.clock_;
  if (src.next_oid_ > next_oid_) next_oid_ = src.next_oid_;
  if (!fp.classes.empty()) {
    ClassTable& table = MutableClassTable();
    for (const std::string& name : fp.classes) {
      auto it = src.classes_->map.find(name);
      if (it == src.classes_->map.end()) {
        table.map.erase(name);  // defensive: non-schema ops never erase
        continue;
      }
      // Epoch 0 matches no Database (NextCowEpoch starts at 1), so the
      // adopted slot is re-cloned before any in-place mutation here.
      table.map[name] = ClassSlot{it->second.def, 0};
    }
  }
  for (const std::set<uint64_t>* ids : {&fp.oids, &fp.deleted_oids}) {
    for (uint64_t id : *ids) {
      ObjectShard& shard = MutableShard(id);
      const ObjectShard* src_shard = src.objects_[ShardIndex(id)].get();
      const ObjectSlot* found = nullptr;
      if (src_shard != nullptr) {
        auto it = src_shard->slots.find(id);
        if (it != src_shard->slots.end()) found = &it->second;
      }
      if (found == nullptr) {
        shard.slots.erase(id);  // erased in src (fp.all covers quarantine,
                                // but stay defensive)
      } else {
        shard.slots[id] = ObjectSlot{found->obj, 0};
      }
      // Index entries are a pure function of the object's state, so
      // recomputing them here is equivalent to having run the
      // transaction's index maintenance on the tip directly — and an
      // index write whose underlying oid lost first-committer-wins never
      // reaches this point (validation aborted the commit).
      ReindexOid(id);
    }
  }
}

size_t Database::ApproxObjectBytes() const {
  size_t bytes = 0;
  for (const auto& shard : objects_) {
    if (shard == nullptr) continue;
    for (const auto& [unused, slot] : shard->slots) {
      bytes += slot.obj->ApproxBytes();
    }
  }
  return bytes;
}

}  // namespace tchimera
