#include "core/db/consistency.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tchimera {
namespace {

// Raw-interval containment with kNow treated as +infinity.
bool RawCovers(const Interval& outer, const Interval& inner) {
  if (inner.empty()) return true;
  if (outer.empty()) return false;
  return outer.start() <= inner.start() && inner.end() <= outer.end();
}

Interval RawIntersect(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  TimePoint s = std::max(a.start(), b.start());
  TimePoint e = std::min(a.end(), b.end());
  if (e < s) return Interval::Empty();
  return Interval(s, e);
}

}  // namespace

Status CheckHistoricalConsistency(const Database& db, const Object& obj,
                                  const ClassDef& cls, TimePoint t) {
  const Type* h_type = cls.HistoricalType();
  Result<Value> h_state = obj.HState(t);
  if (!h_state.ok()) return h_state.status();
  if (h_type == nullptr) {
    // The class has no temporal attributes; the object must have no
    // meaningful temporal attribute at t.
    if (!h_state->Fields().empty()) {
      return Status::ConsistencyViolation(
          "object " + obj.id().ToString() +
          " has meaningful temporal attributes at " + InstantToString(t) +
          " but class " + cls.name() + " declares none");
    }
    return Status::OK();
  }
  Status s = CheckLegalValue(*h_state, h_type, t, db.typing_context());
  if (!s.ok()) {
    return Status::ConsistencyViolation(
        "object " + obj.id().ToString() +
        " is not an historically consistent instance of " + cls.name() +
        " at " + InstantToString(t) + ": " + s.message());
  }
  return Status::OK();
}

Status CheckHistoricalConsistencyOver(const Database& db, const Object& obj,
                                      const ClassDef& cls,
                                      const Interval& interval) {
  if (interval.empty()) return Status::OK();
  const TypingContext ctx = db.typing_context();
  // Every temporal attribute of the class: meaningful throughout the
  // interval, with values legal for T^- over each constant piece.
  std::set<std::string> class_temporal;
  for (const AttributeDef& attr : cls.attributes()) {
    if (!attr.is_temporal()) continue;
    class_temporal.insert(attr.name);
    const Value* stored = obj.Attribute(attr.name);
    if (stored == nullptr || stored->kind() != ValueKind::kTemporal) {
      return Status::ConsistencyViolation(
          "object " + obj.id().ToString() +
          " lacks temporal attribute '" + attr.name + "' of class " +
          cls.name());
    }
    const TemporalFunction& f = stored->AsTemporal();
    if (!f.RawDomain().CoversInterval(interval)) {
      return Status::ConsistencyViolation(
          "temporal attribute '" + attr.name + "' of " +
          obj.id().ToString() + " is not meaningful throughout " +
          interval.ToString() + " (membership period in class " +
          cls.name() + ")");
    }
    for (const auto& seg : f.segments()) {
      Interval piece = RawIntersect(seg.interval, interval);
      if (piece.empty()) continue;
      Status s = CheckLegalValueOverInterval(seg.value,
                                             attr.type->element(), piece, ctx);
      if (!s.ok()) {
        return Status::ConsistencyViolation(
            "temporal attribute '" + attr.name + "' of " +
            obj.id().ToString() + " over " + piece.ToString() + ": " +
            s.message());
      }
    }
  }
  // No extra temporal attribute (e.g. retained from a previous class,
  // Section 5.2) may be meaningful inside the interval.
  for (const std::string& name : obj.AttributeNames()) {
    const Value* stored = obj.Attribute(name);
    if (stored->kind() != ValueKind::kTemporal) continue;
    if (class_temporal.count(name) != 0) continue;
    IntervalSet overlap = stored->AsTemporal().RawDomain().Intersect(
        IntervalSet::Of(interval));
    if (!overlap.empty()) {
      return Status::ConsistencyViolation(
          "retained temporal attribute '" + name + "' of " +
          obj.id().ToString() + " is meaningful during " +
          overlap.ToString() + " although class " + cls.name() +
          " does not declare it");
    }
  }
  return Status::OK();
}

Status CheckStaticConsistency(const Database& db, const Object& obj,
                              const ClassDef& cls) {
  const Type* s_type = cls.StaticType();
  Value s_state = obj.SState();
  if (s_type == nullptr) {
    if (!s_state.Fields().empty()) {
      return Status::ConsistencyViolation(
          "object " + obj.id().ToString() +
          " carries static attributes but class " + cls.name() +
          " declares none");
    }
    return Status::OK();
  }
  Status s = CheckLegalValue(s_state, s_type, db.now(), db.typing_context());
  if (!s.ok()) {
    return Status::ConsistencyViolation(
        "object " + obj.id().ToString() +
        " is not a statically consistent instance of " + cls.name() + ": " +
        s.message());
  }
  return Status::OK();
}

Status CheckObjectConsistency(const Database& db, Oid oid) {
  TCH_ASSIGN_OR_RETURN(const Object* obj, db.FindObject(oid));
  const bool historical = obj->IsHistorical();
  // Clause 1+2: every class-history pair <tau, c>. For a static object
  // only the current pair is recorded (Definition 5.1), which the
  // normalized view reflects.
  const TemporalFunction history = obj->NormalizedClassHistory(db.now());
  for (const auto& seg : history.segments()) {
    if (seg.value.kind() != ValueKind::kString) {
      return Status::ConsistencyViolation("class history of " +
                                          oid.ToString() +
                                          " holds a non-class value");
    }
    const std::string& cls_name = seg.value.AsString();
    const ClassDef* cls = db.GetClass(cls_name);
    if (cls == nullptr) {
      return Status::ConsistencyViolation("class history of " +
                                          oid.ToString() +
                                          " names unknown class " + cls_name);
    }
    // tau must be contained in the class lifespan.
    if (!RawCovers(cls->lifespan(), seg.interval)) {
      return Status::ConsistencyViolation(
          "class-history interval " + seg.interval.ToString() + " of " +
          oid.ToString() + " is not within the lifespan " +
          cls->lifespan().ToString() + " of class " + cls_name);
    }
    if (historical) {
      TCH_RETURN_IF_ERROR(
          CheckHistoricalConsistencyOver(db, *obj, *cls, seg.interval));
    }
  }
  // Clause 3: static consistency with the current class.
  std::optional<std::string> current = obj->CurrentClass();
  if (obj->alive()) {
    if (!current.has_value()) {
      return Status::ConsistencyViolation("live object " + oid.ToString() +
                                          " has no current class");
    }
    const ClassDef* cls = db.GetClass(*current);
    if (cls == nullptr) {
      return Status::ConsistencyViolation("current class " + *current +
                                          " of " + oid.ToString() +
                                          " does not exist");
    }
    TCH_RETURN_IF_ERROR(CheckStaticConsistency(db, *obj, *cls));
  }
  return Status::OK();
}

Status CheckConsistentObjectSet(const Database& db, TimePoint t) {
  TimePoint rt = ResolveInstant(t, db.now());
  // OID-UNIQUENESS holds structurally (objects are keyed by oid); verify
  // oids are well-formed anyway.
  for (Oid oid : db.AllOids()) {
    const Object* obj = db.GetObject(oid);
    if (!oid.valid()) {
      return Status::ConsistencyViolation("invalid oid in object store");
    }
    if (!obj->lifespan().ContainsResolved(rt)) continue;
    for (Oid target : obj->ReferencedOids(rt)) {
      const Object* dest = db.GetObject(target);
      if (dest == nullptr || !dest->lifespan().ContainsResolved(rt)) {
        return Status::ConsistencyViolation(
            "referential integrity: " + oid.ToString() + " references " +
            target.ToString() + " at " + InstantToString(rt) +
            " but the target " +
            (dest == nullptr ? std::string("does not exist")
                             : "lifespan " + dest->lifespan().ToString() +
                                   " does not contain the instant"));
      }
    }
  }
  return Status::OK();
}

Status CheckReferentialIntegrityAllTime(const Database& db) {
  for (Oid oid : db.AllOids()) {
    const Object* obj = db.GetObject(oid);
    for (const std::string& name : obj->AttributeNames()) {
      const Value* v = obj->Attribute(name);
      if (v->kind() == ValueKind::kTemporal) {
        for (const auto& seg : v->AsTemporal().segments()) {
          std::vector<Oid> refs;
          seg.value.CollectOids(&refs);
          for (Oid target : refs) {
            const Object* dest = db.GetObject(target);
            if (dest == nullptr || !RawCovers(dest->lifespan(),
                                              seg.interval)) {
              return Status::ConsistencyViolation(
                  "attribute '" + name + "' of " + oid.ToString() +
                  " references " + target.ToString() + " over " +
                  seg.interval.ToString() +
                  " beyond the target's lifespan");
            }
          }
        }
      } else {
        std::vector<Oid> refs;
        v->CollectOids(&refs);
        for (Oid target : refs) {
          const Object* dest = db.GetObject(target);
          if (dest == nullptr ||
              !dest->lifespan().ContainsResolved(db.now())) {
            return Status::ConsistencyViolation(
                "static attribute '" + name + "' of " + oid.ToString() +
                " references " + target.ToString() +
                " which is not alive now");
          }
        }
      }
    }
  }
  return Status::OK();
}

Status CheckInvariant51(const Database& db) {
  // (1) For every class and every extent segment, each member's lifespan
  // covers the segment.
  for (const std::string& cls_name : db.ClassNames()) {
    const ClassDef* cls = db.GetClass(cls_name);
    for (const auto& seg : cls->ext().segments()) {
      if (seg.value.kind() != ValueKind::kSet) continue;
      for (const Value& e : seg.value.Elements()) {
        const Object* obj = db.GetObject(e.AsOid());
        if (obj == nullptr || !RawCovers(obj->lifespan(), seg.interval)) {
          return Status::ConsistencyViolation(
              "Invariant 5.1(1): " + e.AsOid().ToString() +
              " is in the extent of " + cls_name + " over " +
              seg.interval.ToString() + " outside its lifespan");
        }
      }
    }
  }
  // (2) Proper-extent membership intervals == class-history intervals.
  for (Oid oid : db.AllOids()) {
    const Object* obj = db.GetObject(oid);
    // Group the object's class history by class.
    std::map<std::string, IntervalSet> from_history;
    for (const auto& seg : obj->class_history().segments()) {
      if (seg.value.kind() != ValueKind::kString) continue;
      from_history[seg.value.AsString()].Add(seg.interval);
    }
    for (const std::string& cls_name : db.ClassNames()) {
      const ClassDef* cls = db.GetClass(cls_name);
      IntervalSet from_extent;
      Value needle = Value::OfOid(oid);
      for (const auto& seg : cls->proper_ext().segments()) {
        if (seg.value.kind() == ValueKind::kSet &&
            seg.value.Contains(needle)) {
          from_extent.Add(seg.interval);
        }
      }
      auto it = from_history.find(cls_name);
      IntervalSet expected =
          it == from_history.end() ? IntervalSet() : it->second;
      if (from_extent != expected) {
        return Status::ConsistencyViolation(
            "Invariant 5.1(2): proper extent of " + cls_name + " records " +
            oid.ToString() + " over " + from_extent.ToString() +
            " but its class history says " + expected.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckInvariant52(const Database& db) {
  for (Oid oid : db.AllOids()) {
    const Object* obj = db.GetObject(oid);
    // (1) o_lifespan(i) = U_c c_lifespan(i, c).
    IntervalSet membership;
    for (const std::string& cls_name : db.ClassNames()) {
      membership =
          membership.Union(db.GetClass(cls_name)->RawMemberIntervals(oid));
    }
    IntervalSet lifespan = IntervalSet::Of(obj->lifespan());
    if (membership != lifespan) {
      return Status::ConsistencyViolation(
          "Invariant 5.2(1): membership intervals " + membership.ToString() +
          " of " + oid.ToString() + " do not partition its lifespan " +
          lifespan.ToString());
    }
    // (2) Extent-derived membership agrees with class-history-derived
    // membership: member of c exactly when the most specific class is a
    // subclass of c.
    for (const std::string& cls_name : db.ClassNames()) {
      IntervalSet from_extent =
          db.GetClass(cls_name)->RawMemberIntervals(oid);
      IntervalSet from_history;
      for (const auto& seg : obj->class_history().segments()) {
        if (seg.value.kind() != ValueKind::kString) continue;
        if (db.isa().IsSubclassOf(seg.value.AsString(), cls_name)) {
          from_history.Add(seg.interval);
        }
      }
      if (from_extent != from_history) {
        return Status::ConsistencyViolation(
            "Invariant 5.2(2): membership of " + oid.ToString() + " in " +
            cls_name + " derived from extents is " + from_extent.ToString() +
            " but derived from its class history is " +
            from_history.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckInvariant61(const Database& db) {
  for (const std::string& sub_name : db.ClassNames()) {
    const ClassDef* sub = db.GetClass(sub_name);
    for (const std::string& super_name : db.isa().Superclasses(sub_name)) {
      const ClassDef* super = db.GetClass(super_name);
      if (super == nullptr) {
        return Status::ConsistencyViolation("ISA names unknown class " +
                                            super_name);
      }
      // (1) Lifespan inclusion.
      if (!RawCovers(super->lifespan(), sub->lifespan())) {
        return Status::ConsistencyViolation(
            "Invariant 6.1(1): lifespan " + sub->lifespan().ToString() +
            " of " + sub_name + " is not within lifespan " +
            super->lifespan().ToString() + " of superclass " + super_name);
      }
      // (2) Extent inclusion at every instant (piecewise).
      for (const auto& seg : sub->ext().segments()) {
        if (seg.value.kind() != ValueKind::kSet) continue;
        for (const Value& e : seg.value.Elements()) {
          if (!super->RawMemberIntervals(e.AsOid())
                   .CoversInterval(seg.interval)) {
            return Status::ConsistencyViolation(
                "Invariant 6.1(2): " + e.AsOid().ToString() +
                " is in the extent of " + sub_name + " over " +
                seg.interval.ToString() +
                " but not in the extent of superclass " + super_name);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status CheckInvariant62(const Database& db) {
  // Each object must only ever appear in extents of classes of a single
  // hierarchy (connected component of the ISA DAG).
  std::map<Oid, std::string> hierarchy_of;
  for (const std::string& cls_name : db.ClassNames()) {
    const ClassDef* cls = db.GetClass(cls_name);
    Result<std::string> h = db.isa().HierarchyId(cls_name);
    if (!h.ok()) return h.status();
    std::set<Oid> ever;
    for (const auto& seg : cls->ext().segments()) {
      if (seg.value.kind() != ValueKind::kSet) continue;
      for (const Value& e : seg.value.Elements()) ever.insert(e.AsOid());
    }
    for (Oid oid : ever) {
      auto [it, inserted] = hierarchy_of.emplace(oid, *h);
      if (!inserted && it->second != *h) {
        return Status::ConsistencyViolation(
            "Invariant 6.2: " + oid.ToString() +
            " has belonged to hierarchies rooted at " + it->second +
            " and " + *h);
      }
    }
  }
  return Status::OK();
}

Status CheckDatabaseConsistency(const Database& db) {
  for (Oid oid : db.AllOids()) {
    TCH_RETURN_IF_ERROR(CheckObjectConsistency(db, oid));
  }
  TCH_RETURN_IF_ERROR(CheckConsistentObjectSet(db, db.now()));
  TCH_RETURN_IF_ERROR(CheckReferentialIntegrityAllTime(db));
  TCH_RETURN_IF_ERROR(CheckInvariant51(db));
  TCH_RETURN_IF_ERROR(CheckInvariant52(db));
  TCH_RETURN_IF_ERROR(CheckInvariant61(db));
  TCH_RETURN_IF_ERROR(CheckInvariant62(db));
  return Status::OK();
}

}  // namespace tchimera
