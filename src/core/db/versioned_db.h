// MVCC access to a Database: lock-free snapshots, one writer at a time.
//
// The model is inherently read-heavy: every Table 3 function (pi,
// h_state, s_state, snapshot, ref, ...) is a pure read over immutable
// history, and Database exposes them all as const members with no
// mutable caches. VersionedDatabase turns that property into a
// multi-version concurrency protocol:
//
//   - the committed state is an immutable, shared_ptr-published version.
//     OpenSnapshot() is a single atomic load — no lock is held for the
//     snapshot's lifetime, so a snapshot may live arbitrarily long
//     without ever blocking writers (or anyone else);
//   - exactly one writer at a time holds a WriteGuard (the writer
//     mutex), mutates the *tip* database through it, and publishes with
//     Commit(): the tip is copied copy-on-write (Database's copy
//     constructor shares every untouched class/object/shard — see
//     database.h) into a new immutable version, whose cost is
//     proportional to what the writer touched, not to database size.
//     A guard dropped without Commit() publishes nothing.
//
// Version retirement is shared_ptr refcounting: when the last snapshot
// pinning a version drops (and a newer version has been published), that
// version's Database is freed — and COW sharing means only the record
// copies unique to it, not the shared bulk. Database::live_instance_count()
// makes this observable in tests.
//
// The version counter is monotone: two snapshots with equal versions see
// the identical Database instance, and a reader re-opening snapshots
// observes a non-decreasing sequence (readers never travel back in
// time). Writers are fully serialized — the writer-serialization
// guarantee the query Engine (query/session.h) builds group commit on:
// the order in which WriteGuards commit is the order statements reach
// the journal.
//
// See docs/CONCURRENCY.md for the full protocol.
#ifndef TCHIMERA_CORE_DB_VERSIONED_DB_H_
#define TCHIMERA_CORE_DB_VERSIONED_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "core/db/database.h"

namespace tchimera {

class VersionedDatabase;

// One immutable committed version: the database as of a commit, plus the
// commit number. Published via atomic shared_ptr; retired by refcount.
struct DbVersion {
  std::shared_ptr<const Database> db;
  uint64_t version = 0;
};

// A pinned, immutable view of the database. Movable, not copyable.
// Holding one costs a refcount — never a lock: long-lived snapshots do
// not delay writers, they only keep their own version's memory alive.
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  ReadSnapshot(ReadSnapshot&&) = default;
  ReadSnapshot& operator=(ReadSnapshot&&) = default;
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  bool valid() const { return v_ != nullptr; }
  const Database& db() const { return *v_->db; }
  // The commit version this snapshot observes (0 if invalid).
  uint64_t version() const { return v_ == nullptr ? 0 : v_->version; }

 private:
  friend class VersionedDatabase;
  explicit ReadSnapshot(std::shared_ptr<const DbVersion> v)
      : v_(std::move(v)) {}

  std::shared_ptr<const DbVersion> v_;
};

// Exclusive mutable access to the tip. Mutate through db(), then
// Commit() to publish — Commit() also releases the writer lock (there
// is deliberately no separate Release(): publishing outside the lock
// was a version-ordering bug, so the two are fused). Calling Commit()
// twice, or on a moved-from guard, is a hard error (abort). Destruction
// without Commit() releases the lock and publishes nothing — but note
// the tip keeps any mutation the guard made, which the next commit will
// publish; the model's mutation path rejects bad statements before
// touching state, so failed statements leave the tip unchanged.
class WriteGuard {
 public:
  WriteGuard(WriteGuard&&) = default;
  WriteGuard& operator=(WriteGuard&&) = default;
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  Database& db() { return *tip_; }
  // Publishes the tip as a new immutable version (copy-on-write copy)
  // and releases the writer lock. Returns the new version number. Call
  // at most once, only after the mutation succeeded.
  uint64_t Commit();

 private:
  friend class VersionedDatabase;
  WriteGuard(std::unique_lock<std::mutex> lock, Database* tip,
             VersionedDatabase* owner)
      : lock_(std::move(lock)), tip_(tip), owner_(owner) {}

  std::unique_lock<std::mutex> lock_;
  Database* tip_ = nullptr;
  VersionedDatabase* owner_ = nullptr;
};

class VersionedDatabase {
 public:
  VersionedDatabase();
  // Wraps an existing database (e.g. one recovery just rebuilt); its
  // state is published immediately as version 0.
  explicit VersionedDatabase(std::unique_ptr<Database> db);

  VersionedDatabase(const VersionedDatabase&) = delete;
  VersionedDatabase& operator=(const VersionedDatabase&) = delete;

  // Lock-free: one atomic load. Never blocks, never blocks anyone.
  ReadSnapshot OpenSnapshot() const;
  // Blocks until no other writer is active (never on readers).
  WriteGuard BeginWrite();

  // The latest committed version (0 for a freshly wrapped database).
  uint64_t version() const {
    return published_.load(std::memory_order_acquire)->version;
  }

  // The mutable tip, bypassing the writer lock. Strictly for
  // single-threaded phases (construction-time wiring, recovery replay
  // before any reader exists) and for callers already inside a
  // WriteGuard-derived exclusive section. Mutations made through this
  // accessor are NOT visible to snapshots until the next publication —
  // call PublishWriterState() (or commit a WriteGuard) afterwards.
  Database& writer_db() { return *tip_; }
  const Database& writer_db() const { return *tip_; }

  // Publishes the current tip state as a new version (for
  // single-threaded phases that mutated writer_db() directly).
  uint64_t PublishWriterState();

 private:
  friend class WriteGuard;

  // Publishes the tip; requires writer_mu_ held.
  uint64_t PublishLocked();

  std::unique_ptr<Database> tip_;
  mutable std::mutex writer_mu_;
  // The committed-version chain head. atomic<shared_ptr> so OpenSnapshot
  // is a wait-free load and retirement is plain refcounting.
  std::atomic<std::shared_ptr<const DbVersion>> published_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_VERSIONED_DB_H_
