// MVCC access to a Database: lock-free snapshots, optimistic writers.
//
// The model is inherently read-heavy: every Table 3 function (pi,
// h_state, s_state, snapshot, ref, ...) is a pure read over immutable
// history, and Database exposes them all as const members with no
// mutable caches. VersionedDatabase turns that property into a
// multi-version concurrency protocol:
//
//   - the committed state is an immutable, shared_ptr-published version.
//     OpenSnapshot() copies the head shared_ptr under a mutex held for
//     just that copy — no lock is held for the snapshot's lifetime, so a
//     snapshot may live arbitrarily long without ever blocking writers
//     (or anyone else);
//   - writers run in one of two modes. The exclusive mode: one writer
//     at a time holds a WriteGuard (the writer mutex), mutates the
//     *tip* database through it, and publishes with Commit(): the tip
//     is copied copy-on-write (Database's copy constructor shares every
//     untouched class/object/shard — see database.h) into a new
//     immutable version, whose cost is proportional to what the writer
//     touched, not to database size. A guard dropped without Commit()
//     publishes nothing. The optimistic mode: any number of
//     OptimisticTransactions mutate private COW copies concurrently
//     without holding any lock; CommitTransaction serializes only the
//     validate+publish(+journal-enqueue) critical section, validating
//     each transaction's write footprint against everything committed
//     since its base version (first committer wins; losers abort with
//     the retryable Status::Conflict).
//
// Version retirement is shared_ptr refcounting: when the last snapshot
// pinning a version drops (and a newer version has been published), that
// version's Database is freed — and COW sharing means only the record
// copies unique to it, not the shared bulk. Database::live_instance_count()
// makes this observable in tests.
//
// The version counter is monotone: two snapshots with equal versions see
// the identical Database instance, and a reader re-opening snapshots
// observes a non-decreasing sequence (readers never travel back in
// time). Commits are fully serialized even though optimistic execution
// is not — the commit-serialization guarantee the query Engine
// (query/session.h) builds group commit on: the order in which commits
// publish (WriteGuard or CommitTransaction) is the order statements
// reach the journal.
//
// See docs/CONCURRENCY.md for the full protocol.
#ifndef TCHIMERA_CORE_DB_VERSIONED_DB_H_
#define TCHIMERA_CORE_DB_VERSIONED_DB_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/result.h"
#include "core/db/database.h"

namespace tchimera {

class VersionedDatabase;

// One immutable committed version: the database as of a commit, plus the
// commit number. Published as the mutex-guarded head; retired by
// refcount.
struct DbVersion {
  std::shared_ptr<const Database> db;
  uint64_t version = 0;
};

// A pinned, immutable view of the database. Movable, not copyable.
// Holding one costs a refcount — never a lock: long-lived snapshots do
// not delay writers, they only keep their own version's memory alive.
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  ReadSnapshot(ReadSnapshot&&) = default;
  ReadSnapshot& operator=(ReadSnapshot&&) = default;
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  bool valid() const { return v_ != nullptr; }
  const Database& db() const { return *v_->db; }
  // The commit version this snapshot observes (0 if invalid).
  uint64_t version() const { return v_ == nullptr ? 0 : v_->version; }

 private:
  friend class VersionedDatabase;
  explicit ReadSnapshot(std::shared_ptr<const DbVersion> v)
      : v_(std::move(v)) {}

  std::shared_ptr<const DbVersion> v_;
};

// Exclusive mutable access to the tip. Mutate through db(), then
// Commit() to publish — Commit() also releases the writer lock (there
// is deliberately no separate Release(): publishing outside the lock
// was a version-ordering bug, so the two are fused). Calling Commit()
// twice, or on a moved-from guard, is a hard error (abort). Destruction
// without Commit() releases the lock and publishes nothing — but note
// the tip keeps any mutation the guard made, which the next commit will
// publish; the model's mutation path rejects bad statements before
// touching state, so failed statements leave the tip unchanged.
class WriteGuard {
 public:
  WriteGuard(WriteGuard&&) = default;
  WriteGuard& operator=(WriteGuard&&) = default;
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  Database& db() { return *tip_; }
  // Publishes the tip as a new immutable version (copy-on-write copy)
  // and releases the writer lock. Returns the new version number. Call
  // at most once, only after the mutation succeeded.
  uint64_t Commit();

 private:
  friend class VersionedDatabase;
  WriteGuard(std::unique_lock<std::mutex> lock, Database* tip,
             VersionedDatabase* owner)
      : lock_(std::move(lock)), tip_(tip), owner_(owner) {}

  std::unique_lock<std::mutex> lock_;
  Database* tip_ = nullptr;
  VersionedDatabase* owner_ = nullptr;
};

// An optimistic writer: a private COW copy of the database pinned at a
// base version. Mutate through db() from any one thread — no lock is
// held, so any number of transactions run concurrently — then hand the
// transaction to VersionedDatabase::CommitTransaction, which validates
// the accumulated write footprint against every version committed since
// the base (first committer wins) and either publishes or aborts with
// Status::Conflict. Dropping an uncommitted transaction abandons it at
// zero cost. Movable, not copyable.
class OptimisticTransaction {
 public:
  OptimisticTransaction() = default;
  OptimisticTransaction(OptimisticTransaction&&) = default;
  OptimisticTransaction& operator=(OptimisticTransaction&&) = default;
  OptimisticTransaction(const OptimisticTransaction&) = delete;
  OptimisticTransaction& operator=(const OptimisticTransaction&) = delete;

  bool valid() const { return db_ != nullptr; }
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  // The version this transaction is reading from (its snapshot).
  uint64_t base_version() const { return base_ == nullptr ? 0 : base_->version; }

 private:
  friend class VersionedDatabase;
  OptimisticTransaction(std::shared_ptr<const DbVersion> base,
                        std::unique_ptr<Database> db)
      : base_(std::move(base)), db_(std::move(db)) {}

  std::shared_ptr<const DbVersion> base_;
  std::unique_ptr<Database> db_;
};

class VersionedDatabase {
 public:
  VersionedDatabase();
  // Wraps an existing database (e.g. one recovery just rebuilt); its
  // state is published immediately as version 0.
  explicit VersionedDatabase(std::unique_ptr<Database> db);

  VersionedDatabase(const VersionedDatabase&) = delete;
  VersionedDatabase& operator=(const VersionedDatabase&) = delete;

  // A shared_ptr copy under a briefly-held mutex. Never blocks on
  // writer execution (publication swaps a pointer), and holding the
  // returned snapshot holds no lock.
  ReadSnapshot OpenSnapshot() const;
  // Blocks until no other writer is active (never on readers).
  WriteGuard BeginWrite();

  // Starts an optimistic transaction pinned at the currently published
  // version: a COW copy of it that the caller mutates privately. Takes
  // no lock — any number of transactions may be open at once; conflicts
  // are detected at CommitTransaction time, not here.
  OptimisticTransaction BeginTransaction() const;

  // First-committer-wins validation + publication. Takes the writer
  // mutex (the only serialized span of an optimistic writer's life) and
  //   1. validates the transaction's write footprint against the
  //      footprint of every version committed after its base — slot
  //      overlap, schema or clock movement, duplicate OID allocation,
  //      or a referential-integrity hazard (paper Def. 5.6: one side
  //      deleted an object the other side's touched objects reference)
  //      aborts with Status::Conflict, leaving the published chain and
  //      the transaction itself untouched so the caller can retry;
  //   2. runs `prepare` (if any) still under the mutex — the journal
  //      enqueue hook, so journal order equals commit order. A non-OK
  //      prepare aborts the commit without publishing;
  //   3. folds the transaction's touched slots into the tip
  //      (Database::AdoptChanges), publishes a new version, and records
  //      the footprint for later validators.
  // On success the transaction is consumed (valid() becomes false) and
  // the new version number is returned. A base that has aged out of the
  // retained footprint window also aborts with Conflict.
  Result<uint64_t> CommitTransaction(OptimisticTransaction* txn,
                                     const std::function<Status()>& prepare =
                                         nullptr);

  // How many optimistic commits have aborted in validation since
  // construction. Exposed for tests and bench reporting.
  uint64_t conflict_count() const {
    return conflicts_.load(std::memory_order_relaxed);
  }

  // The latest committed version (0 for a freshly wrapped database).
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(published_mu_);
    return published_->version;
  }

  // The mutable tip, bypassing the writer lock. Strictly for
  // single-threaded phases (construction-time wiring, recovery replay
  // before any reader exists) and for callers already inside a
  // WriteGuard-derived exclusive section. Mutations made through this
  // accessor are NOT visible to snapshots until the next publication —
  // call PublishWriterState() (or commit a WriteGuard) afterwards.
  Database& writer_db() { return *tip_; }
  const Database& writer_db() const { return *tip_; }

  // Publishes the current tip state as a new version (for
  // single-threaded phases that mutated writer_db() directly).
  uint64_t PublishWriterState();

 private:
  friend class WriteGuard;

  // One committed version's write footprint, kept so later optimistic
  // validators can test overlap against it.
  struct CommittedFootprint {
    uint64_t version = 0;
    WriteFootprint fp;
  };

  // Publishes the tip; requires writer_mu_ held. Takes the tip's own
  // accumulated footprint as the new version's footprint (the exclusive
  // writer path: WriteGuard commits and PublishWriterState). When
  // `retired` is non-null it receives the previous head, so the caller
  // can drop the (possibly last) reference after releasing the mutex.
  uint64_t PublishLocked(std::shared_ptr<const DbVersion>* retired = nullptr);
  // Publishes the tip with an explicit footprint (the optimistic path,
  // where the footprint came from the transaction's private copy).
  uint64_t PublishWithFootprintLocked(
      WriteFootprint fp, std::shared_ptr<const DbVersion>* retired = nullptr);
  // Appends to recent_, collapsing oversized footprints to `all` and
  // trimming the window. Requires writer_mu_ held.
  void RecordFootprintLocked(uint64_t version, WriteFootprint fp);
  // The validation half of CommitTransaction. Requires writer_mu_ held.
  Status ValidateLocked(const OptimisticTransaction& txn,
                        const WriteFootprint& fp) const;

  // Swaps in a new head and returns the previous one. The caller (a
  // publisher holding writer_mu_, or the constructor) drops the returned
  // reference outside published_mu_.
  std::shared_ptr<const DbVersion> ExchangeHead(
      std::shared_ptr<const DbVersion> next);
  // The current head. The only code allowed to touch published_.
  std::shared_ptr<const DbVersion> Head() const {
    std::lock_guard<std::mutex> lock(published_mu_);
    return published_;
  }

  std::unique_ptr<Database> tip_;
  mutable std::mutex writer_mu_;
  // The committed-version chain head; retirement is plain refcounting.
  // Guarded by its own mutex, held only long enough to copy or swap the
  // shared_ptr, rather than std::atomic<shared_ptr>: libstdc++'s
  // _Sp_atomic::load reads the pointer under an internal spin lock but
  // releases that lock with a relaxed RMW, so a subsequent store's plain
  // pointer write formally races the reader's plain pointer read (TSan
  // reports it, and the serving front end's worker pool hits it
  // constantly). The implementation was never lock-free anyway — this
  // buys the same cost with actual happens-before edges.
  mutable std::mutex published_mu_;
  std::shared_ptr<const DbVersion> published_;
  // Footprints of the most recent commits, contiguous up to the
  // published version, oldest first. Bounded: a transaction whose base
  // predates the window can no longer be validated and must abort.
  std::deque<CommittedFootprint> recent_;
  std::atomic<uint64_t> conflicts_{0};
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_VERSIONED_DB_H_
