// Snapshot-isolated concurrent access to a Database.
//
// The model is inherently read-heavy: every Table 3 function (pi,
// h_state, s_state, snapshot, ref, ...) is a pure read over immutable
// history, and Database exposes them all as const members with no
// mutable caches. VersionedDatabase turns that property into a
// concurrency protocol:
//
//   - any number of readers hold a ReadSnapshot concurrently; a snapshot
//     pins the database (shared lock) for its lifetime and carries the
//     version it observed, so a reader sees one committed state for as
//     long as it keeps the snapshot — epoch-pinned snapshot isolation;
//   - exactly one writer at a time holds a WriteGuard (unique lock),
//     mutates the database through it, and publishes the mutation with
//     Commit(), which bumps the version counter. A guard dropped without
//     Commit() publishes nothing version-wise (the statement failed; the
//     model's mutation path rejects bad statements before touching
//     state, so failed statements leave the database unchanged).
//
// The version counter is monotone: two snapshots with equal versions saw
// the identical state, and a reader re-opening snapshots observes a
// non-decreasing sequence (readers never travel back in time). Writers
// are fully serialized — the writer-serialization guarantee the query
// Engine (query/session.h) builds group commit on: the order in which
// WriteGuards commit is the order statements reach the journal.
//
// See docs/CONCURRENCY.md for the full protocol.
#ifndef TCHIMERA_CORE_DB_VERSIONED_DB_H_
#define TCHIMERA_CORE_DB_VERSIONED_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "core/db/database.h"

namespace tchimera {

class VersionedDatabase;

// A pinned, immutable view of the database. Movable, not copyable; the
// shared lock is held until destruction, so keep snapshots short-lived
// on hot paths (a live snapshot blocks writers).
class ReadSnapshot {
 public:
  ReadSnapshot() = default;
  ReadSnapshot(ReadSnapshot&&) = default;
  ReadSnapshot& operator=(ReadSnapshot&&) = default;
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  bool valid() const { return db_ != nullptr; }
  const Database& db() const { return *db_; }
  // The commit version this snapshot observes.
  uint64_t version() const { return version_; }

 private:
  friend class VersionedDatabase;
  ReadSnapshot(std::shared_lock<std::shared_mutex> lock, const Database* db,
               uint64_t version)
      : lock_(std::move(lock)), db_(db), version_(version) {}

  std::shared_lock<std::shared_mutex> lock_;
  const Database* db_ = nullptr;
  uint64_t version_ = 0;
};

// Exclusive mutable access. Mutate through db(), then Commit() to
// publish; destruction releases the lock either way.
class WriteGuard {
 public:
  WriteGuard(WriteGuard&&) = default;
  WriteGuard& operator=(WriteGuard&&) = default;
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  Database& db() { return *db_; }
  // Publishes the mutation: bumps the version counter. Returns the new
  // version. Call at most once, only after the mutation succeeded.
  uint64_t Commit();
  // Releases the lock early (before awaiting durability, say).
  void Release() { lock_.unlock(); }

 private:
  friend class VersionedDatabase;
  WriteGuard(std::unique_lock<std::shared_mutex> lock, Database* db,
             std::atomic<uint64_t>* version)
      : lock_(std::move(lock)), db_(db), version_(version) {}

  std::unique_lock<std::shared_mutex> lock_;
  Database* db_ = nullptr;
  std::atomic<uint64_t>* version_ = nullptr;
};

class VersionedDatabase {
 public:
  VersionedDatabase() : db_(std::make_unique<Database>()) {}
  // Wraps an existing database (e.g. one recovery just rebuilt).
  explicit VersionedDatabase(std::unique_ptr<Database> db)
      : db_(db != nullptr ? std::move(db) : std::make_unique<Database>()) {}

  VersionedDatabase(const VersionedDatabase&) = delete;
  VersionedDatabase& operator=(const VersionedDatabase&) = delete;

  // Blocks while a writer is active; never blocks other readers.
  ReadSnapshot OpenSnapshot() const;
  // Blocks until every snapshot is released and no other writer is
  // active.
  WriteGuard BeginWrite();

  // The latest committed version (0 for a freshly wrapped database).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // The underlying database, bypassing the lock. Strictly for
  // single-threaded phases (construction-time wiring, recovery replay
  // before any reader exists) and for callers already inside a
  // WriteGuard-derived exclusive section.
  Database& writer_db() { return *db_; }
  const Database& writer_db() const { return *db_; }

 private:
  std::unique_ptr<Database> db_;
  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_VERSIONED_DB_H_
