#include "core/db/index.h"

#include <algorithm>

#include "core/values/temporal_function.h"

namespace tchimera {

const char* IndexKindName(IndexKind kind) {
  return kind == IndexKind::kValue ? "value" : "lifespan";
}

bool IndexEntryLess(const IndexEntry& a, const IndexEntry& b) {
  int c = Value::Compare(a.value, b.value);
  if (c != 0) return c < 0;
  if (a.oid != b.oid) return a.oid < b.oid;
  return a.valid.start() < b.valid.start();
}

namespace {

// Boundary instants of one temporal function: segment starts and the
// instant after each closed segment's end — the same points
// CollectWhenBoundaries derives by walking the segments directly
// (query/evaluator.cc), stored unclamped so the timeline is
// clock-independent.
void AddSegmentBoundaries(const TemporalFunction& f,
                          std::vector<TimePoint>* out) {
  for (const auto& seg : f.segments()) {
    out->push_back(seg.interval.start());
    if (!seg.interval.is_ongoing()) out->push_back(seg.interval.end() + 1);
  }
}

void FinishTimeline(std::vector<TimePoint>* timeline) {
  std::sort(timeline->begin(), timeline->end());
  timeline->erase(std::unique(timeline->begin(), timeline->end()),
                  timeline->end());
}

}  // namespace

void AppendIndexEntries(const IndexDef& def, const Object& obj, Oid oid,
                        IndexPartition* part) {
  std::vector<TimePoint> timeline;
  if (def.kind == IndexKind::kLifespan) {
    const Interval& ls = obj.lifespan();
    if (!ls.empty()) {
      timeline.push_back(ls.start());
      if (!ls.is_ongoing()) timeline.push_back(ls.end() + 1);
    }
  } else {
    const Value* stored = obj.Attribute(def.attr);
    if (stored == nullptr) return;
    if (stored->kind() == ValueKind::kTemporal) {
      for (const auto& seg : stored->AsTemporal().segments()) {
        part->postings.push_back({seg.value, seg.interval, oid});
      }
      AddSegmentBoundaries(stored->AsTemporal(), &timeline);
    } else {
      // A non-temporal attribute projects to its stored value at every
      // instant (ProjectStoredAttribute), so the posting is always valid.
      part->postings.push_back(
          {*stored, Interval::FromUntilNow(0), oid});
    }
  }
  if (!timeline.empty()) {
    FinishTimeline(&timeline);
    part->timelines[oid.id] = std::move(timeline);
  }
}

void RebuildPartitionEntry(const IndexDef& def, const Object* obj, Oid oid,
                           IndexPartition* part) {
  part->postings.erase(
      std::remove_if(part->postings.begin(), part->postings.end(),
                     [&](const IndexEntry& e) { return e.oid == oid; }),
      part->postings.end());
  part->timelines.erase(oid.id);
  if (obj == nullptr) return;
  size_t first_new = part->postings.size();
  AppendIndexEntries(def, *obj, oid, part);
  if (part->postings.size() > first_new) {
    std::sort(part->postings.begin() + first_new, part->postings.end(),
              IndexEntryLess);
    std::inplace_merge(part->postings.begin(),
                       part->postings.begin() + first_new,
                       part->postings.end(), IndexEntryLess);
  }
}

std::pair<size_t, size_t> ProbeRange(const IndexPartition& part, ProbeOp op,
                                     const Value& bound) {
  auto value_less = [](const IndexEntry& e, const Value& v) {
    return Value::Compare(e.value, v) < 0;
  };
  auto value_greater = [](const Value& v, const IndexEntry& e) {
    return Value::Compare(v, e.value) < 0;
  };
  const auto begin = part.postings.begin();
  const auto end = part.postings.end();
  auto lower = std::lower_bound(begin, end, bound, value_less);
  auto upper = std::upper_bound(begin, end, bound, value_greater);
  // The inequality kernels return null (never truthy) when the attribute
  // value is null, but Value::Compare ranks null below everything — so
  // the null-valued prefix of the postings must not match < / <=. The
  // planner never probes with a null bound (kEq on null would also have
  // to match *undefined* attributes, which carry no posting at all).
  auto after_nulls =
      std::upper_bound(begin, end, Value::Null(), value_greater);
  switch (op) {
    case ProbeOp::kEq:
      return {static_cast<size_t>(lower - begin),
              static_cast<size_t>(upper - begin)};
    case ProbeOp::kLt:
      return {static_cast<size_t>(after_nulls - begin),
              static_cast<size_t>(std::max(lower, after_nulls) - begin)};
    case ProbeOp::kLe:
      return {static_cast<size_t>(after_nulls - begin),
              static_cast<size_t>(std::max(upper, after_nulls) - begin)};
    case ProbeOp::kGt:
      return {static_cast<size_t>(upper - begin),
              static_cast<size_t>(end - begin)};
    case ProbeOp::kGe:
      return {static_cast<size_t>(std::max(lower, after_nulls) - begin),
              static_cast<size_t>(end - begin)};
  }
  return {0, 0};
}

}  // namespace tchimera
