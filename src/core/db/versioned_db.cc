#include "core/db/versioned_db.h"

#include <cstdio>
#include <cstdlib>

namespace tchimera {
namespace {

std::shared_ptr<const DbVersion> MakeVersion(const Database& tip,
                                             uint64_t version) {
  // The Database copy here is the COW copy: it shares every untouched
  // class/object/shard with the tip, so publication cost tracks what the
  // writer touched, not database size.
  return std::make_shared<const DbVersion>(
      DbVersion{std::make_shared<const Database>(tip), version});
}

}  // namespace

uint64_t WriteGuard::Commit() {
  if (owner_ == nullptr || !lock_.owns_lock()) {
    // Publishing without the writer lock is exactly the out-of-order
    // publish bug this guard exists to prevent — fail loudly instead of
    // corrupting the version order.
    std::fprintf(stderr,
                 "fatal: WriteGuard::Commit() on a guard that no longer "
                 "holds the writer lock (double commit or moved-from "
                 "guard)\n");
    std::abort();
  }
  const uint64_t v = owner_->PublishLocked();
  owner_ = nullptr;
  tip_ = nullptr;
  lock_.unlock();
  return v;
}

VersionedDatabase::VersionedDatabase()
    : VersionedDatabase(std::make_unique<Database>()) {}

VersionedDatabase::VersionedDatabase(std::unique_ptr<Database> db)
    : tip_(db != nullptr ? std::move(db) : std::make_unique<Database>()) {
  published_.store(MakeVersion(*tip_, 0), std::memory_order_release);
}

ReadSnapshot VersionedDatabase::OpenSnapshot() const {
  // acquire pairs with the release store in PublishLocked: a snapshot
  // that observes version N observes every write commit N published.
  return ReadSnapshot(published_.load(std::memory_order_acquire));
}

WriteGuard VersionedDatabase::BeginWrite() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  return WriteGuard(std::move(lock), tip_.get(), this);
}

uint64_t VersionedDatabase::PublishWriterState() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked();
}

uint64_t VersionedDatabase::PublishLocked() {
  // Only the writer lock holder publishes, so the relaxed read of the
  // previous head cannot race another publication.
  const uint64_t next =
      published_.load(std::memory_order_relaxed)->version + 1;
  published_.store(MakeVersion(*tip_, next), std::memory_order_release);
  return next;
}

}  // namespace tchimera
