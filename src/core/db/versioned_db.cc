#include "core/db/versioned_db.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/object/object.h"

namespace tchimera {
namespace {

// How many committed footprints are retained for validation. A
// transaction whose base version fell out of this window aborts with
// Conflict (indistinguishable from a real overlap — the caller retries
// against a fresh base either way).
constexpr size_t kMaxRecentFootprints = 256;
// A footprint touching more slots than this collapses to `all`:
// validation stays O(small) and memory stays bounded no matter how
// large a bulk statement was.
constexpr size_t kMaxFootprintSlots = 4096;

std::shared_ptr<const DbVersion> MakeVersion(const Database& tip,
                                             uint64_t version) {
  // The Database copy here is the COW copy: it shares every untouched
  // class/object/shard with the tip, so publication cost tracks what the
  // writer touched, not database size.
  return std::make_shared<const DbVersion>(
      DbVersion{std::make_shared<const Database>(tip), version});
}

template <typename T>
bool SetsIntersect(const std::set<T>& a, const std::set<T>& b) {
  // Walk the smaller set, probe the larger: O(min log max).
  const std::set<T>& small = a.size() <= b.size() ? a : b;
  const std::set<T>& large = a.size() <= b.size() ? b : a;
  for (const T& x : small) {
    if (large.count(x) > 0) return true;
  }
  return false;
}

bool OidSetsIntersect(const WriteFootprint& a, const WriteFootprint& b) {
  // deleted_oids is a subset of oids (DeleteObject touches the slot
  // first), so testing the oids sets covers delete-vs-anything overlap.
  return SetsIntersect(a.oids, b.oids);
}

// The slot-overlap half of validation: does the already-committed
// footprint `c` conflict with the validating transaction's footprint
// `t`? Symmetric except for clock movement: a committed clock advance
// invalidates every later validator (its mutations were computed
// against a stale `now`), while a validating clock advance replays
// cleanly after any committed plain update.
bool FootprintsConflict(const WriteFootprint& c, const WriteFootprint& t) {
  if (c.all || t.all) return true;
  // Schema changes rewire refinement/ISA state that every statement
  // reads; serialize them against everything (they are rare).
  if (c.schema_changed || t.schema_changed) return true;
  if (c.clock_advanced) return true;
  // Two transactions that both allocated OIDs from the same base would
  // collide on the counter; journal replay must also re-derive the same
  // OIDs in commit order, so serialize allocators.
  if (c.oid_allocated && t.oid_allocated) return true;
  if (OidSetsIntersect(c, t)) return true;
  if (SetsIntersect(c.classes, t.classes)) return true;
  return false;
}

}  // namespace

uint64_t WriteGuard::Commit() {
  if (owner_ == nullptr || !lock_.owns_lock()) {
    // Publishing without the writer lock is exactly the out-of-order
    // publish bug this guard exists to prevent — fail loudly instead of
    // corrupting the version order.
    std::fprintf(stderr,
                 "fatal: WriteGuard::Commit() on a guard that no longer "
                 "holds the writer lock (double commit or moved-from "
                 "guard)\n");
    std::abort();
  }
  // `retired` outlives the unlock below: dropping the last reference to
  // the previous version (when no snapshot pins it) tears down a whole
  // Database — cleanup the next writer need not wait behind.
  std::shared_ptr<const DbVersion> retired;
  const uint64_t v = owner_->PublishLocked(&retired);
  owner_ = nullptr;
  tip_ = nullptr;
  lock_.unlock();
  return v;
}

VersionedDatabase::VersionedDatabase()
    : VersionedDatabase(std::make_unique<Database>()) {}

VersionedDatabase::VersionedDatabase(std::unique_ptr<Database> db)
    : tip_(db != nullptr ? std::move(db) : std::make_unique<Database>()) {
  // Whatever built this database (recovery replay, test wiring) is
  // published wholesale as version 0 — its accumulated footprint is not
  // a commit anyone can race against, so discard it.
  tip_->TakeFootprint();
  ExchangeHead(MakeVersion(*tip_, 0));
}

std::shared_ptr<const DbVersion> VersionedDatabase::ExchangeHead(
    std::shared_ptr<const DbVersion> next) {
  std::lock_guard<std::mutex> lock(published_mu_);
  std::shared_ptr<const DbVersion> prev = std::move(published_);
  published_ = std::move(next);
  return prev;
}

ReadSnapshot VersionedDatabase::OpenSnapshot() const {
  // The mutex pairs the reader with ExchangeHead: a snapshot that
  // observes version N observes every write commit N published.
  return ReadSnapshot(Head());
}

WriteGuard VersionedDatabase::BeginWrite() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  return WriteGuard(std::move(lock), tip_.get(), this);
}

OptimisticTransaction VersionedDatabase::BeginTransaction() const {
  std::shared_ptr<const DbVersion> base = Head();
  // The COW copy of a published (immutable) Database is safe without a
  // lock: concurrent copiers only race on the epoch counter stores,
  // which are atomic and where any fresh value is correct.
  return OptimisticTransaction(base, std::make_unique<Database>(*base->db));
}

Result<uint64_t> VersionedDatabase::CommitTransaction(
    OptimisticTransaction* txn, const std::function<Status()>& prepare) {
  if (txn == nullptr || !txn->valid()) {
    return Status::FailedPrecondition(
        "CommitTransaction on an invalid (already committed or moved-from) "
        "transaction");
  }
  // Declared before the lock so their destructors run after it releases:
  // tearing down the consumed private copy (spine-proportional) and —
  // when no snapshot pins it — the entire retired previous version are
  // pure cleanup no later committer needs to wait behind.
  std::shared_ptr<const DbVersion> released_base;
  std::unique_ptr<Database> consumed;
  std::shared_ptr<const DbVersion> retired;
  std::lock_guard<std::mutex> lock(writer_mu_);
  const WriteFootprint& fp = txn->db_->footprint();
  if (fp.empty()) {
    // Read-only transaction: nothing to validate or publish. (Prepare is
    // skipped too — there is no commit to journal.)
    const uint64_t v = Head()->version;
    released_base = std::move(txn->base_);
    consumed = std::move(txn->db_);
    return v;
  }
  Status validated = ValidateLocked(*txn, fp);
  if (validated.ok() && (fp.all || fp.schema_changed) &&
      !tip_->footprint().empty()) {
    // Schema-level (or `all`) transactions adopt by wholesale spine
    // assignment, which would silently drop any unpublished direct
    // writer_db() mutation resting in the tip. Abort instead; the
    // caller's exclusive fallback handles this combination correctly.
    validated = Status::Conflict(
        "schema-level transaction cannot adopt over unpublished tip "
        "mutations; retry on the exclusive path");
  }
  if (!validated.ok()) {
    conflicts_.fetch_add(1, std::memory_order_relaxed);
    // The transaction stays valid: the caller may inspect it, but a
    // retry should start from a fresh BeginTransaction (the base is
    // stale by definition of the conflict).
    return validated;
  }
  if (prepare != nullptr) {
    // Journal-enqueue hook, still under the writer mutex so journal
    // order equals commit order. Failure aborts without publishing:
    // unlike the exclusive path, an optimistic abort leaves no trace in
    // the tip.
    TCH_RETURN_IF_ERROR(prepare());
  }
  // Any direct writer_db() mutation since the last publication rides
  // along in the version we are about to publish — fold its footprint in
  // so later validators see those slots too. (Taken before AdoptChanges,
  // which does not itself record into the tip's footprint.)
  WriteFootprint resident = tip_->TakeFootprint();
  WriteFootprint taken = txn->db_->TakeFootprint();
  tip_->AdoptChanges(*txn->db_, taken);
  if (!resident.empty()) {
    taken.all |= resident.all;
    taken.schema_changed |= resident.schema_changed;
    taken.clock_advanced |= resident.clock_advanced;
    taken.oid_allocated |= resident.oid_allocated;
    taken.oids.insert(resident.oids.begin(), resident.oids.end());
    taken.deleted_oids.insert(resident.deleted_oids.begin(),
                              resident.deleted_oids.end());
    taken.classes.insert(resident.classes.begin(), resident.classes.end());
  }
  const uint64_t v = PublishWithFootprintLocked(std::move(taken), &retired);
  released_base = std::move(txn->base_);
  consumed = std::move(txn->db_);
  return v;
}

Status VersionedDatabase::ValidateLocked(const OptimisticTransaction& txn,
                                         const WriteFootprint& fp) const {
  const uint64_t base = txn.base_->version;
  const uint64_t tip_version = Head()->version;
  if (tip_version == base) return Status::OK();  // nothing committed since
  if (recent_.empty() || recent_.front().version > base + 1) {
    return Status::Conflict(
        "base version " + std::to_string(base) +
        " predates the retained validation window; retry against a fresh "
        "snapshot");
  }
  for (const CommittedFootprint& committed : recent_) {
    if (committed.version <= base) continue;
    if (FootprintsConflict(committed.fp, fp)) {
      return Status::Conflict(
          "write footprint overlaps version " +
          std::to_string(committed.version) +
          " committed after base version " + std::to_string(base));
    }
    // Referential-integrity re-check (paper Definition 5.6). Slot
    // overlap above already serializes same-object races; what remains
    // is the cross-object hazard where one side deleted an object the
    // other side's touched objects currently reference.
    if (!fp.deleted_oids.empty() && !committed.fp.oids.empty()) {
      // We deleted D; a committed writer touched Y. If Y (as committed)
      // still references D now, publishing the delete would dangle it.
      for (uint64_t id : committed.fp.oids) {
        const Object* obj = tip_->GetObject(Oid{id});
        if (obj == nullptr || !obj->alive()) continue;
        for (Oid ref : obj->ReferencedOids(tip_->now())) {
          if (fp.deleted_oids.count(ref.id) > 0) {
            return Status::Conflict(
                "deleting object " + ref.ToString() +
                " would dangle a reference from " + Oid{id}.ToString() +
                " established by version " +
                std::to_string(committed.version) +
                " (referential integrity, Definition 5.6)");
          }
        }
      }
    }
    if (!committed.fp.deleted_oids.empty() && !fp.oids.empty()) {
      // A committed writer deleted D; we touched Y. If our Y references
      // D now, our assertion was validated against a base where D was
      // alive and no longer holds.
      for (uint64_t id : fp.oids) {
        const Object* obj = txn.db_->GetObject(Oid{id});
        if (obj == nullptr || !obj->alive()) continue;
        for (Oid ref : obj->ReferencedOids(txn.db_->now())) {
          if (committed.fp.deleted_oids.count(ref.id) > 0) {
            return Status::Conflict(
                "object " + Oid{id}.ToString() + " references " +
                ref.ToString() + ", deleted by version " +
                std::to_string(committed.version) +
                " (referential integrity, Definition 5.6)");
          }
        }
      }
    }
  }
  return Status::OK();
}

uint64_t VersionedDatabase::PublishWriterState() {
  std::shared_ptr<const DbVersion> retired;  // freed after the unlock
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked(&retired);
}

uint64_t VersionedDatabase::PublishLocked(
    std::shared_ptr<const DbVersion>* retired) {
  // The exclusive path: the tip's own accumulated footprint describes
  // this commit.
  return PublishWithFootprintLocked(tip_->TakeFootprint(), retired);
}

uint64_t VersionedDatabase::PublishWithFootprintLocked(
    WriteFootprint fp, std::shared_ptr<const DbVersion>* retired) {
  // Only the writer lock holder publishes, so reading the previous head
  // here cannot race another publication.
  const uint64_t next = Head()->version + 1;
  // ExchangeHead hands the previous head to the caller: if no snapshot
  // pins it, the caller drops the last reference after releasing the
  // writer mutex rather than destroying a whole Database inside it.
  // (The version copy happens before the swap so published_mu_ is never
  // held across a Database copy.)
  std::shared_ptr<const DbVersion> next_version = MakeVersion(*tip_, next);
  std::shared_ptr<const DbVersion> prev = ExchangeHead(std::move(next_version));
  if (retired != nullptr) {
    *retired = std::move(prev);
  }
  RecordFootprintLocked(next, std::move(fp));
  return next;
}

void VersionedDatabase::RecordFootprintLocked(uint64_t version,
                                              WriteFootprint fp) {
  if (fp.oids.size() + fp.deleted_oids.size() + fp.classes.size() >
      kMaxFootprintSlots) {
    WriteFootprint collapsed;
    collapsed.all = true;
    fp = std::move(collapsed);
  }
  recent_.push_back(CommittedFootprint{version, std::move(fp)});
  while (recent_.size() > kMaxRecentFootprints) recent_.pop_front();
}

}  // namespace tchimera
