#include "core/db/versioned_db.h"

namespace tchimera {

uint64_t WriteGuard::Commit() {
  // release ordering pairs with the acquire load in version(): a reader
  // that observes version N also observes every write published by the
  // guard that bumped to N (the shared_mutex handoff already guarantees
  // this for snapshot holders; the counter is also read lock-free).
  return version_->fetch_add(1, std::memory_order_release) + 1;
}

ReadSnapshot VersionedDatabase::OpenSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Read the version under the shared lock: no writer can be between
  // mutation and bump while we hold it (Commit happens before the unique
  // lock is released).
  return ReadSnapshot(std::move(lock), db_.get(),
                      version_.load(std::memory_order_acquire));
}

WriteGuard VersionedDatabase::BeginWrite() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return WriteGuard(std::move(lock), db_.get(), &version_);
}

}  // namespace tchimera
