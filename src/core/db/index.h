// Temporal secondary indexes (see docs/INDEXING.md).
//
// Two kinds, both derived *purely* from single-object state, so an index
// can always be rebuilt deterministically from the objects alone (journal
// replay, checkpoint recovery and replica resync all rely on this — only
// index *definitions* are persisted, never index data):
//
//   kValue     — an equality/range index over the values of one named
//                attribute. Each temporal segment of the attribute's
//                history contributes one posting <value, valid, oid>;
//                a non-temporal attribute contributes a single
//                always-valid posting. Postings are sorted by
//                (value, oid, valid.start) under Value::Compare — the
//                exact ordering the query kernels use for =, <, <=, >,
//                >= (query/evaluator.cc ApplyBinaryOp), so a range probe
//                agrees with a scan on every value kind.
//   kLifespan  — a timeline index over object lifespans: per-oid sorted
//                boundary instants (lifespan start, end+1 when closed).
//
// Both kinds additionally keep a per-oid *timeline*: the sorted, unique
// boundary instants of the indexed attribute's history (segment starts,
// ends+1; for kLifespan the lifespan edges). WHEN evaluation slices these
// with binary search instead of walking every segment when a `during`
// window is present (query/evaluator.cc CollectWhenBoundaries).
//
// Storage is per COW shard: Database keeps one IndexShard per object
// shard, cloned with the same epoch protocol as the object shards, so an
// index write clones exactly the touched 1/64th of the index
// (core/db/database.h). Entries are keyed by oid only — the index covers
// every object that has the indexed attribute, regardless of class; the
// declared class is validated at creation and used by the planner's cost
// model, while extent membership is re-checked per probe (so class
// filtering can never diverge from a scan).
#ifndef TCHIMERA_CORE_DB_INDEX_H_
#define TCHIMERA_CORE_DB_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/object/object.h"
#include "core/temporal/interval.h"
#include "core/values/value.h"

namespace tchimera {

enum class IndexKind { kValue, kLifespan };

const char* IndexKindName(IndexKind kind);

// One index declaration (`create index <name> on <class> (<attr>)` or
// `create index <name> on <class> lifespan`).
struct IndexDef {
  std::string name;
  IndexKind kind = IndexKind::kValue;
  std::string class_name;
  std::string attr;  // empty for kLifespan
};

// Comparison operators a value-index probe supports. The semantics are
// Value::Compare — identical to the scalar kernels, so the probe's match
// set equals the rows on which the predicate evaluates truthy (a null or
// undefined attribute matches nothing, exactly as the kernels return
// null/false for it).
enum class ProbeOp { kEq, kLt, kLe, kGt, kGe };

// One value posting: `oid`'s indexed attribute compared equal to `value`
// throughout `valid` (the raw stored interval — possibly kNow-ending;
// resolved against the clock at probe time).
struct IndexEntry {
  Value value;
  Interval valid;
  Oid oid;
};

// Sort key for postings: (value, oid, valid.start) under Value::Compare.
bool IndexEntryLess(const IndexEntry& a, const IndexEntry& b);

// The per-shard slice of one index.
struct IndexPartition {
  // Sorted by IndexEntryLess. Empty for kLifespan indexes.
  std::vector<IndexEntry> postings;
  // oid -> sorted unique boundary instants of the indexed attribute's
  // history (or the lifespan edges for kLifespan).
  std::map<uint64_t, std::vector<TimePoint>> timelines;
};

// One COW shard of the index store: every registered index's partition
// for this shard's oids. Cloned wholesale when a writer first touches
// the shard in its epoch (same protocol as Database::ObjectShard).
struct IndexShard {
  uint64_t epoch = 0;
  std::map<std::string, IndexPartition, std::less<>> parts;
};

// Appends `oid`'s entries under `def` to `part` (postings stay sorted
// only if callers re-sort; RebuildPartitionEntry handles one oid
// incrementally). Pure function of (def, obj).
void AppendIndexEntries(const IndexDef& def, const Object& obj, Oid oid,
                        IndexPartition* part);

// Removes every trace of `oid` from `part` and, when `obj` is non-null,
// re-inserts its entries at the right sorted positions. The incremental
// reindex step used by every object mutation.
void RebuildPartitionEntry(const IndexDef& def, const Object* obj, Oid oid,
                           IndexPartition* part);

// The half-open posting range [first, last) whose values satisfy
// `op bound`, as indices into `part.postings`. For kEq this is the
// equal_range of `bound`; for the inequalities it is a prefix or suffix.
std::pair<size_t, size_t> ProbeRange(const IndexPartition& part, ProbeOp op,
                                     const Value& bound);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_DB_INDEX_H_
