#include "core/db/equality.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/db/database.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

// The instants at which the object's snapshot can change value: the
// lifespan start plus every temporal-segment boundary, clipped to
// [lifespan.start, min(lifespan.end, now)]. Between two consecutive
// returned instants every attribute is constant, so testing snapshots at
// these instants is exhaustive.
std::vector<TimePoint> SnapshotBoundaries(const Object& obj, TimePoint now) {
  TimePoint lo = obj.lifespan().start();
  TimePoint hi = std::min(ResolveInstant(obj.lifespan().end(), now), now);
  if (hi < lo) return {};
  std::vector<TimePoint> out;
  out.push_back(lo);
  for (const std::string& name : obj.AttributeNames()) {
    const Value* v = obj.Attribute(name);
    if (v->kind() != ValueKind::kTemporal) continue;
    for (const auto& seg : v->AsTemporal().segments()) {
      TimePoint s = seg.interval.start();
      if (s >= lo && s <= hi) out.push_back(s);
      // The instant right after a segment ends is also a change point.
      if (!seg.interval.is_ongoing()) {
        TimePoint e = seg.interval.end() + 1;
        if (e >= lo && e <= hi) out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

bool EqualByIdentity(const Object& a, const Object& b) {
  return a.id() == b.id();
}

bool EqualByValue(const Object& a, const Object& b) {
  // o1.v = o2.v: equality of attribute names and values (for temporal
  // attributes, of the whole history).
  return a.AttributeRecord() == b.AttributeRecord();
}

std::optional<TimePoint> InstantaneousEqualityWitness(const Object& a,
                                                      const Object& b,
                                                      TimePoint now) {
  // Objects with static attributes can only be compared at the current
  // time (snapshots at past instants are undefined, Section 5.3).
  if (a.HasStaticAttributes() || b.HasStaticAttributes()) {
    if (!a.lifespan().Contains(now, now) || !b.lifespan().Contains(now, now)) {
      return std::nullopt;
    }
    Result<Value> sa = a.Snapshot(now, now);
    Result<Value> sb = b.Snapshot(now, now);
    if (sa.ok() && sb.ok() && *sa == *sb) return now;
    return std::nullopt;
  }
  // All-temporal objects: scan the union of both objects' snapshot
  // boundaries restricted to the lifespan intersection; snapshots are
  // piecewise constant between boundaries.
  Interval common = a.lifespan().Intersect(b.lifespan(), now);
  if (common.empty()) return std::nullopt;
  std::vector<TimePoint> candidates;
  for (const Object* o : {&a, &b}) {
    for (TimePoint t : SnapshotBoundaries(*o, now)) {
      if (common.ContainsResolved(t)) candidates.push_back(t);
    }
  }
  candidates.push_back(common.start());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (TimePoint t : candidates) {
    Result<Value> sa = a.Snapshot(t, now);
    Result<Value> sb = b.Snapshot(t, now);
    if (sa.ok() && sb.ok() && *sa == *sb) return t;
  }
  return std::nullopt;
}

namespace {

using OidPairSet = std::set<std::pair<uint64_t, uint64_t>>;

bool DeepCompareObjects(const Database& db, Oid a, Oid b,
                        OidPairSet* in_progress);

// Structural comparison with oid references followed.
bool DeepCompareValues(const Database& db, const Value& a, const Value& b,
                       OidPairSet* in_progress) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kOid:
      return DeepCompareObjects(db, a.AsOid(), b.AsOid(), in_progress);
    case ValueKind::kSet:
    case ValueKind::kList: {
      const auto& ea = a.Elements();
      const auto& eb = b.Elements();
      if (ea.size() != eb.size()) return false;
      for (size_t i = 0; i < ea.size(); ++i) {
        if (!DeepCompareValues(db, ea[i], eb[i], in_progress)) return false;
      }
      return true;
    }
    case ValueKind::kRecord: {
      const auto& fa = a.Fields();
      const auto& fb = b.Fields();
      if (fa.size() != fb.size()) return false;
      for (size_t i = 0; i < fa.size(); ++i) {
        if (fa[i].first != fb[i].first) return false;
        if (!DeepCompareValues(db, fa[i].second, fb[i].second,
                               in_progress)) {
          return false;
        }
      }
      return true;
    }
    case ValueKind::kTemporal: {
      const auto& sa = a.AsTemporal().segments();
      const auto& sb = b.AsTemporal().segments();
      if (sa.size() != sb.size()) return false;
      for (size_t i = 0; i < sa.size(); ++i) {
        if (sa[i].interval != sb[i].interval) return false;
        if (!DeepCompareValues(db, sa[i].value, sb[i].value, in_progress)) {
          return false;
        }
      }
      return true;
    }
    default:
      // Scalars: plain structural equality.
      return Value::Compare(a, b) == 0;
  }
}

bool DeepCompareObjects(const Database& db, Oid a, Oid b,
                        OidPairSet* in_progress) {
  if (a == b) return true;
  // Coinductive hypothesis: while comparing (a, b), treat the pair as
  // equal — cycles then terminate with success unless a concrete
  // difference is found elsewhere.
  auto key = std::make_pair(std::min(a.id, b.id), std::max(a.id, b.id));
  if (!in_progress->insert(key).second) return true;
  const Object* oa = db.GetObject(a);
  const Object* ob = db.GetObject(b);
  bool equal = oa != nullptr && ob != nullptr &&
               DeepCompareValues(db, oa->AttributeRecord(),
                                 ob->AttributeRecord(), in_progress);
  in_progress->erase(key);
  return equal;
}

}  // namespace

bool DeepValueEqual(const Database& db, const Object& a, const Object& b) {
  OidPairSet in_progress;
  auto key = std::make_pair(std::min(a.id().id, b.id().id),
                            std::max(a.id().id, b.id().id));
  in_progress.insert(key);
  return DeepCompareValues(db, a.AttributeRecord(), b.AttributeRecord(),
                           &in_progress);
}

std::optional<std::pair<TimePoint, TimePoint>> WeakEqualityWitness(
    const Object& a, const Object& b, TimePoint now) {
  if (a.HasStaticAttributes() || b.HasStaticAttributes()) {
    std::optional<TimePoint> t = InstantaneousEqualityWitness(a, b, now);
    if (t.has_value()) return std::make_pair(*t, *t);
    return std::nullopt;
  }
  std::vector<TimePoint> ba = SnapshotBoundaries(a, now);
  std::vector<TimePoint> bb = SnapshotBoundaries(b, now);
  // Materialize a's distinct snapshots once, then probe with b's.
  std::vector<std::pair<Value, TimePoint>> snapshots_a;
  snapshots_a.reserve(ba.size());
  for (TimePoint t : ba) {
    Result<Value> s = a.Snapshot(t, now);
    if (s.ok()) snapshots_a.emplace_back(std::move(s).value(), t);
  }
  std::sort(snapshots_a.begin(), snapshots_a.end(),
            [](const auto& x, const auto& y) {
              int c = Value::Compare(x.first, y.first);
              if (c != 0) return c < 0;
              return x.second < y.second;
            });
  for (TimePoint t : bb) {
    Result<Value> s = b.Snapshot(t, now);
    if (!s.ok()) continue;
    auto it = std::lower_bound(
        snapshots_a.begin(), snapshots_a.end(), *s,
        [](const auto& x, const Value& v) {
          return Value::Compare(x.first, v) < 0;
        });
    if (it != snapshots_a.end() && Value::Compare(it->first, *s) == 0) {
      return std::make_pair(it->second, t);
    }
  }
  return std::nullopt;
}

}  // namespace tchimera
