#include "core/object/object.h"

#include <algorithm>

namespace tchimera {

Object::Object(Oid id, std::string most_specific_class, TimePoint created_at)
    : id_(id), lifespan_(Interval::FromUntilNow(created_at)) {
  // The class history starts with the creation class, ongoing.
  Status s = class_history_.AssertFrom(
      created_at, Value::String(std::move(most_specific_class)));
  (void)s;  // cannot fail on an empty function
}

Value Object::AttributeRecord() const {
  std::vector<Value::Field> fields;
  fields.reserve(attributes_.size());
  for (const Attr& a : attributes_) fields.emplace_back(a.name, a.value);
  Result<Value> record = Value::Record(std::move(fields));
  // Names are unique by construction (sorted vector, insert-if-absent).
  return record.ok() ? std::move(record).value() : Value::Null();
}

TemporalFunction Object::NormalizedClassHistory(TimePoint now) const {
  if (IsHistorical()) return class_history_;
  std::optional<std::string> current = CurrentClass();
  if (!current.has_value()) return TemporalFunction();
  return TemporalFunction::Constant(Interval::At(now),
                                    Value::String(*current));
}

bool Object::IsHistorical() const {
  for (const Attr& a : attributes_) {
    if (a.value.kind() == ValueKind::kTemporal) return true;
  }
  return false;
}

bool Object::HasStaticAttributes() const {
  for (const Attr& a : attributes_) {
    if (a.value.kind() != ValueKind::kTemporal) return true;
  }
  return false;
}

Object::Attr* Object::FindAttr(std::string_view name) {
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), name,
      [](const Attr& a, std::string_view n) { return a.name < n; });
  if (it == attributes_.end() || it->name != name) return nullptr;
  return &*it;
}

const Object::Attr* Object::FindAttr(std::string_view name) const {
  return const_cast<Object*>(this)->FindAttr(name);
}

const Value* Object::Attribute(std::string_view name) const {
  const Attr* a = FindAttr(name);
  return a == nullptr ? nullptr : &a->value;
}

std::vector<std::string> Object::AttributeNames() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const Attr& a : attributes_) out.push_back(a.name);
  return out;
}

void Object::SetAttribute(std::string_view name, Value v) {
  Attr* a = FindAttr(name);
  if (a != nullptr) {
    a->value = std::move(v);
    return;
  }
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), name,
      [](const Attr& x, std::string_view n) { return x.name < n; });
  attributes_.insert(it, Attr{std::string(name), std::move(v)});
}

void Object::RemoveAttribute(std::string_view name) {
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), name,
      [](const Attr& a, std::string_view n) { return a.name < n; });
  if (it != attributes_.end() && it->name == name) attributes_.erase(it);
}

Status Object::AssertTemporalAttribute(std::string_view name, TimePoint t,
                                       Value v) {
  return DefineTemporalAttribute(name, Interval::FromUntilNow(t),
                                 std::move(v));
}

Status Object::DefineTemporalAttribute(std::string_view name,
                                       const Interval& interval, Value v) {
  Attr* a = FindAttr(name);
  TemporalFunction f;
  if (a != nullptr) {
    if (a->value.kind() != ValueKind::kTemporal) {
      return Status::FailedPrecondition(
          "attribute '" + std::string(name) + "' of " + id_.ToString() +
          " is static; temporal update is not applicable");
    }
    f = a->value.AsTemporal();
  }
  TCH_RETURN_IF_ERROR(f.Define(interval, std::move(v)));
  SetAttribute(name, Value::Temporal(std::move(f)));
  return Status::OK();
}

Status Object::CloseTemporalAttribute(std::string_view name, TimePoint t) {
  Attr* a = FindAttr(name);
  if (a == nullptr || a->value.kind() != ValueKind::kTemporal) {
    return Status::NotFound("no temporal attribute '" + std::string(name) +
                            "' on " + id_.ToString());
  }
  TemporalFunction f = a->value.AsTemporal();
  f.CloseAt(t);
  a->value = Value::Temporal(std::move(f));
  return Status::OK();
}

Result<Value> Object::HState(TimePoint t) const {
  if (!lifespan_.ContainsResolved(t)) {
    return Status::TemporalError("h_state(" + id_.ToString() + "," +
                                 InstantToString(t) +
                                 "): instant outside the object lifespan " +
                                 lifespan_.ToString());
  }
  std::vector<Value::Field> fields;
  for (const Attr& a : attributes_) {
    if (a.value.kind() != ValueKind::kTemporal) continue;
    // Definition 5.2: the attribute is meaningful at t iff t is in the
    // domain of its value.
    const Value* at = a.value.AsTemporal().At(t);
    if (at != nullptr) fields.emplace_back(a.name, *at);
  }
  Result<Value> record = Value::Record(std::move(fields));
  if (!record.ok()) return record.status();
  return std::move(record).value();
}

Value Object::SState() const {
  std::vector<Value::Field> fields;
  for (const Attr& a : attributes_) {
    if (a.value.kind() == ValueKind::kTemporal) continue;
    fields.emplace_back(a.name, a.value);
  }
  Result<Value> record = Value::Record(std::move(fields));
  return record.ok() ? std::move(record).value() : Value::Null();
}

Result<Value> Object::Snapshot(TimePoint t, TimePoint now) const {
  TimePoint resolved = ResolveInstant(t, now);
  // Section 5.3: for objects with static attributes the snapshot is only
  // defined at the current time (past static values are not recorded).
  if (HasStaticAttributes() && resolved != now) {
    return Status::TemporalError(
        "snapshot(" + id_.ToString() + "," + InstantToString(t) +
        ") is undefined: the object has static attributes, whose values "
        "can only be reconstructed at the current time");
  }
  if (!lifespan_.ContainsResolved(resolved)) {
    return Status::TemporalError("snapshot(" + id_.ToString() + "," +
                                 InstantToString(t) +
                                 "): instant outside the object lifespan " +
                                 lifespan_.ToString());
  }
  std::vector<Value::Field> fields;
  fields.reserve(attributes_.size());
  for (const Attr& a : attributes_) {
    if (a.value.kind() == ValueKind::kTemporal) {
      const Value* at = a.value.AsTemporal().At(resolved);
      fields.emplace_back(a.name, at == nullptr ? Value::Null() : *at);
    } else {
      fields.emplace_back(a.name, a.value);
    }
  }
  Result<Value> record = Value::Record(std::move(fields));
  if (!record.ok()) return record.status();
  return std::move(record).value();
}

std::vector<Oid> Object::ReferencedOids(TimePoint t) const {
  std::vector<Oid> out;
  for (const Attr& a : attributes_) a.value.CollectOidsAt(t, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Oid> Object::AllReferencedOids() const {
  std::vector<Oid> out;
  for (const Attr& a : attributes_) a.value.CollectOids(&out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::string> Object::ClassAt(TimePoint t) const {
  const Value* v = class_history_.At(t);
  if (v == nullptr || v->kind() != ValueKind::kString) return std::nullopt;
  return v->AsString();
}

std::optional<std::string> Object::CurrentClass() const {
  if (class_history_.empty()) return std::nullopt;
  const auto& last = class_history_.segments().back();
  if (last.value.kind() != ValueKind::kString) return std::nullopt;
  return last.value.AsString();
}

Status Object::MigrateTo(std::string_view new_class, TimePoint t) {
  if (!lifespan_.ContainsResolved(t)) {
    return Status::TemporalError("cannot migrate " + id_.ToString() +
                                 " at instant " + InstantToString(t) +
                                 " outside its lifespan");
  }
  return class_history_.AssertFrom(t, Value::String(std::string(new_class)));
}

Status Object::CloseLifespan(TimePoint t) {
  if (!lifespan_.is_ongoing()) {
    return Status::FailedPrecondition("object " + id_.ToString() +
                                      " is already deleted");
  }
  if (t < lifespan_.start()) {
    return Status::TemporalError(
        "cannot close the lifespan of " + id_.ToString() +
        " before its creation instant " +
        InstantToString(lifespan_.start()));
  }
  lifespan_ = Interval(lifespan_.start(), t);
  class_history_.CloseAt(t);
  for (Attr& a : attributes_) {
    if (a.value.kind() != ValueKind::kTemporal) continue;
    TemporalFunction f = a.value.AsTemporal();
    f.CloseAt(t);
    a.value = Value::Temporal(std::move(f));
  }
  return Status::OK();
}

size_t Object::ApproxBytes() const {
  size_t bytes = sizeof(Object);
  for (const Attr& a : attributes_) {
    bytes += a.name.capacity() + a.value.ApproxBytes();
  }
  bytes += class_history_.ApproxBytes();
  return bytes;
}

}  // namespace tchimera
