// Objects (Section 5, Definition 5.1). An object is the 4-tuple
//
//   (i, lifespan, v, class-history)
//
// where v is a record of attribute values — plain values for static
// attributes, temporal functions for temporal ones — and class-history is
// a temporal value recording the most specific class the object belongs to
// over time.
//
// The object layer also implements the state functions of Table 3:
//   h_state(i, t)   — the historical value: the meaningful temporal
//                     attributes projected at t (Definition 5.2);
//   s_state(i)      — the static value: the non-temporal attributes;
//   snapshot(i, t)  — the full projected state at t; per Section 5.3 it is
//                     undefined for t != now when the object has static
//                     attributes (their past values are not recorded).
//                     snapshot is also the coercion function used for
//                     substitutability (Section 6.1);
//   ref(i, t)       — the oids the object refers to at t.
//
// Representation note: per Definition 5.1 a *static* object's
// class-history holds the single pair <[now,now], c>. We store the class
// history of every object uniformly as an ongoing temporal function and
// normalize on read (NormalizedClassHistory) — for static objects only the
// current pair is exposed, matching the definition.
#ifndef TCHIMERA_CORE_OBJECT_OBJECT_H_
#define TCHIMERA_CORE_OBJECT_OBJECT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval.h"
#include "core/values/temporal_function.h"
#include "core/values/value.h"

namespace tchimera {

class Object {
 public:
  // A fresh object of class `most_specific_class`, alive from `created_at`.
  Object(Oid id, std::string most_specific_class, TimePoint created_at);

  // --- the 4-tuple -------------------------------------------------------

  Oid id() const { return id_; }
  const Interval& lifespan() const { return lifespan_; }
  // v: the record value (a1:v1,...,an:vn); assembled on demand.
  Value AttributeRecord() const;
  // class-history as stored (ongoing function; values are class-name
  // strings).
  const TemporalFunction& class_history() const { return class_history_; }
  // class-history as defined by the paper: for a static object, the single
  // pair <[now,now], current class>.
  TemporalFunction NormalizedClassHistory(TimePoint now) const;

  // --- attribute access --------------------------------------------------

  // True if any attribute currently carried (or retained from a previous
  // class, Section 5.2) is temporal.
  bool IsHistorical() const;
  bool HasStaticAttributes() const;

  // The stored value of `name` (the whole temporal function for a temporal
  // attribute); nullptr if the object carries no such attribute.
  const Value* Attribute(std::string_view name) const;
  std::vector<std::string> AttributeNames() const;

  // Sets / replaces the full stored value (static value or whole temporal
  // function). Used by the database and the storage layer.
  void SetAttribute(std::string_view name, Value v);
  // Removes a (static) attribute, e.g. on migration to a class lacking it.
  void RemoveAttribute(std::string_view name);

  // Mutates a temporal attribute: asserts `v` from `t` onward. If the
  // attribute slot does not exist yet it is created.
  Status AssertTemporalAttribute(std::string_view name, TimePoint t, Value v);
  // Retroactive/proactive valid-time update over an explicit interval.
  Status DefineTemporalAttribute(std::string_view name,
                                 const Interval& interval, Value v);
  // Ends the ongoing segment of temporal attribute `name` at `t` (used on
  // migration away from a class: temporal attribute values are retained,
  // Section 5.2).
  Status CloseTemporalAttribute(std::string_view name, TimePoint t);

  // --- Table 3 state functions -------------------------------------------

  // h_state: the record of the temporal attributes *meaningful* at t
  // (t in the domain of their value, Definition 5.2), projected at t.
  // Fails with TemporalError when t is outside the lifespan.
  Result<Value> HState(TimePoint t) const;
  // s_state: the record of the non-temporal attributes.
  Value SState() const;
  // snapshot: the full state projected at t. Undefined (TemporalError) for
  // t != now when the object has static attributes; temporal attributes
  // undefined at t project to null.
  Result<Value> Snapshot(TimePoint t, TimePoint now) const;
  // ref: the oids referenced at instant t.
  std::vector<Oid> ReferencedOids(TimePoint t) const;
  // All oids referenced at any time (for whole-history integrity checks).
  std::vector<Oid> AllReferencedOids() const;

  // --- class membership / lifecycle --------------------------------------

  // The most specific class at instant t, if the object existed then.
  std::optional<std::string> ClassAt(TimePoint t) const;
  // The most specific class now (the ongoing class-history segment).
  std::optional<std::string> CurrentClass() const;

  // Records a migration: the most specific class is `new_class` from `t`
  // onward.
  Status MigrateTo(std::string_view new_class, TimePoint t);

  // Ends the object lifespan at instant `t` (the last instant of
  // existence). Closes the class history and all ongoing temporal
  // attribute segments.
  Status CloseLifespan(TimePoint t);
  bool alive() const { return lifespan_.is_ongoing(); }

  // Approximate heap footprint (storage accounting in benchmarks).
  size_t ApproxBytes() const;

  // Restores raw lifespan and class history from persistent storage
  // (storage layer only; attribute values are restored via SetAttribute).
  void RestoreState(const Interval& lifespan,
                    TemporalFunction class_history) {
    lifespan_ = lifespan;
    class_history_ = std::move(class_history);
  }

 private:
  struct Attr {
    std::string name;
    Value value;
  };

  Attr* FindAttr(std::string_view name);
  const Attr* FindAttr(std::string_view name) const;

  Oid id_;
  Interval lifespan_;
  std::vector<Attr> attributes_;  // sorted by name
  TemporalFunction class_history_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_OBJECT_OBJECT_H_
