// A temporal element: a set of disjoint, coalesced intervals used as the
// compact notation of Section 3.2 for a set of time instants. IntervalSet
// is the carrier for temporal-function domains, class lifespans unions
// (Invariant 5.2: o_lifespan(i) = U_c c_lifespan(i,c)), and query results.
//
// All intervals stored in an IntervalSet are fully resolved (no symbolic
// `now`); callers resolve ongoing intervals against the database clock
// before building sets.
#ifndef TCHIMERA_CORE_TEMPORAL_INTERVAL_SET_H_
#define TCHIMERA_CORE_TEMPORAL_INTERVAL_SET_H_

#include <string>
#include <vector>

#include "core/temporal/interval.h"

namespace tchimera {

class IntervalSet {
 public:
  // The empty set of instants.
  IntervalSet() = default;

  // Builds a set from arbitrary (possibly overlapping, unordered, empty)
  // resolved intervals; the result is sorted, disjoint and coalesced
  // (adjacent intervals merged).
  explicit IntervalSet(std::vector<Interval> intervals);

  static IntervalSet Of(const Interval& interval) {
    return IntervalSet(std::vector<Interval>{interval});
  }

  bool empty() const { return intervals_.empty(); }
  // Number of maximal intervals.
  size_t interval_count() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  // Total number of instants in the set.
  int64_t Cardinality() const;

  // True iff instant t belongs to the set. O(log n).
  bool Contains(TimePoint t) const;
  // True iff every instant of `interval` belongs to the set.
  bool CoversInterval(const Interval& interval) const;
  // True iff `other` is a subset of this set.
  bool CoversSet(const IntervalSet& other) const;

  // Set algebra; inputs untouched, results coalesced.
  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersect(const IntervalSet& other) const;
  IntervalSet Difference(const IntervalSet& other) const;

  // Adds one interval (coalescing).
  void Add(const Interval& interval);

  // Earliest / latest instant; meaningless when empty().
  TimePoint Min() const { return intervals_.front().start(); }
  TimePoint Max() const { return intervals_.back().end(); }

  // True if the set is one contiguous run of instants (or empty). Object
  // and class lifespans are required to be contiguous (Sections 4, 5.1).
  bool IsContiguous() const { return intervals_.size() <= 1; }

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }
  friend bool operator!=(const IntervalSet& a, const IntervalSet& b) {
    return !(a == b);
  }

  // "{[1,4],[7,9]}" or "{}".
  std::string ToString() const;

 private:
  void Normalize();

  // Sorted by start, pairwise disjoint, no two adjacent, no empties.
  std::vector<Interval> intervals_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TEMPORAL_INTERVAL_SET_H_
