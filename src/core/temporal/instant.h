// The discrete time domain of T_Chimera (Section 3.2 of the paper):
//   TIME = {0, 1, ..., now, ...}, isomorphic to the natural numbers.
// '0' is the relative beginning; `now` is a special moving constant denoting
// the current time.
//
// We represent instants as 64-bit integers. The symbolic constant `kNow`
// (the largest representable value) stands for the moving `now`; it is
// resolved to the database clock's concrete value by ResolveInstant before
// arithmetic interval algebra is applied. An interval such as [10, now]
// (the paper's own notation, e.g. Example 4.1) is stored with end == kNow
// and means "from 10 through the current time, still ongoing".
#ifndef TCHIMERA_CORE_TEMPORAL_INSTANT_H_
#define TCHIMERA_CORE_TEMPORAL_INSTANT_H_

#include <cstdint>
#include <limits>
#include <string>

namespace tchimera {

// A point of the discrete TIME domain. Valid model instants are >= 0;
// kNow is the symbolic 'now'.
using TimePoint = int64_t;

// The relative beginning of time ('0' in the paper).
inline constexpr TimePoint kTimeOrigin = 0;

// The symbolic moving constant `now`. Deliberately far below the int64
// maximum: interval algebra computes `end + 1` / `start - 1` freely, and
// this leaves plenty of headroom with no overflow special-casing. Any
// concrete model instant is astronomically smaller.
inline constexpr TimePoint kNow = std::numeric_limits<int64_t>::max() / 2;

// True if `t` is the symbolic `now`.
constexpr bool IsNow(TimePoint t) { return t == kNow; }

// True if `t` is a usable instant: a concrete non-negative instant or the
// symbolic `now`.
constexpr bool IsValidInstant(TimePoint t) { return t >= 0; }

// Replaces the symbolic `now` with the concrete current time `current`.
// Concrete instants pass through unchanged.
constexpr TimePoint ResolveInstant(TimePoint t, TimePoint current) {
  return IsNow(t) ? current : t;
}

// Renders an instant: "now" for the symbolic constant, the decimal value
// otherwise.
std::string InstantToString(TimePoint t);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TEMPORAL_INSTANT_H_
