#include "core/temporal/interval_set.h"

#include <algorithm>

namespace tchimera {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Normalize();
}

void IntervalSet::Normalize() {
  std::vector<Interval> in;
  in.reserve(intervals_.size());
  for (const Interval& i : intervals_) {
    if (!i.empty()) in.push_back(i);
  }
  std::sort(in.begin(), in.end(), [](const Interval& a, const Interval& b) {
    if (a.start() != b.start()) return a.start() < b.start();
    return a.end() < b.end();
  });
  intervals_.clear();
  for (const Interval& i : in) {
    if (!intervals_.empty()) {
      Interval& last = intervals_.back();
      // Merge when overlapping or adjacent.
      if (i.start() <= last.end() + 1) {
        if (i.end() > last.end()) last = Interval(last.start(), i.end());
        continue;
      }
    }
    intervals_.push_back(i);
  }
}

int64_t IntervalSet::Cardinality() const {
  int64_t total = 0;
  for (const Interval& i : intervals_) total += i.end() - i.start() + 1;
  return total;
}

bool IntervalSet::Contains(TimePoint t) const {
  // First interval with start > t is the one *after* the candidate.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& i) { return v < i.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return t <= it->end();
}

bool IntervalSet::CoversInterval(const Interval& interval) const {
  if (interval.empty()) return true;
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval.start(),
      [](TimePoint v, const Interval& i) { return v < i.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return interval.start() >= it->start() && interval.end() <= it->end();
}

bool IntervalSet::CoversSet(const IntervalSet& other) const {
  for (const Interval& i : other.intervals_) {
    if (!CoversInterval(i)) return false;
  }
  return true;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    TimePoint s = std::max(a.start(), b.start());
    TimePoint e = std::min(a.end(), b.end());
    if (s <= e) out.emplace_back(s, e);
    // Advance the interval that ends first.
    if (a.end() < b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Difference(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t j = 0;
  for (const Interval& a : intervals_) {
    TimePoint cursor = a.start();
    while (j < other.intervals_.size() &&
           other.intervals_[j].end() < cursor) {
      ++j;
    }
    size_t k = j;
    while (k < other.intervals_.size() &&
           other.intervals_[k].start() <= a.end()) {
      const Interval& b = other.intervals_[k];
      if (b.start() > cursor) out.emplace_back(cursor, b.start() - 1);
      cursor = std::max(cursor, b.end() + 1);
      if (cursor > a.end()) break;
      ++k;
    }
    if (cursor <= a.end()) out.emplace_back(cursor, a.end());
  }
  return IntervalSet(std::move(out));
}

void IntervalSet::Add(const Interval& interval) {
  if (interval.empty()) return;
  // In-order adds are O(1): WHEN evaluation (query/evaluator.cc,
  // query/vm.cc) appends qualifying boundary intervals in ascending
  // order, and the full re-normalize made that quadratic in the number
  // of result intervals.
  if (intervals_.empty() || interval.start() > intervals_.back().end() + 1) {
    intervals_.push_back(interval);
    return;
  }
  Interval& last = intervals_.back();
  if (interval.start() >= last.start()) {
    // Overlaps or abuts the last interval: extend it in place.
    if (interval.end() > last.end()) {
      last = Interval(last.start(), interval.end());
    }
    return;
  }
  intervals_.push_back(interval);
  Normalize();
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ",";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace tchimera
