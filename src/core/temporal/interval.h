// Time intervals (Section 3.2): an interval I = [t1, t2] is the set of
// consecutive instants between t1 and t2, both included. [] denotes the
// null (empty) interval. The interval end may be the symbolic `now`
// (see instant.h); such an interval is "ongoing".
#ifndef TCHIMERA_CORE_TEMPORAL_INTERVAL_H_
#define TCHIMERA_CORE_TEMPORAL_INTERVAL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/temporal/instant.h"

namespace tchimera {

// Allen's interval relations, used by the query layer's temporal
// predicates. Only defined between non-empty, resolved intervals.
enum class AllenRelation {
  kBefore,        // a entirely precedes b with a gap
  kMeets,         // a ends exactly one instant before b starts
  kOverlaps,      // a starts first, they overlap, b ends last
  kStarts,        // same start, a ends first
  kDuring,        // a strictly inside b
  kFinishes,      // same end, a starts later
  kEquals,        // identical
  kFinishedBy,    // inverse of kFinishes
  kContains,      // inverse of kDuring
  kStartedBy,     // inverse of kStarts
  kOverlappedBy,  // inverse of kOverlaps
  kMetBy,         // inverse of kMeets
  kAfter,         // inverse of kBefore
};

const char* AllenRelationName(AllenRelation r);

// A closed interval of instants, possibly empty, possibly ending at the
// symbolic `now`. Immutable value type.
class Interval {
 public:
  // The empty interval [].
  Interval() : start_(1), end_(0) {}

  // [start, end]; if end < start the result is the empty interval.
  Interval(TimePoint start, TimePoint end) : start_(start), end_(end) {}

  // The single-instant interval [t, t].
  static Interval At(TimePoint t) { return Interval(t, t); }
  static Interval Empty() { return Interval(); }
  // [start, now] — ongoing.
  static Interval FromUntilNow(TimePoint start) {
    return Interval(start, kNow);
  }

  bool empty() const { return end_ < start_; }
  // True if the interval's end is the symbolic `now`.
  bool is_ongoing() const { return !empty() && IsNow(end_); }

  // Endpoints; meaningless when empty().
  TimePoint start() const { return start_; }
  TimePoint end() const { return end_; }

  // Replaces a symbolic `now` endpoint with the concrete `current` time.
  // If the start exceeds the resolved end (e.g. [5, now] resolved at
  // current=3), the result is empty.
  Interval Resolve(TimePoint current) const;

  // Membership: t in I. `current` resolves an ongoing end; a symbolic `now`
  // query instant is also resolved against `current`.
  bool Contains(TimePoint t, TimePoint current) const;
  // Membership for intervals that are already fully concrete.
  bool ContainsResolved(TimePoint t) const {
    return !empty() && start_ <= t && t <= end_;
  }

  // True if `other` is a subset of this interval (both resolved against
  // `current`).
  bool Covers(const Interval& other, TimePoint current) const;

  // Set operations on resolved intervals. Intersection of intervals is an
  // interval; union and difference in general are not, so they live on
  // IntervalSet. Both operands are resolved against `current` first.
  Interval Intersect(const Interval& other, TimePoint current) const;
  bool Overlaps(const Interval& other, TimePoint current) const;

  // True if this interval and `other` are adjacent or overlapping, i.e.
  // their union is a single interval.
  bool Touches(const Interval& other, TimePoint current) const;

  // Number of instants in the resolved interval (0 when empty).
  int64_t Duration(TimePoint current) const;

  // The Allen relation from this interval to `other`; nullopt if either is
  // empty after resolution.
  std::optional<AllenRelation> RelationTo(const Interval& other,
                                          TimePoint current) const;

  // Structural equality (symbolic `now` compares equal only to `now`).
  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) return true;
    return a.start_ == b.start_ && a.end_ == b.end_;
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }

  // "[3,17]", "[10,now]", or "[]".
  std::string ToString() const;

 private:
  TimePoint start_;
  TimePoint end_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TEMPORAL_INTERVAL_H_
