// The database clock: the authority for the value of the moving constant
// `now`. The paper treats `now` as a special element of TIME; giving it a
// model-controlled value (rather than wall-clock time) keeps every run
// deterministic and lets tests and benchmarks advance time explicitly.
#ifndef TCHIMERA_CORE_TEMPORAL_CLOCK_H_
#define TCHIMERA_CORE_TEMPORAL_CLOCK_H_

#include "common/status.h"
#include "core/temporal/instant.h"

namespace tchimera {

class Clock {
 public:
  // Time starts at the relative beginning '0'.
  Clock() : now_(kTimeOrigin) {}
  explicit Clock(TimePoint start) : now_(start) {}

  // The concrete current time.
  TimePoint now() const { return now_; }

  // Advances the clock by `steps` instants (default 1).
  void Tick(int64_t steps = 1) { now_ += steps; }

  // Moves the clock to instant `t`. Time is monotone: moving backwards is
  // an error (the valid-time history already recorded up to now_ would
  // become partly "in the future").
  Status AdvanceTo(TimePoint t) {
    if (IsNow(t)) return Status::InvalidArgument("cannot advance to 'now'");
    if (t < now_) {
      return Status::TemporalError("clock cannot move backwards: now=" +
                                   std::to_string(now_) + " requested=" +
                                   std::to_string(t));
    }
    now_ = t;
    return Status::OK();
  }

 private:
  TimePoint now_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_TEMPORAL_CLOCK_H_
