#include "core/temporal/clock.h"

// Clock is header-only today; this translation unit anchors the target and
// reserves room for future clock policies (e.g. transaction-time clocks).
