#include "core/temporal/interval.h"

#include <algorithm>

namespace tchimera {

std::string InstantToString(TimePoint t) {
  if (IsNow(t)) return "now";
  return std::to_string(t);
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "unknown";
}

Interval Interval::Resolve(TimePoint current) const {
  if (empty()) return Empty();
  TimePoint s = ResolveInstant(start_, current);
  TimePoint e = ResolveInstant(end_, current);
  if (e < s) return Empty();
  return Interval(s, e);
}

bool Interval::Contains(TimePoint t, TimePoint current) const {
  return Resolve(current).ContainsResolved(ResolveInstant(t, current));
}

bool Interval::Covers(const Interval& other, TimePoint current) const {
  Interval a = Resolve(current);
  Interval b = other.Resolve(current);
  if (b.empty()) return true;
  if (a.empty()) return false;
  return a.start_ <= b.start_ && b.end_ <= a.end_;
}

Interval Interval::Intersect(const Interval& other, TimePoint current) const {
  Interval a = Resolve(current);
  Interval b = other.Resolve(current);
  if (a.empty() || b.empty()) return Empty();
  TimePoint s = std::max(a.start_, b.start_);
  TimePoint e = std::min(a.end_, b.end_);
  if (e < s) return Empty();
  return Interval(s, e);
}

bool Interval::Overlaps(const Interval& other, TimePoint current) const {
  return !Intersect(other, current).empty();
}

bool Interval::Touches(const Interval& other, TimePoint current) const {
  Interval a = Resolve(current);
  Interval b = other.Resolve(current);
  if (a.empty() || b.empty()) return false;
  // Adjacent or overlapping: neither gap a.end+1 < b.start nor
  // b.end+1 < a.start.
  return a.start_ <= b.end_ + 1 && b.start_ <= a.end_ + 1;
}

int64_t Interval::Duration(TimePoint current) const {
  Interval r = Resolve(current);
  if (r.empty()) return 0;
  return r.end_ - r.start_ + 1;
}

std::optional<AllenRelation> Interval::RelationTo(const Interval& other,
                                                  TimePoint current) const {
  Interval a = Resolve(current);
  Interval b = other.Resolve(current);
  if (a.empty() || b.empty()) return std::nullopt;
  if (a.end_ + 1 < b.start_) return AllenRelation::kBefore;
  if (a.end_ + 1 == b.start_) return AllenRelation::kMeets;
  if (b.end_ + 1 < a.start_) return AllenRelation::kAfter;
  if (b.end_ + 1 == a.start_) return AllenRelation::kMetBy;
  if (a.start_ == b.start_ && a.end_ == b.end_) return AllenRelation::kEquals;
  if (a.start_ == b.start_) {
    return a.end_ < b.end_ ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.end_ == b.end_) {
    return a.start_ > b.start_ ? AllenRelation::kFinishes
                               : AllenRelation::kFinishedBy;
  }
  if (a.start_ > b.start_ && a.end_ < b.end_) return AllenRelation::kDuring;
  if (b.start_ > a.start_ && b.end_ < a.end_) return AllenRelation::kContains;
  return a.start_ < b.start_ ? AllenRelation::kOverlaps
                             : AllenRelation::kOverlappedBy;
}

std::string Interval::ToString() const {
  if (empty()) return "[]";
  return "[" + InstantToString(start_) + "," + InstantToString(end_) + "]";
}

}  // namespace tchimera
