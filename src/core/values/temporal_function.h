// Temporal functions: the values of temporal types (Definition 3.5).
//
// The extension of temporal(T) at time t is the set of *partial functions*
// f : TIME -> U_t' [[T]]_t'. Following the paper's Section 3.2 we represent
// such a function compactly as a set of pairs {<tau_1,v_1>,...,<tau_n,v_n>}
// of disjoint time intervals and values: f(t) = v_i for every t in tau_i.
//
// An interval ending at the symbolic `now` (kNow) means "holds from its
// start onward until superseded"; arithmetically kNow behaves as +infinity
// (it is the largest TimePoint), so membership tests need no special
// casing, and Domain()/ToString() resolve it against the clock for
// presentation in the paper's `[51,now]` notation.
#ifndef TCHIMERA_CORE_VALUES_TEMPORAL_FUNCTION_H_
#define TCHIMERA_CORE_VALUES_TEMPORAL_FUNCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval.h"
#include "core/temporal/interval_set.h"
#include "core/values/value.h"

namespace tchimera {

class TemporalFunction {
 public:
  // One piece <tau_i, v_i> of the function.
  struct Segment {
    Interval interval;
    Value value;

    friend bool operator==(const Segment& a, const Segment& b) {
      return a.interval == b.interval && a.value == b.value;
    }
  };

  // The everywhere-undefined function.
  TemporalFunction() = default;

  // Builds a function from segments. Fails with TemporalError if any two
  // segments overlap; empty-interval segments are dropped; the result is
  // sorted and coalesced (adjacent equal values merged).
  static Result<TemporalFunction> Make(std::vector<Segment> segments);

  // The constant function v over `interval` ("immutable attributes can be
  // regarded as a constant function from a temporal domain", Section 1.1).
  static TemporalFunction Constant(const Interval& interval, Value v);

  bool empty() const { return segments_.empty(); }
  size_t segment_count() const { return segments_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  // f(t): the value at instant t, or null when t is outside the domain.
  const Value* At(TimePoint t) const;
  bool IsDefinedAt(TimePoint t) const { return At(t) != nullptr; }

  // The domain of the partial function. Ongoing segments are clipped to
  // `current` (for a segment starting in the future relative to `current`
  // nothing is reported).
  IntervalSet Domain(TimePoint current) const;
  // The unclipped domain, with kNow kept as +infinity endpoints.
  IntervalSet RawDomain() const;

  // Redefines the function on `interval` to the constant v, splicing
  // around existing segments (existing pieces outside `interval` are
  // preserved). A null v with erase semantics is allowed via Erase().
  Status Define(const Interval& interval, Value v);
  // Removes `interval` from the domain.
  Status Erase(const Interval& interval);
  // Shorthand for Define([t, now], v): asserts v from t onward.
  Status AssertFrom(TimePoint t, Value v);
  // Ends an ongoing final segment at instant `t` (inclusive). No-op if the
  // function has no ongoing segment.
  void CloseAt(TimePoint t);

  // The first/last instant of the domain; requires !empty(). The end of an
  // ongoing function is kNow.
  TimePoint DomainStart() const { return segments_.front().interval.start(); }
  TimePoint DomainEnd() const { return segments_.back().interval.end(); }

  friend bool operator==(const TemporalFunction& a,
                         const TemporalFunction& b) {
    return a.segments_ == b.segments_;
  }
  friend bool operator!=(const TemporalFunction& a,
                         const TemporalFunction& b) {
    return !(a == b);
  }

  // Total order consistent with ==, used for the canonical ordering of
  // values containing temporal functions.
  static int Compare(const TemporalFunction& a, const TemporalFunction& b);

  // "{<[5,10],12>,<[11,now],5>}" (paper notation).
  std::string ToString() const;

  size_t ApproxBytes() const;

 private:
  void Coalesce();

  // Sorted by interval start; pairwise disjoint; no empty intervals; at
  // most the last segment is ongoing (ends at kNow).
  std::vector<Segment> segments_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_VALUES_TEMPORAL_FUNCTION_H_
