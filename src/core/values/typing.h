// The typing machinery of Section 3.2:
//
//   - CheckLegalValue implements Definition 3.5: v in [[T]]_t, the
//     extension of type T at time t;
//   - InferType implements the typing rules of Definition 3.6: it deduces
//     the most specific type of a value (using the lub for collections);
//
// together they make Theorem 3.1 (soundness) and Theorem 3.2
// (completeness) machine-checkable properties:
//
//   soundness:    InferType(v) = T  ==>  exists t, v in [[T]]_t
//   completeness: v in [[T]]_t      ==>  InferType(v) <=_T T
//
// (The paper phrases completeness as deducing exactly T for v; because the
// rules deduce the *most specific* type and null/empty collections inhabit
// every type, the deduced type is in general a subtype of T. This is the
// standard reading and is what the property tests verify.)
//
// Object-type rules need the class extents: `i : c` holds iff
// i in pi(c, t). Those live in the schema layer, so the checker is
// parameterized by an ExtentProvider.
#ifndef TCHIMERA_CORE_VALUES_TYPING_H_
#define TCHIMERA_CORE_VALUES_TYPING_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/temporal/interval.h"
#include "core/types/subtyping.h"
#include "core/types/type.h"
#include "core/values/value.h"

namespace tchimera {

// The function pi: CI x TIME -> 2^OI of the paper, as seen by the type
// checker.
class ExtentProvider {
 public:
  virtual ~ExtentProvider() = default;

  // True iff oid in pi(class_name, t): the object belonged to the class
  // (as instance or member) at instant t.
  virtual bool InExtent(std::string_view class_name, Oid oid,
                        TimePoint t) const = 0;

  // True iff oid in pi(class_name, t) for *every* t in `interval`. Used
  // when checking temporal values, whose segments assert membership over
  // whole intervals (Example 5.3 in the paper spells this out).
  virtual bool InExtentThroughout(std::string_view class_name, Oid oid,
                                  const Interval& interval) const = 0;

  // The most specific class the object belongs to at instant t, if any.
  // Drives the inference rule for oids.
  virtual std::optional<std::string> MostSpecificClass(Oid oid,
                                                       TimePoint t) const = 0;
};

// A world with no objects: every extent is empty. Value-only code paths
// and tests use this.
class EmptyExtentProvider final : public ExtentProvider {
 public:
  bool InExtent(std::string_view, Oid, TimePoint) const override {
    return false;
  }
  bool InExtentThroughout(std::string_view, Oid,
                          const Interval&) const override {
    return false;
  }
  std::optional<std::string> MostSpecificClass(Oid, TimePoint) const override {
    return std::nullopt;
  }
};

// Groups the two schema-facing interfaces the type system depends on.
struct TypingContext {
  const ExtentProvider& extents;
  const IsaProvider& isa;
};

// Definition 3.5: OK iff v in [[T]]_t. The error message pinpoints the
// first violating component.
Status CheckLegalValue(const Value& v, const Type* type, TimePoint t,
                       const TypingContext& ctx);

// OK iff v in [[T]]_t for every t in `interval` (object-type membership
// must hold throughout). Used for temporal segments, whose values are
// asserted over whole intervals.
Status CheckLegalValueOverInterval(const Value& v, const Type* type,
                                   const Interval& interval,
                                   const TypingContext& ctx);
inline bool IsLegalValue(const Value& v, const Type* type, TimePoint t,
                         const TypingContext& ctx) {
  return CheckLegalValue(v, type, t, ctx).ok();
}

// Definition 3.6: the deduced (most specific) type of `v`, evaluated at
// reference instant `t` (oids are typed by their most specific class at
// the instant where they occur: `t` for non-temporal positions, the
// segment instants for temporal ones). Fails with TypeError when no type
// can be deduced (unknown oid, or a collection whose element types have no
// lub).
Result<const Type*> InferType(const Value& v, TimePoint t,
                              const TypingContext& ctx);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_VALUES_TYPING_H_
