#include "core/values/temporal_function.h"

#include <algorithm>

namespace tchimera {

Result<TemporalFunction> TemporalFunction::Make(
    std::vector<Segment> segments) {
  // Drop empty intervals, sort by start.
  std::vector<Segment> kept;
  kept.reserve(segments.size());
  for (Segment& s : segments) {
    if (!s.interval.empty()) kept.push_back(std::move(s));
  }
  std::sort(kept.begin(), kept.end(), [](const Segment& a, const Segment& b) {
    return a.interval.start() < b.interval.start();
  });
  for (size_t i = 1; i < kept.size(); ++i) {
    if (kept[i].interval.start() <= kept[i - 1].interval.end()) {
      return Status::TemporalError(
          "temporal value has overlapping intervals " +
          kept[i - 1].interval.ToString() + " and " +
          kept[i].interval.ToString());
    }
  }
  TemporalFunction f;
  f.segments_ = std::move(kept);
  f.Coalesce();
  return f;
}

TemporalFunction TemporalFunction::Constant(const Interval& interval,
                                            Value v) {
  TemporalFunction f;
  if (!interval.empty()) {
    f.segments_.push_back({interval, std::move(v)});
  }
  return f;
}

const Value* TemporalFunction::At(TimePoint t) const {
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimePoint v, const Segment& s) { return v < s.interval.start(); });
  if (it == segments_.begin()) return nullptr;
  --it;
  if (t <= it->interval.end()) return &it->value;
  return nullptr;
}

IntervalSet TemporalFunction::Domain(TimePoint current) const {
  std::vector<Interval> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) {
    Interval r = s.interval.Resolve(current);
    if (!r.empty()) out.push_back(r);
  }
  return IntervalSet(std::move(out));
}

IntervalSet TemporalFunction::RawDomain() const {
  std::vector<Interval> out;
  out.reserve(segments_.size());
  for (const Segment& s : segments_) out.push_back(s.interval);
  return IntervalSet(std::move(out));
}

Status TemporalFunction::Define(const Interval& interval, Value v) {
  if (interval.empty()) return Status::OK();
  TCH_RETURN_IF_ERROR(Erase(interval));
  // Insert the new segment at its sorted position.
  auto pos = std::lower_bound(
      segments_.begin(), segments_.end(), interval.start(),
      [](const Segment& s, TimePoint t) { return s.interval.start() < t; });
  segments_.insert(pos, Segment{interval, std::move(v)});
  Coalesce();
  return Status::OK();
}

Status TemporalFunction::Erase(const Interval& interval) {
  if (interval.empty()) return Status::OK();
  std::vector<Segment> out;
  out.reserve(segments_.size() + 1);
  for (Segment& s : segments_) {
    const Interval& iv = s.interval;
    if (iv.end() < interval.start() || iv.start() > interval.end()) {
      out.push_back(std::move(s));
      continue;
    }
    // Keep the part before the erased range.
    if (iv.start() < interval.start()) {
      out.push_back({Interval(iv.start(), interval.start() - 1), s.value});
    }
    // Keep the part after the erased range (interval.end()+1 would
    // overflow when the erased range is ongoing; an ongoing erase leaves
    // no tail).
    if (!IsNow(interval.end()) && iv.end() > interval.end()) {
      out.push_back({Interval(interval.end() + 1, iv.end()),
                     std::move(s.value)});
    }
  }
  segments_ = std::move(out);
  return Status::OK();
}

Status TemporalFunction::AssertFrom(TimePoint t, Value v) {
  // Asserting from `t` onward is the hot path (every current-time update
  // lands here); when `t` is at or after the final segment the splice
  // reduces to closing/extending the tail in O(1) instead of rebuilding
  // the whole segment vector.
  if (!segments_.empty()) {
    Segment& last = segments_.back();
    if (last.interval.is_ongoing() && last.interval.start() <= t) {
      if (last.value == v) return Status::OK();  // value unchanged
      if (last.interval.start() == t) {
        // Same-instant rewrite; may now coalesce with the previous
        // segment.
        last.value = std::move(v);
        if (segments_.size() >= 2) {
          Segment& prev = segments_[segments_.size() - 2];
          if (prev.interval.end() + 1 == t && prev.value == last.value) {
            prev.interval = Interval(prev.interval.start(), kNow);
            segments_.pop_back();
          }
        }
        return Status::OK();
      }
      last.interval = Interval(last.interval.start(), t - 1);
      segments_.push_back({Interval::FromUntilNow(t), std::move(v)});
      return Status::OK();
    }
    if (!last.interval.is_ongoing() && last.interval.end() < t) {
      if (last.interval.end() + 1 == t && last.value == v) {
        // Adjacent equal value: the closed tail simply reopens.
        last.interval = Interval(last.interval.start(), kNow);
        return Status::OK();
      }
      segments_.push_back({Interval::FromUntilNow(t), std::move(v)});
      return Status::OK();
    }
  }
  return Define(Interval::FromUntilNow(t), std::move(v));
}

void TemporalFunction::CloseAt(TimePoint t) {
  if (segments_.empty()) return;
  Segment& last = segments_.back();
  if (!last.interval.is_ongoing()) return;
  if (t < last.interval.start()) {
    // Closing before the segment began removes it entirely.
    segments_.pop_back();
    return;
  }
  last.interval = Interval(last.interval.start(), t);
}

int TemporalFunction::Compare(const TemporalFunction& a,
                              const TemporalFunction& b) {
  size_t n = std::min(a.segments_.size(), b.segments_.size());
  for (size_t i = 0; i < n; ++i) {
    const Segment& sa = a.segments_[i];
    const Segment& sb = b.segments_[i];
    if (sa.interval.start() != sb.interval.start()) {
      return sa.interval.start() < sb.interval.start() ? -1 : 1;
    }
    if (sa.interval.end() != sb.interval.end()) {
      return sa.interval.end() < sb.interval.end() ? -1 : 1;
    }
    int c = Value::Compare(sa.value, sb.value);
    if (c != 0) return c;
  }
  if (a.segments_.size() != b.segments_.size()) {
    return a.segments_.size() < b.segments_.size() ? -1 : 1;
  }
  return 0;
}

std::string TemporalFunction::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) out += ",";
    out += "<" + segments_[i].interval.ToString() + "," +
           segments_[i].value.ToString() + ">";
  }
  out += "}";
  return out;
}

size_t TemporalFunction::ApproxBytes() const {
  size_t bytes = sizeof(TemporalFunction);
  for (const Segment& s : segments_) {
    bytes += sizeof(Segment) - sizeof(Value) + s.value.ApproxBytes();
  }
  return bytes;
}

void TemporalFunction::Coalesce() {
  if (segments_.empty()) return;
  std::vector<Segment> out;
  out.reserve(segments_.size());
  out.push_back(std::move(segments_.front()));
  for (size_t i = 1; i < segments_.size(); ++i) {
    Segment& prev = out.back();
    Segment& cur = segments_[i];
    if (!prev.interval.is_ongoing() &&
        prev.interval.end() + 1 == cur.interval.start() &&
        prev.value == cur.value) {
      prev.interval = Interval(prev.interval.start(), cur.interval.end());
    } else {
      out.push_back(std::move(cur));
    }
  }
  segments_ = std::move(out);
}

}  // namespace tchimera
