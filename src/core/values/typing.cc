#include "core/values/typing.h"

#include <vector>

#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

Status Mismatch(const Value& v, const Type* type) {
  return Status::TypeError("value " + v.ToString() +
                           " is not a legal value for type " +
                           type->ToString());
}

// Checks v in [[T]] where object-type membership must hold throughout
// `interval` (a single instant [t,t] at the top level; a segment interval
// inside temporal values).
Status CheckOverInterval(const Value& v, const Type* type,
                         const Interval& interval, const TypingContext& ctx) {
  // null in [[T]]_t for every T (Definition 3.5, first clause).
  if (v.is_null()) return Status::OK();
  switch (type->kind()) {
    case TypeKind::kAny:
      // Everything inhabits the bottom-up closure of `any` only via null;
      // a non-null value is never checked against `any` in legal schemas.
      return Mismatch(v, type);
    case TypeKind::kInteger:
      return v.kind() == ValueKind::kInteger ? Status::OK()
                                             : Mismatch(v, type);
    case TypeKind::kReal:
      return v.kind() == ValueKind::kReal ? Status::OK() : Mismatch(v, type);
    case TypeKind::kBool:
      return v.kind() == ValueKind::kBool ? Status::OK() : Mismatch(v, type);
    case TypeKind::kChar:
      return v.kind() == ValueKind::kChar ? Status::OK() : Mismatch(v, type);
    case TypeKind::kString:
      return v.kind() == ValueKind::kString ? Status::OK()
                                            : Mismatch(v, type);
    case TypeKind::kTime:
      // [[time]]_t = TIME.
      return v.kind() == ValueKind::kTime && IsValidInstant(v.AsTime())
                 ? Status::OK()
                 : Mismatch(v, type);
    case TypeKind::kObject: {
      // [[c]]_t = pi(c,t); over an interval, membership must hold
      // throughout.
      if (v.kind() != ValueKind::kOid) return Mismatch(v, type);
      bool ok =
          interval.start() == interval.end()
              ? ctx.extents.InExtent(type->class_name(), v.AsOid(),
                                     interval.start())
              : ctx.extents.InExtentThroughout(type->class_name(), v.AsOid(),
                                               interval);
      if (!ok) {
        return Status::TypeError("object " + v.AsOid().ToString() +
                                 " does not belong to class " +
                                 type->class_name() + " throughout " +
                                 interval.ToString());
      }
      return Status::OK();
    }
    case TypeKind::kSet: {
      if (v.kind() != ValueKind::kSet) return Mismatch(v, type);
      for (const Value& e : v.Elements()) {
        TCH_RETURN_IF_ERROR(
            CheckOverInterval(e, type->element(), interval, ctx));
      }
      return Status::OK();
    }
    case TypeKind::kList: {
      if (v.kind() != ValueKind::kList) return Mismatch(v, type);
      for (const Value& e : v.Elements()) {
        TCH_RETURN_IF_ERROR(
            CheckOverInterval(e, type->element(), interval, ctx));
      }
      return Status::OK();
    }
    case TypeKind::kRecord: {
      // Definition 3.5: a record value has exactly the components
      // a_1..a_n, each legal for its component type.
      if (v.kind() != ValueKind::kRecord) return Mismatch(v, type);
      const auto& fields = v.Fields();
      const auto& field_types = type->fields();
      if (fields.size() != field_types.size()) return Mismatch(v, type);
      // Both are sorted by name.
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].first != field_types[i].name) return Mismatch(v, type);
        TCH_RETURN_IF_ERROR(CheckOverInterval(
            fields[i].second, field_types[i].type, interval, ctx));
      }
      return Status::OK();
    }
    case TypeKind::kTemporal: {
      // [[temporal(T)]]_t: a partial function f with f(t') in [[T]]_t'
      // wherever defined. Each stored segment asserts the value over its
      // whole interval.
      if (v.kind() != ValueKind::kTemporal) return Mismatch(v, type);
      for (const auto& seg : v.AsTemporal().segments()) {
        TCH_RETURN_IF_ERROR(
            CheckOverInterval(seg.value, type->element(), seg.interval, ctx));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled type kind");
}

// Infers the type of the elements of a collection: the lub of the element
// types (Definition 3.6, set/list rules), or `any` for the empty
// collection.
Result<const Type*> InferElementsType(const std::vector<Value>& elements,
                                      TimePoint t, const TypingContext& ctx);

Result<const Type*> InferAt(const Value& v, TimePoint t,
                            const TypingContext& ctx) {
  switch (v.kind()) {
    case ValueKind::kNull:
      // null : T for every T; the most specific deduction is bottom.
      return types::Any();
    case ValueKind::kInteger:
      return types::Integer();
    case ValueKind::kReal:
      return types::Real();
    case ValueKind::kBool:
      return types::Bool();
    case ValueKind::kChar:
      return types::Char();
    case ValueKind::kString:
      return types::String();
    case ValueKind::kTime:
      return types::Time();
    case ValueKind::kOid: {
      // Rule: i : c when i in pi(c, t); deduce the most specific class.
      std::optional<std::string> cls =
          ctx.extents.MostSpecificClass(v.AsOid(), t);
      if (!cls.has_value()) {
        return Status::TypeError("object " + v.AsOid().ToString() +
                                 " does not belong to any class at time " +
                                 InstantToString(t));
      }
      return types::Object(*cls);
    }
    case ValueKind::kSet: {
      TCH_ASSIGN_OR_RETURN(const Type* e,
                           InferElementsType(v.Elements(), t, ctx));
      return types::SetOf(e);
    }
    case ValueKind::kList: {
      TCH_ASSIGN_OR_RETURN(const Type* e,
                           InferElementsType(v.Elements(), t, ctx));
      return types::ListOf(e);
    }
    case ValueKind::kRecord: {
      std::vector<RecordField> fields;
      fields.reserve(v.Fields().size());
      for (const auto& [name, fv] : v.Fields()) {
        TCH_ASSIGN_OR_RETURN(const Type* ft, InferAt(fv, t, ctx));
        fields.push_back({name, ft});
      }
      return types::RecordOf(std::move(fields));
    }
    case ValueKind::kTemporal: {
      // Rule: v_i : T, t_i : time |- {(t_i, v_i)} : temporal(T); segments
      // are typed at their own instants and joined with the lub.
      const Type* element = types::Any();
      for (const auto& seg : v.AsTemporal().segments()) {
        TCH_ASSIGN_OR_RETURN(const Type* st,
                             InferAt(seg.value, seg.interval.start(), ctx));
        TCH_ASSIGN_OR_RETURN(element,
                             LeastUpperBound(element, st, ctx.isa));
      }
      return types::Temporal(element);
    }
  }
  return Status::Internal("unhandled value kind");
}

Result<const Type*> InferElementsType(const std::vector<Value>& elements,
                                      TimePoint t, const TypingContext& ctx) {
  const Type* lub = types::Any();
  for (const Value& e : elements) {
    TCH_ASSIGN_OR_RETURN(const Type* et, InferAt(e, t, ctx));
    TCH_ASSIGN_OR_RETURN(lub, LeastUpperBound(lub, et, ctx.isa));
  }
  return lub;
}

}  // namespace

Status CheckLegalValue(const Value& v, const Type* type, TimePoint t,
                       const TypingContext& ctx) {
  if (type == nullptr) {
    return Status::InvalidArgument("null type in CheckLegalValue");
  }
  return CheckOverInterval(v, type, Interval::At(t), ctx);
}

Status CheckLegalValueOverInterval(const Value& v, const Type* type,
                                   const Interval& interval,
                                   const TypingContext& ctx) {
  if (type == nullptr) {
    return Status::InvalidArgument("null type in CheckLegalValueOverInterval");
  }
  if (interval.empty()) return Status::OK();
  return CheckOverInterval(v, type, interval, ctx);
}

Result<const Type*> InferType(const Value& v, TimePoint t,
                              const TypingContext& ctx) {
  return InferAt(v, t, ctx);
}

}  // namespace tchimera
