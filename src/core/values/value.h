// T_Chimera legal values (Section 3.2, Definition 3.5).
//
// A Value is one of:
//   null                        — legal for every type;
//   integer / real / bool / char / string
//                               — elements of dom(B) for the basic types;
//   time                        — an instant of TIME;
//   oid                         — an object identifier (oids are values of
//                                 object types; Section 3.2);
//   set / list                  — collections of values;
//   record                      — named components (a1:v1,...,an:vn);
//   temporal                    — a partial function from TIME to values,
//                                 represented as coalesced <interval,value>
//                                 pairs (the paper's compact notation).
//
// Values are immutable; copying is cheap (structured payloads are shared).
// Sets and records are kept canonical (sets: sorted + deduplicated;
// records: fields sorted by name), so structural equality is
// representation equality.
#ifndef TCHIMERA_CORE_VALUES_VALUE_H_
#define TCHIMERA_CORE_VALUES_VALUE_H_

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/temporal/instant.h"

namespace tchimera {

class TemporalFunction;

// An object identifier (Section 2): immutable, system-assigned, unique for
// the lifetime of the object. Printed as "i<n>" following the paper's
// examples (i1, i2, ...).
struct Oid {
  uint64_t id = 0;

  static constexpr Oid Invalid() { return Oid{0}; }
  bool valid() const { return id != 0; }
  std::string ToString() const { return "i" + std::to_string(id); }

  friend auto operator<=>(const Oid&, const Oid&) = default;
};

enum class ValueKind {
  kNull,
  kInteger,
  kReal,
  kBool,
  kChar,
  kString,
  kTime,
  kOid,
  kSet,
  kList,
  kRecord,
  kTemporal,
};

const char* ValueKindName(ValueKind kind);

class Value {
 public:
  using Field = std::pair<std::string, Value>;

  // The null value.
  Value();
  ~Value();
  Value(const Value&);
  Value& operator=(const Value&);
  Value(Value&&) noexcept;
  Value& operator=(Value&&) noexcept;

  static Value Null() { return Value(); }
  static Value Integer(int64_t v);
  static Value Real(double v);
  static Value Bool(bool v);
  static Value Char(char v);
  static Value String(std::string v);
  static Value Time(TimePoint t);
  static Value OfOid(Oid oid);
  // A set value; elements are sorted and deduplicated (sets are sets).
  static Value Set(std::vector<Value> elements);
  static Value EmptySet() { return Set({}); }
  static Value List(std::vector<Value> elements);
  // A record value; fields are sorted by name. Fails on duplicate names.
  static Result<Value> Record(std::vector<Field> fields);
  static Value Temporal(TemporalFunction f);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  // Scalar accessors; each requires the matching kind.
  int64_t AsInteger() const { return scalar_; }
  double AsReal() const { return real_; }
  bool AsBool() const { return scalar_ != 0; }
  char AsChar() const { return static_cast<char>(scalar_); }
  const std::string& AsString() const;
  TimePoint AsTime() const { return scalar_; }
  Oid AsOid() const { return Oid{static_cast<uint64_t>(scalar_)}; }

  // Elements of a set or list; requires kSet or kList.
  const std::vector<Value>& Elements() const;
  // Fields of a record (sorted by name); requires kRecord.
  const std::vector<Field>& Fields() const;
  // The value of record field `name`; null Value if absent. Requires
  // kRecord.
  const Value* FieldValue(std::string_view name) const;
  // The temporal function; requires kTemporal.
  const TemporalFunction& AsTemporal() const;

  // True if `element` is a member of this set/list value.
  bool Contains(const Value& element) const;

  // All oids appearing anywhere inside this value (recursively; inside
  // temporal functions too). Used for referential integrity (ref(i,t) and
  // Definition 5.6). If `at` is supplied, only temporal segments containing
  // `at` are scanned.
  void CollectOids(std::vector<Oid>* out) const;
  void CollectOidsAt(TimePoint at, std::vector<Oid>* out) const;

  // Total structural ordering over all values (kind rank first, then
  // payload). Defines the canonical set ordering. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  // Rendering in the paper's notation, e.g.
  //   (name:'Bob',score:{<[1,100],40>,<[101,200],70>})
  // Implemented in value_printer.cc.
  std::string ToString() const;

  // Approximate heap footprint in bytes (storage accounting for the
  // baseline benchmarks).
  size_t ApproxBytes() const;

 private:
  struct Rep;  // structured payload (string/set/list/record/temporal)

  ValueKind kind_ = ValueKind::kNull;
  int64_t scalar_ = 0;  // integer / bool / char / time / oid
  double real_ = 0.0;
  std::shared_ptr<const Rep> rep_;
};

}  // namespace tchimera

#endif  // TCHIMERA_CORE_VALUES_VALUE_H_
