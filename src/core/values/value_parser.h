// Parser for the textual value notation produced by Value::ToString (the
// paper's notation; see value_printer.cc for the grammar).
//
// One ambiguity exists in the surface syntax: "{}" can denote the empty
// set or the everywhere-undefined temporal function. An optional type hint
// resolves it (the storage layer always has the declared attribute type at
// hand); without a hint "{}" parses as the empty set.
#ifndef TCHIMERA_CORE_VALUES_VALUE_PARSER_H_
#define TCHIMERA_CORE_VALUES_VALUE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "core/types/type.h"
#include "core/values/value.h"

namespace tchimera {

// Parses `text` as a value. `hint` (may be null) disambiguates "{}" and is
// propagated into collections/records/temporal segments.
Result<Value> ParseValue(std::string_view text, const Type* hint = nullptr);

}  // namespace tchimera

#endif  // TCHIMERA_CORE_VALUES_VALUE_PARSER_H_
