#include "core/values/value_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

class ValueParser {
 public:
  explicit ValueParser(std::string_view text) : text_(text) {}

  Result<Value> Parse(const Type* hint) {
    TCH_ASSIGN_OR_RETURN(Value v, ParseValue(hint));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after value at " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ErrorHere(const std::string& what) {
    return Status::InvalidArgument(what + " at position " +
                                   std::to_string(pos_) + " in '" +
                                   std::string(text_) + "'");
  }

  // Parses a single-quoted, backslash-escaped literal body (after the
  // opening quote has been consumed).
  Result<std::string> ParseQuotedBody() {
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '\'') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return ErrorHere("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '\'':
            out.push_back('\'');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            return ErrorHere("bad escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return ErrorHere("unterminated string literal");
  }

  Result<TimePoint> ParseInstant() {
    SkipSpace();
    if (text_.compare(pos_, 3, "now") == 0) {
      pos_ += 3;
      return kNow;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return ErrorHere("expected an instant");
    return static_cast<TimePoint>(
        std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(),
                     nullptr, 10));
  }

  Result<Interval> ParseInterval() {
    if (!Consume('[')) return ErrorHere("expected '['");
    if (Consume(']')) return Interval::Empty();
    TCH_ASSIGN_OR_RETURN(TimePoint s, ParseInstant());
    if (!Consume(',')) return ErrorHere("expected ',' in interval");
    TCH_ASSIGN_OR_RETURN(TimePoint e, ParseInstant());
    if (!Consume(']')) return ErrorHere("expected ']' closing interval");
    return Interval(s, e);
  }

  Result<Value> ParseValue(const Type* hint) {
    SkipSpace();
    if (pos_ >= text_.size()) return ErrorHere("expected a value");
    char c = text_[pos_];

    // Braces open a set or a temporal function.
    if (c == '{') return ParseBraced(hint);
    if (c == '[') return ParseList(hint);
    if (c == '(') return ParseRecord(hint);
    if (c == '\'') {
      ++pos_;
      TCH_ASSIGN_OR_RETURN(std::string s, ParseQuotedBody());
      return Value::String(std::move(s));
    }
    // c'<char>'
    if (c == 'c' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
      pos_ += 2;
      TCH_ASSIGN_OR_RETURN(std::string s, ParseQuotedBody());
      if (s.size() != 1) return ErrorHere("char literal must be one character");
      return Value::Char(s[0]);
    }
    // t<instant>
    if (c == 't' && pos_ + 1 < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
         text_.compare(pos_ + 1, 3, "now") == 0)) {
      ++pos_;
      TCH_ASSIGN_OR_RETURN(TimePoint t, ParseInstant());
      return Value::Time(t);
    }
    // i<digits> — an oid.
    if (c == 'i' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      uint64_t id = std::strtoull(
          std::string(text_.substr(start, pos_ - start)).c_str(), nullptr, 10);
      return Value::OfOid(Oid{id});
    }
    // Keywords.
    if (MatchKeyword("null")) return Value::Null();
    if (MatchKeyword("true")) return Value::Bool(true);
    if (MatchKeyword("false")) return Value::Bool(false);
    // Numbers: integer or real.
    if (c == '-' || c == '+' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return ErrorHere("unrecognized value");
  }

  bool MatchKeyword(std::string_view kw) {
    if (text_.compare(pos_, kw.size(), kw) != 0) return false;
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_real = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_real = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-" || token == "+") {
      return ErrorHere("malformed number");
    }
    if (is_real) return Value::Real(std::strtod(token.c_str(), nullptr));
    return Value::Integer(std::strtoll(token.c_str(), nullptr, 10));
  }

  // '{' ... : either a set {v1,...} or a temporal function {<[..],v>,...}.
  Result<Value> ParseBraced(const Type* hint) {
    Consume('{');
    bool want_temporal =
        hint != nullptr && hint->kind() == TypeKind::kTemporal;
    if (Consume('}')) {
      if (want_temporal) return Value::Temporal(TemporalFunction());
      return Value::EmptySet();
    }
    if (Peek('<')) {
      // Temporal function.
      const Type* element_hint =
          want_temporal ? hint->element() : nullptr;
      std::vector<TemporalFunction::Segment> segments;
      do {
        if (!Consume('<')) return ErrorHere("expected '<'");
        TCH_ASSIGN_OR_RETURN(Interval iv, ParseInterval());
        if (!Consume(',')) return ErrorHere("expected ',' in segment");
        TCH_ASSIGN_OR_RETURN(Value v, ParseValue(element_hint));
        if (!Consume('>')) return ErrorHere("expected '>' closing segment");
        segments.push_back({iv, std::move(v)});
      } while (Consume(','));
      if (!Consume('}')) return ErrorHere("expected '}'");
      TCH_ASSIGN_OR_RETURN(TemporalFunction f,
                           TemporalFunction::Make(std::move(segments)));
      return Value::Temporal(std::move(f));
    }
    // Set.
    const Type* element_hint =
        hint != nullptr && hint->kind() == TypeKind::kSet ? hint->element()
                                                          : nullptr;
    std::vector<Value> elements;
    do {
      TCH_ASSIGN_OR_RETURN(Value v, ParseValue(element_hint));
      elements.push_back(std::move(v));
    } while (Consume(','));
    if (!Consume('}')) return ErrorHere("expected '}'");
    return Value::Set(std::move(elements));
  }

  Result<Value> ParseList(const Type* hint) {
    Consume('[');
    const Type* element_hint =
        hint != nullptr && hint->kind() == TypeKind::kList ? hint->element()
                                                           : nullptr;
    std::vector<Value> elements;
    if (Consume(']')) return Value::List(std::move(elements));
    do {
      TCH_ASSIGN_OR_RETURN(Value v, ParseValue(element_hint));
      elements.push_back(std::move(v));
    } while (Consume(','));
    if (!Consume(']')) return ErrorHere("expected ']'");
    return Value::List(std::move(elements));
  }

  Result<Value> ParseRecord(const Type* hint) {
    Consume('(');
    std::vector<Value::Field> fields;
    if (Consume(')')) return Value::Record(std::move(fields));
    do {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return ErrorHere("expected a field name");
      std::string name(text_.substr(start, pos_ - start));
      if (!Consume(':')) return ErrorHere("expected ':' after field name");
      const Type* field_hint =
          hint != nullptr && hint->kind() == TypeKind::kRecord
              ? hint->FieldType(name)
              : nullptr;
      TCH_ASSIGN_OR_RETURN(Value v, ParseValue(field_hint));
      fields.emplace_back(std::move(name), std::move(v));
    } while (Consume(','));
    if (!Consume(')')) return ErrorHere("expected ')'");
    return Value::Record(std::move(fields));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> ParseValue(std::string_view text, const Type* hint) {
  return ValueParser(text).Parse(hint);
}

}  // namespace tchimera
