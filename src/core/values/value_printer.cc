// Rendering of values in the paper's notation:
//   null                     null
//   integers                 42
//   reals                    3.5
//   bools                    true / false
//   chars                    'c' (single-quoted, one character)
//   strings                  'IDEA' (single-quoted, escaped)
//   time                     t17 / tnow
//   oids                     i4
//   sets                     {v1,...,vn}
//   lists                    [v1,...,vn]
//   records                  (a1:v1,...,an:vn)
//   temporal functions       {<[20,45],i4>,<[46,now],i9>}
#include <cstdio>

#include "core/values/temporal_function.h"
#include "core/values/value.h"

namespace tchimera {
namespace {

void AppendEscapedQuoted(const std::string& s, std::string* out) {
  out->push_back('\'');
  for (char c : s) {
    switch (c) {
      case '\'':
        *out += "\\'";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('\'');
}

std::string FormatReal(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Ensure the token re-parses as a real, not an integer.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInteger:
      return std::to_string(scalar_);
    case ValueKind::kReal:
      return FormatReal(real_);
    case ValueKind::kBool:
      return scalar_ != 0 ? "true" : "false";
    case ValueKind::kChar: {
      std::string out;
      AppendEscapedQuoted(std::string(1, static_cast<char>(scalar_)), &out);
      return "c" + out;
    }
    case ValueKind::kString: {
      std::string out;
      AppendEscapedQuoted(AsString(), &out);
      return out;
    }
    case ValueKind::kTime:
      return "t" + InstantToString(scalar_);
    case ValueKind::kOid:
      return AsOid().ToString();
    case ValueKind::kSet:
    case ValueKind::kList: {
      const char open = kind_ == ValueKind::kSet ? '{' : '[';
      const char close = kind_ == ValueKind::kSet ? '}' : ']';
      std::string out(1, open);
      const auto& elems = Elements();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ",";
        out += elems[i].ToString();
      }
      out.push_back(close);
      return out;
    }
    case ValueKind::kRecord: {
      std::string out = "(";
      const auto& fields = Fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ",";
        out += fields[i].first + ":" + fields[i].second.ToString();
      }
      out += ")";
      return out;
    }
    case ValueKind::kTemporal:
      return AsTemporal().ToString();
  }
  return "?";
}

}  // namespace tchimera
