#include "core/values/value.h"

#include <algorithm>

#include "core/values/temporal_function.h"

namespace tchimera {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInteger:
      return "integer";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kChar:
      return "char";
    case ValueKind::kString:
      return "string";
    case ValueKind::kTime:
      return "time";
    case ValueKind::kOid:
      return "oid";
    case ValueKind::kSet:
      return "set";
    case ValueKind::kList:
      return "list";
    case ValueKind::kRecord:
      return "record";
    case ValueKind::kTemporal:
      return "temporal";
  }
  return "unknown";
}

// Structured payload. Only the member matching the value's kind is used.
struct Value::Rep {
  std::string str;                   // kString
  std::vector<Value> elements;       // kSet / kList
  std::vector<Value::Field> fields;  // kRecord
  TemporalFunction temporal;         // kTemporal
};

Value::Value() = default;
Value::~Value() = default;
Value::Value(const Value&) = default;
Value& Value::operator=(const Value&) = default;
Value::Value(Value&&) noexcept = default;
Value& Value::operator=(Value&&) noexcept = default;

Value Value::Integer(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInteger;
  out.scalar_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.kind_ = ValueKind::kReal;
  out.real_ = v;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.scalar_ = v ? 1 : 0;
  return out;
}

Value Value::Char(char v) {
  Value out;
  out.kind_ = ValueKind::kChar;
  out.scalar_ = static_cast<int64_t>(v);
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  auto rep = std::make_shared<Rep>();
  rep->str = std::move(v);
  out.rep_ = std::move(rep);
  return out;
}

Value Value::Time(TimePoint t) {
  Value out;
  out.kind_ = ValueKind::kTime;
  out.scalar_ = t;
  return out;
}

Value Value::OfOid(Oid oid) {
  Value out;
  out.kind_ = ValueKind::kOid;
  out.scalar_ = static_cast<int64_t>(oid.id);
  return out;
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  elements.erase(std::unique(elements.begin(), elements.end(),
                             [](const Value& a, const Value& b) {
                               return Compare(a, b) == 0;
                             }),
                 elements.end());
  Value out;
  out.kind_ = ValueKind::kSet;
  auto rep = std::make_shared<Rep>();
  rep->elements = std::move(elements);
  out.rep_ = std::move(rep);
  return out;
}

Value Value::List(std::vector<Value> elements) {
  Value out;
  out.kind_ = ValueKind::kList;
  auto rep = std::make_shared<Rep>();
  rep->elements = std::move(elements);
  out.rep_ = std::move(rep);
  return out;
}

Result<Value> Value::Record(std::vector<Field> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const Field& a, const Field& b) { return a.first < b.first; });
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i].first == fields[i - 1].first) {
      return Status::InvalidArgument("duplicate record component '" +
                                     fields[i].first + "'");
    }
  }
  Value out;
  out.kind_ = ValueKind::kRecord;
  auto rep = std::make_shared<Rep>();
  rep->fields = std::move(fields);
  out.rep_ = std::move(rep);
  return out;
}

Value Value::Temporal(TemporalFunction f) {
  Value out;
  out.kind_ = ValueKind::kTemporal;
  auto rep = std::make_shared<Rep>();
  rep->temporal = std::move(f);
  out.rep_ = std::move(rep);
  return out;
}

const std::string& Value::AsString() const { return rep_->str; }

const std::vector<Value>& Value::Elements() const { return rep_->elements; }

const std::vector<Value::Field>& Value::Fields() const {
  return rep_->fields;
}

const Value* Value::FieldValue(std::string_view name) const {
  if (kind_ != ValueKind::kRecord) return nullptr;
  const auto& fields = rep_->fields;
  auto it = std::lower_bound(
      fields.begin(), fields.end(), name,
      [](const Field& f, std::string_view n) { return f.first < n; });
  if (it == fields.end() || it->first != name) return nullptr;
  return &it->second;
}

const TemporalFunction& Value::AsTemporal() const { return rep_->temporal; }

bool Value::Contains(const Value& element) const {
  if (kind_ == ValueKind::kSet) {
    // Sets are sorted: binary search.
    const auto& elems = rep_->elements;
    auto it = std::lower_bound(elems.begin(), elems.end(), element,
                               [](const Value& a, const Value& b) {
                                 return Compare(a, b) < 0;
                               });
    return it != elems.end() && Compare(*it, element) == 0;
  }
  if (kind_ == ValueKind::kList) {
    for (const Value& v : rep_->elements) {
      if (Compare(v, element) == 0) return true;
    }
  }
  return false;
}

void Value::CollectOids(std::vector<Oid>* out) const {
  switch (kind_) {
    case ValueKind::kOid:
      out->push_back(AsOid());
      break;
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const Value& v : rep_->elements) v.CollectOids(out);
      break;
    case ValueKind::kRecord:
      for (const Field& f : rep_->fields) f.second.CollectOids(out);
      break;
    case ValueKind::kTemporal:
      for (const auto& seg : rep_->temporal.segments()) {
        seg.value.CollectOids(out);
      }
      break;
    default:
      break;
  }
}

void Value::CollectOidsAt(TimePoint at, std::vector<Oid>* out) const {
  switch (kind_) {
    case ValueKind::kOid:
      out->push_back(AsOid());
      break;
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const Value& v : rep_->elements) v.CollectOidsAt(at, out);
      break;
    case ValueKind::kRecord:
      for (const Field& f : rep_->fields) f.second.CollectOidsAt(at, out);
      break;
    case ValueKind::kTemporal: {
      const Value* v = rep_->temporal.At(at);
      if (v != nullptr) v->CollectOidsAt(at, out);
      break;
    }
    default:
      break;
  }
}

namespace {

// Rank used as the major key of the total order.
int KindRank(ValueKind k) { return static_cast<int>(k); }

template <typename T>
int ThreeWay(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return ThreeWay(KindRank(a.kind_), KindRank(b.kind_));
  }
  switch (a.kind_) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kInteger:
    case ValueKind::kBool:
    case ValueKind::kChar:
    case ValueKind::kTime:
    case ValueKind::kOid:
      return ThreeWay(a.scalar_, b.scalar_);
    case ValueKind::kReal:
      return ThreeWay(a.real_, b.real_);
    case ValueKind::kString: {
      int c = a.rep_->str.compare(b.rep_->str);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kSet:
    case ValueKind::kList: {
      const auto& ea = a.rep_->elements;
      const auto& eb = b.rep_->elements;
      size_t n = std::min(ea.size(), eb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(ea[i], eb[i]);
        if (c != 0) return c;
      }
      return ThreeWay(ea.size(), eb.size());
    }
    case ValueKind::kRecord: {
      const auto& fa = a.rep_->fields;
      const auto& fb = b.rep_->fields;
      size_t n = std::min(fa.size(), fb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = ThreeWay(fa[i].first, fb[i].first);
        if (c != 0) return c;
        c = Compare(fa[i].second, fb[i].second);
        if (c != 0) return c;
      }
      return ThreeWay(fa.size(), fb.size());
    }
    case ValueKind::kTemporal:
      return TemporalFunction::Compare(a.rep_->temporal, b.rep_->temporal);
  }
  return 0;
}

size_t Value::ApproxBytes() const {
  size_t bytes = sizeof(Value);
  if (rep_ == nullptr) return bytes;
  bytes += sizeof(Rep);
  switch (kind_) {
    case ValueKind::kString:
      bytes += rep_->str.capacity();
      break;
    case ValueKind::kSet:
    case ValueKind::kList:
      for (const Value& v : rep_->elements) bytes += v.ApproxBytes();
      break;
    case ValueKind::kRecord:
      for (const Field& f : rep_->fields) {
        bytes += f.first.capacity() + f.second.ApproxBytes();
      }
      break;
    case ValueKind::kTemporal:
      bytes += rep_->temporal.ApproxBytes();
      break;
    default:
      break;
  }
  return bytes;
}

}  // namespace tchimera
