// The tchimera socket server: an epoll front end over the concurrent
// engine (query/session.h).
//
// Threading model (sized for "many connections, few cores"):
//
//   IO thread    — owns the listening socket, the epoll set, and ALL
//                  per-connection state (frame decoder, output buffer).
//                  No connection state is ever touched by two threads,
//                  so connections need no locks. Ping frames are
//                  answered inline; request frames become tasks.
//   worker pool  — N threads, each owning ONE pooled Session for its
//                  whole life (Sessions are single-threaded; the pool is
//                  the bound on concurrent statement execution). Workers
//                  pop tasks, execute, and post the encoded response
//                  frame to a completion queue; an eventfd wakes the IO
//                  thread to flush it.
//
// Ordering: one request in flight per connection. The IO thread stops
// decoding a connection's frames while its request is executing, so a
// pipelining client still gets responses in request order, and a client
// that streams requests faster than they execute is throttled by TCP
// (its readable events are parked once the input buffer fills).
//
// Backpressure (admission control) — the server sheds load instead of
// queueing without bound:
//   * task-queue depth > max_pending_requests  → retryable error frame
//   * group-commit backlog (enqueued - durable) > max_commit_backlog,
//     for durable statements only               → retryable error frame
// Both are counted in ServerStats::admission_rejections; the client is
// expected to back off and resend (client.h does).
//
// Conflict policy: pooled Sessions run WriteRetryPolicy{1, false}, so an
// optimistic validation loss surfaces kConflict to the *server* loop,
// which retries up to conflict_retry_budget times. An exhausted budget
// becomes a retryable wire error — backpressure to the client — instead
// of the embedded default of convoying every loser on the writer lock.
//
// A protocol violation (oversized length prefix, unknown frame type,
// garbage bytes) gets a best-effort error frame and a close; a client
// that stops reading until its output buffer exceeds
// max_output_buffer_bytes is closed as a slow reader. Neither path can
// leak a pooled session: sessions belong to workers, never to
// connections.
#ifndef TCHIMERA_SERVER_SERVER_H_
#define TCHIMERA_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace tchimera {

class Engine;

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the real one
  int listen_backlog = 1024;

  // Worker pool size == number of pooled Sessions == max concurrent
  // statement executions. Small on purpose: throughput comes from group
  // commit, not from thousands of threads convoying on the writer lock.
  int worker_threads = 4;

  // Admission control.
  size_t max_pending_requests = 256;
  uint64_t max_commit_backlog = 1024;
  // Probe for the group-commit backlog (enqueued - durable). Unset =
  // no durability-based admission (in-memory serving).
  std::function<uint64_t()> commit_backlog;

  // Conflict-retry budget per request (total optimistic attempts).
  int conflict_retry_budget = 5;

  // Wire limits.
  size_t max_frame_bytes = 1 << 20;          // 1 MiB statement cap
  size_t max_output_buffer_bytes = 4 << 20;  // slow-reader close threshold
};

// All counters are cumulative since Start(); readable at any time.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> results{0};
  std::atomic<uint64_t> error_frames{0};
  // Retryable rejections from admission control (both limits).
  std::atomic<uint64_t> admission_rejections{0};
  // kConflict losses retried inside the server's budget...
  std::atomic<uint64_t> conflict_retries{0};
  // ...and requests whose budget ran out (surfaced as retryable errors).
  std::atomic<uint64_t> conflict_budget_exhausted{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> slow_reader_closes{0};
};

class Server {
 public:
  // Serves `engine`, which must outlive the server. The engine's commit
  // sink / recovery wiring is the caller's job (tools/tchimera_serve.cpp
  // is the canonical assembly).
  Server(Engine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the IO thread + worker pool.
  Status Start();
  // Stops accepting, closes every connection, drains the workers, joins
  // all threads. Idempotent.
  void Stop();

  // The bound port (after Start; resolves port 0).
  uint16_t port() const { return port_; }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServerStats stats_;
  uint16_t port_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_SERVER_SERVER_H_
