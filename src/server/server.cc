#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "query/session.h"
#include "server/net.h"
#include "server/wire.h"

namespace tchimera {
namespace {

// epoll data.u64 sentinels for the two non-connection fds.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kEventId = 1;
constexpr uint64_t kFirstConnId = 2;

struct Conn {
  uint64_t id = 0;
  int fd = -1;
  FrameReader reader;
  std::string out;      // encoded frames not yet fully written
  size_t out_off = 0;   // bytes of `out` already written
  bool in_flight = false;        // a request is executing on a worker
  bool close_after_flush = false;
  uint32_t armed = 0;   // epoll events currently registered

  explicit Conn(size_t max_frame) : reader(max_frame) {}
};

struct Task {
  uint64_t conn_id = 0;
  std::string statement;
  uint8_t flags = 0;
};

struct Completion {
  uint64_t conn_id = 0;
  std::string frame;
};

}  // namespace

struct Server::Impl {
  Engine* engine;
  ServerOptions opts;
  ServerStats* stats;

  int listen_fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;

  std::thread io;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  bool started = false;

  std::mutex task_mu;
  std::condition_variable task_cv;
  std::deque<Task> tasks;

  std::mutex comp_mu;
  std::deque<Completion> completions;

  // IO-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  uint64_t next_id = kFirstConnId;

  Impl(Engine* e, ServerOptions o, ServerStats* s)
      : engine(e), opts(std::move(o)), stats(s) {}

  // --- IO thread --------------------------------------------------------

  void WakeIo() {
    uint64_t one = 1;
    ssize_t n;
    do {
      n = ::write(event_fd, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  }

  void Arm(Conn* c, uint32_t events) {
    if (c->armed == events) return;
    struct epoll_event ev {};
    ev.events = events;
    ev.data.u64 = c->id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
      c->armed = events;
    }
  }

  // Recomputes the connection's epoll interest: reads are parked while a
  // request executes AND the next frame is already buffered (TCP
  // backpressure throttles a client that outruns execution); writes are
  // armed only while output is pending.
  void UpdateEvents(Conn* c) {
    uint32_t events = EPOLLRDHUP;
    bool parked = c->in_flight &&
                  c->reader.buffered() >= opts.max_frame_bytes + 5;
    if (!c->close_after_flush && !parked) events |= EPOLLIN;
    if (c->out_off < c->out.size()) events |= EPOLLOUT;
    Arm(c, events);
  }

  void CloseConn(Conn* c) {
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    CloseFd(c->fd);
    stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
    conns.erase(c->id);  // destroys *c
  }

  // Writes as much pending output as the socket takes. Returns false if
  // the connection was closed (error, or flush-then-close completed).
  bool FlushOutput(Conn* c) {
    while (c->out_off < c->out.size()) {
      ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                         c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(c);
        return false;
      }
      c->out_off += static_cast<size_t>(n);
    }
    if (c->out_off == c->out.size()) {
      c->out.clear();
      c->out_off = 0;
      if (c->close_after_flush) {
        CloseConn(c);
        return false;
      }
    }
    return true;
  }

  // Queues an encoded frame on the connection, enforcing the slow-reader
  // bound. Returns false if the connection was closed.
  bool QueueOutput(Conn* c, std::string_view frame) {
    c->out.append(frame);
    if (c->out.size() - c->out_off > opts.max_output_buffer_bytes) {
      stats->slow_reader_closes.fetch_add(1, std::memory_order_relaxed);
      CloseConn(c);
      return false;
    }
    return FlushOutput(c);
  }

  // Best-effort error frame, then close once it drains.
  bool SendErrorAndClose(Conn* c, StatusCode code, bool retryable,
                         std::string_view message) {
    std::string frame;
    AppendError(&frame, code, retryable, message);
    stats->error_frames.fetch_add(1, std::memory_order_relaxed);
    c->close_after_flush = true;
    if (!QueueOutput(c, frame)) return false;
    UpdateEvents(c);
    return true;
  }

  // One request frame: admission control, then hand to the worker pool.
  // Returns false if the connection was closed.
  bool HandleRequest(Conn* c, std::string&& payload) {
    stats->requests.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty()) {
      stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      return SendErrorAndClose(c, StatusCode::kInvalidArgument, false,
                               "request frame missing flags byte");
    }
    uint8_t flags = static_cast<unsigned char>(payload[0]);
    std::string statement = payload.substr(1);

    // Admission: a full task queue rejects everything...
    size_t depth;
    {
      std::lock_guard<std::mutex> lk(task_mu);
      depth = tasks.size();
    }
    if (depth >= opts.max_pending_requests) {
      stats->admission_rejections.fetch_add(1, std::memory_order_relaxed);
      std::string frame;
      AppendError(&frame, StatusCode::kUnavailable, true,
                  "server overloaded: request queue full, retry");
      stats->error_frames.fetch_add(1, std::memory_order_relaxed);
      if (!QueueOutput(c, frame)) return false;
      return true;
    }
    // ...and a saturated group-commit pipeline rejects statements that
    // would join it (reads still flow: they never touch the sink).
    if (opts.commit_backlog && IsDurableStatement(statement) &&
        opts.commit_backlog() > opts.max_commit_backlog) {
      stats->admission_rejections.fetch_add(1, std::memory_order_relaxed);
      std::string frame;
      AppendError(&frame, StatusCode::kUnavailable, true,
                  "server overloaded: commit backlog full, retry");
      stats->error_frames.fetch_add(1, std::memory_order_relaxed);
      if (!QueueOutput(c, frame)) return false;
      return true;
    }

    c->in_flight = true;
    {
      std::lock_guard<std::mutex> lk(task_mu);
      tasks.push_back(Task{c->id, std::move(statement), flags});
    }
    task_cv.notify_one();
    return true;
  }

  // Decodes as many complete frames as ordering allows (stops while a
  // request is in flight). Returns false if the connection was closed.
  bool ParseFrames(Conn* c) {
    Frame frame;
    while (!c->in_flight && !c->close_after_flush) {
      FrameReader::Outcome outcome = c->reader.Next(&frame);
      if (outcome == FrameReader::Outcome::kNeedMore) break;
      if (outcome == FrameReader::Outcome::kBad) {
        stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return SendErrorAndClose(c, StatusCode::kInvalidArgument, false,
                                 c->reader.error().message());
      }
      switch (frame.type) {
        case FrameType::kPing: {
          std::string pong;
          AppendFrame(&pong, FrameType::kPong, "");
          if (!QueueOutput(c, pong)) return false;
          break;
        }
        case FrameType::kRequest:
          if (!HandleRequest(c, std::move(frame.payload))) return false;
          break;
        default:
          // Server-to-client types arriving at the server are as dead a
          // stream as an unknown byte.
          stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
          return SendErrorAndClose(
              c, StatusCode::kInvalidArgument, false,
              "unexpected frame type from client");
      }
    }
    return true;
  }

  void HandleReadable(Conn* c) {
    char buf[16384];
    while (true) {
      if (c->in_flight &&
          c->reader.buffered() >= opts.max_frame_bytes + 5) {
        break;  // parked: UpdateEvents drops EPOLLIN until completion
      }
      ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(c);
        return;
      }
      if (n == 0) {  // orderly EOF
        CloseConn(c);
        return;
      }
      c->reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (!ParseFrames(c)) return;
    }
    UpdateEvents(c);
  }

  void AcceptAll() {
    while (true) {
      int fd = ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: drained. Anything else (EMFILE, ECONNABORTED): skip
        // this round rather than take the accept loop down.
        return;
      }
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>(opts.max_frame_bytes);
      conn->id = next_id++;
      conn->fd = fd;
      Conn* c = conn.get();
      struct epoll_event ev {};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = c->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        CloseFd(fd);
        continue;
      }
      c->armed = ev.events;
      conns.emplace(c->id, std::move(conn));
      stats->connections_accepted.fetch_add(1, std::memory_order_relaxed);
      if (!QueueOutput(c, EncodeHello())) continue;
      UpdateEvents(c);
    }
  }

  void DrainCompletions() {
    std::deque<Completion> batch;
    {
      std::lock_guard<std::mutex> lk(comp_mu);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      auto it = conns.find(done.conn_id);
      if (it == conns.end()) continue;  // client left mid-request: drop
      Conn* c = it->second.get();
      c->in_flight = false;
      if (!QueueOutput(c, done.frame)) continue;
      // The client may have pipelined the next request while this one
      // executed; resume decoding the buffered bytes.
      if (!ParseFrames(c)) continue;
      UpdateEvents(c);
    }
  }

  void IoLoop() {
    constexpr int kMaxEvents = 256;
    struct epoll_event events[kMaxEvents];
    while (!stop.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(epoll_fd, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        uint64_t id = events[i].data.u64;
        if (id == kListenId) {
          AcceptAll();
          continue;
        }
        if (id == kEventId) {
          uint64_t drain;
          while (::read(event_fd, &drain, sizeof(drain)) > 0) {
          }
          DrainCompletions();
          continue;
        }
        auto it = conns.find(id);
        if (it == conns.end()) continue;  // closed earlier this round
        Conn* c = it->second.get();
        uint32_t ev = events[i].events;
        if (ev & (EPOLLERR | EPOLLHUP)) {
          CloseConn(c);
          continue;
        }
        if (ev & EPOLLOUT) {
          if (!FlushOutput(c)) continue;
          UpdateEvents(c);
        }
        if (ev & (EPOLLIN | EPOLLRDHUP)) {
          HandleReadable(c);
        }
      }
    }
    // Teardown on the owning thread: every connection state lives here.
    for (auto& [id, conn] : conns) {
      CloseFd(conn->fd);
      stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
    }
    conns.clear();
  }

  // --- worker pool ------------------------------------------------------

  void PostCompletion(uint64_t conn_id, std::string frame) {
    {
      std::lock_guard<std::mutex> lk(comp_mu);
      completions.push_back(Completion{conn_id, std::move(frame)});
    }
    WakeIo();
  }

  void WorkerLoop() {
    Session session = engine->OpenSession();
    // One optimistic attempt per Execute, never the exclusive fallback:
    // the *server* owns the retry budget, and a hopeless statement should
    // become client backpressure, not a writer-lock convoy.
    session.set_write_retry_policy(WriteRetryPolicy{1, false});
    const int budget = opts.conflict_retry_budget < 1
                           ? 1
                           : opts.conflict_retry_budget;
    while (true) {
      Task task;
      {
        std::unique_lock<std::mutex> lk(task_mu);
        task_cv.wait(lk, [this] {
          return stop.load(std::memory_order_acquire) || !tasks.empty();
        });
        if (tasks.empty()) return;  // stopping and drained
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      session.set_read_staleness((task.flags & kFlagEventualRead) != 0
                                     ? ReadStaleness::kEventual
                                     : ReadStaleness::kReadYourWrites);
      Result<std::string> result =
          Status::Unavailable("request not executed");
      bool exhausted = false;
      for (int attempt = 1;; ++attempt) {
        result = session.Execute(task.statement);
        if (result.ok() ||
            result.status().code() != StatusCode::kConflict) {
          break;
        }
        if (attempt >= budget) {
          exhausted = true;
          stats->conflict_budget_exhausted.fetch_add(
              1, std::memory_order_relaxed);
          break;
        }
        stats->conflict_retries.fetch_add(1, std::memory_order_relaxed);
      }
      std::string frame;
      if (result.ok()) {
        AppendFrame(&frame, FrameType::kResult, result.value());
        stats->results.fetch_add(1, std::memory_order_relaxed);
      } else {
        const Status& s = result.status();
        bool retryable = IsRetryableStatus(s.code());
        std::string message = s.message();
        if (exhausted) {
          message += " (conflict-retry budget of " +
                     std::to_string(budget) + " attempts exhausted)";
        }
        AppendError(&frame, s.code(), retryable, message);
        stats->error_frames.fetch_add(1, std::memory_order_relaxed);
      }
      PostCompletion(task.conn_id, std::move(frame));
    }
  }
};

Server::Server(Engine* engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options), &stats_)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (impl_->started) return Status::InvalidArgument("server already started");
  IgnoreSigpipe();
  TCH_ASSIGN_OR_RETURN(impl_->listen_fd,
                       ListenTcp(impl_->opts.host, impl_->opts.port,
                                 impl_->opts.listen_backlog));
  Result<uint16_t> port = LocalPort(impl_->listen_fd);
  if (!port.ok()) {
    CloseFd(impl_->listen_fd);
    impl_->listen_fd = -1;
    return port.status();
  }
  port_ = port.value();
  impl_->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  impl_->event_fd =
      ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (impl_->epoll_fd < 0 || impl_->event_fd < 0) {
    Status s = Status::IoError(std::string("epoll/eventfd setup: ") +
                               std::strerror(errno));
    CloseFd(impl_->listen_fd);
    CloseFd(impl_->epoll_fd);
    CloseFd(impl_->event_fd);
    impl_->listen_fd = impl_->epoll_fd = impl_->event_fd = -1;
    return s;
  }
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listen_fd, &ev) !=
      0) {
    return Status::IoError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kEventId;
  if (::epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->event_fd, &ev) !=
      0) {
    return Status::IoError(std::string("epoll_ctl(eventfd): ") +
                           std::strerror(errno));
  }
  int n_workers = impl_->opts.worker_threads < 1 ? 1
                                                 : impl_->opts.worker_threads;
  impl_->workers.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
  impl_->io = std::thread([this] { impl_->IoLoop(); });
  impl_->started = true;
  return Status::OK();
}

void Server::Stop() {
  if (!impl_ || !impl_->started) return;
  impl_->stop.store(true, std::memory_order_release);
  impl_->WakeIo();
  {
    // Wake the workers; leftover tasks are dropped (their connections are
    // about to close anyway).
    std::lock_guard<std::mutex> lk(impl_->task_mu);
    impl_->tasks.clear();
  }
  impl_->task_cv.notify_all();
  if (impl_->io.joinable()) impl_->io.join();
  for (std::thread& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  impl_->workers.clear();
  CloseFd(impl_->listen_fd);
  CloseFd(impl_->epoll_fd);
  CloseFd(impl_->event_fd);
  impl_->listen_fd = impl_->epoll_fd = impl_->event_fd = -1;
  impl_->started = false;
}

}  // namespace tchimera
