#include "server/client.h"

#include <poll.h>
#include <unistd.h>

#include <thread>

#include "server/net.h"

namespace tchimera {
namespace {

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(options) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  IgnoreSigpipe();
  TCH_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port, options.timeout_ms));
  std::unique_ptr<Client> client(new Client(fd, options));
  Frame hello;
  TCH_RETURN_IF_ERROR(client->ReadFrame(&hello));
  if (hello.type != FrameType::kHello) {
    return Status::IoError("server did not open with a hello frame");
  }
  TCH_RETURN_IF_ERROR(DecodeHello(hello.payload));
  return client;
}

Status Client::SendFrame(FrameType type, std::string_view payload) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  std::string frame;
  AppendFrame(&frame, type, payload);
  Status s = SendAll(fd_, frame, options_.timeout_ms);
  if (!s.ok()) Close();
  return s;
}

Status Client::ReadFrame(Frame* frame) {
  if (fd_ < 0) return Status::Unavailable("client is closed");
  char header[5];
  Status s = RecvExactly(fd_, header, sizeof(header), options_.timeout_ms);
  if (!s.ok()) {
    Close();
    return s;
  }
  uint32_t length = ReadU32(header);
  uint8_t type = static_cast<unsigned char>(header[4]);
  if (length > options_.max_frame_bytes) {
    Close();
    return Status::IoError("reply frame of " + std::to_string(length) +
                           " bytes exceeds the client's " +
                           std::to_string(options_.max_frame_bytes) +
                           "-byte limit");
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.resize(length);
  if (length > 0) {
    s = RecvExactly(fd_, frame->payload.data(), length, options_.timeout_ms);
    if (!s.ok()) {
      Close();
      return s;
    }
  }
  return Status::OK();
}

Result<std::string> Client::Execute(std::string_view statement) {
  last_error_retryable_ = false;
  std::string payload;
  payload.push_back(static_cast<char>(
      options_.eventual_reads ? kFlagEventualRead : 0));
  payload.append(statement);
  TCH_RETURN_IF_ERROR(SendFrame(FrameType::kRequest, payload));
  Frame reply;
  TCH_RETURN_IF_ERROR(ReadFrame(&reply));
  switch (reply.type) {
    case FrameType::kResult:
      return std::move(reply.payload);
    case FrameType::kError: {
      bool retryable = false;
      Status s = DecodeError(reply.payload, &retryable);
      last_error_retryable_ = retryable;
      return s;
    }
    default:
      Close();
      return Status::IoError("unexpected reply frame type");
  }
}

Result<std::string> Client::ExecuteRetrying(std::string_view statement) {
  int backoff_ms = options_.initial_backoff_ms < 1
                       ? 1
                       : options_.initial_backoff_ms;
  Result<std::string> result = Execute(statement);
  for (int attempt = 0;
       !result.ok() && last_error_retryable_ && attempt < options_.max_retries;
       ++attempt) {
    ++retries_absorbed_;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
    if (backoff_ms > options_.max_backoff_ms) {
      backoff_ms = options_.max_backoff_ms;
    }
    result = Execute(statement);
  }
  return result;
}

Status Client::Ping() {
  TCH_RETURN_IF_ERROR(SendFrame(FrameType::kPing, ""));
  Frame reply;
  TCH_RETURN_IF_ERROR(ReadFrame(&reply));
  if (reply.type != FrameType::kPong) {
    Close();
    return Status::IoError("unexpected reply to ping");
  }
  return Status::OK();
}

}  // namespace tchimera
