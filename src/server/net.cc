#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace tchimera {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Milliseconds left of a deadline started `elapsed` ago; -1 = forever.
int RemainingMs(int timeout_ms, std::chrono::steady_clock::time_point start) {
  if (timeout_ms < 0) return -1;
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  long long left = timeout_ms - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

// poll() for `events`, restarted across EINTR with the remaining budget.
Status PollFor(int fd, short events, int timeout_ms,
               std::chrono::steady_clock::time_point start) {
  while (true) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    int left = RemainingMs(timeout_ms, start);
    if (timeout_ms >= 0 && left == 0) {
      return Status::Unavailable("socket operation timed out");
    }
    int rc = ::poll(&pfd, 1, left);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc == 0) return Status::Unavailable("socket operation timed out");
    return Status::OK();
  }
}

}  // namespace

void IgnoreSigpipe() {
  // sigaction rather than signal() for defined semantics everywhere; the
  // disposition is process-wide and inherited by every thread we spawn.
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  (void)::sigaction(SIGPIPE, &sa, nullptr);
}

uint64_t TryRaiseNofileLimit(uint64_t want) {
  struct rlimit rl {};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  if (rl.rlim_cur >= want) return rl.rlim_cur;
  rlim_t target = rl.rlim_max == RLIM_INFINITY
                      ? static_cast<rlim_t>(want)
                      : std::min<rlim_t>(static_cast<rlim_t>(want),
                                         rl.rlim_max);
  rl.rlim_cur = target;
  (void)::setrlimit(RLIMIT_NOFILE, &rl);
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  return rl.rlim_cur;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return ErrnoStatus("fcntl(F_SETFL)");
  return Status::OK();
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = ErrnoStatus("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = ErrnoStatus("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  struct sockaddr_in addr {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  auto start = std::chrono::steady_clock::now();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad connect address: " + host);
  }
  // Connect nonblocking so the timeout is enforceable, then flip back.
  Status s = SetNonBlocking(fd, true);
  if (!s.ok()) {
    CloseFd(fd);
    return s;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS && errno != EALREADY &&
      errno != EISCONN) {
    Status err = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return err;
  }
  if (rc != 0) {
    s = PollFor(fd, POLLOUT, timeout_ms, start);
    if (s.ok()) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
        s = ErrnoStatus("getsockopt(SO_ERROR)");
      } else if (soerr != 0) {
        s = Status::IoError("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(soerr));
      }
    }
    if (!s.ok()) {
      CloseFd(fd);
      return s;
    }
  }
  s = SetNonBlocking(fd, false);
  if (!s.ok()) {
    CloseFd(fd);
    return s;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, std::string_view data, int timeout_ms) {
  auto start = std::chrono::steady_clock::now();
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply yields EPIPE, not a
    // process-wide SIGPIPE. Short sends loop; EINTR restarts.
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TCH_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms, start));
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection mid-send");
      }
      return ErrnoStatus("send");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvExactly(int fd, void* buf, size_t n, int timeout_ms) {
  auto start = std::chrono::steady_clock::now();
  char* p = static_cast<char*>(buf);
  size_t left = n;
  while (left > 0) {
    ssize_t got = ::recv(fd, p, left, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TCH_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout_ms, start));
        continue;
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("peer reset the connection");
      }
      return ErrnoStatus("recv");
    }
    if (got == 0) {
      return Status::Unavailable(
          "peer closed the connection mid-frame (" + std::to_string(n - left) +
          " of " + std::to_string(n) + " bytes read)");
    }
    p += got;
    left -= static_cast<size_t>(got);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // Linux closes the fd even on EINTR; retrying could close a recycled
  // descriptor owned by another thread.
  (void)::close(fd);
}

}  // namespace tchimera
