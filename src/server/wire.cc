#include "server/wire.h"

namespace tchimera {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kPong);
}

}  // namespace

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

std::string EncodeHello() {
  std::string payload;
  AppendU32(&payload, kWireProtocolVersion);
  std::string out;
  AppendFrame(&out, FrameType::kHello, payload);
  return out;
}

std::string EncodeRequest(std::string_view statement, uint8_t flags) {
  std::string payload;
  payload.push_back(static_cast<char>(flags));
  payload.append(statement);
  std::string out;
  AppendFrame(&out, FrameType::kRequest, payload);
  return out;
}

void AppendError(std::string* out, StatusCode code, bool retryable,
                 std::string_view message) {
  std::string payload;
  AppendU16(&payload, static_cast<uint16_t>(code));
  payload.push_back(retryable ? '\x01' : '\x00');
  payload.append(message);
  AppendFrame(out, FrameType::kError, payload);
}

Status DecodeError(std::string_view payload, bool* retryable) {
  if (payload.size() < 3) {
    return Status::IoError("malformed error frame (short payload)");
  }
  StatusCode code = static_cast<StatusCode>(ReadU16(payload.data()));
  if (retryable != nullptr) *retryable = payload[2] != '\x00';
  return Status(code, std::string(payload.substr(3)));
}

Status DecodeHello(std::string_view payload) {
  if (payload.size() < 4) {
    return Status::IoError("malformed hello frame (short payload)");
  }
  uint32_t version = ReadU32(payload.data());
  if (version != kWireProtocolVersion) {
    return Status::InvalidArgument("server speaks protocol version " +
                                   std::to_string(version) +
                                   ", this client speaks " +
                                   std::to_string(kWireProtocolVersion));
  }
  return Status::OK();
}

FrameReader::Outcome FrameReader::Next(Frame* frame) {
  if (!error_.ok()) return Outcome::kBad;
  // Drop already-consumed bytes lazily, once they dominate the buffer, so
  // a stream of small frames does not memmove on every call.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  size_t avail = buffer_.size() - consumed_;
  if (avail < 5) return Outcome::kNeedMore;
  const char* p = buffer_.data() + consumed_;
  uint32_t length = ReadU32(p);
  uint8_t type = static_cast<unsigned char>(p[4]);
  // Validate the header *before* waiting for the payload: an oversized
  // length prefix or unknown type is detectable — and must be rejected —
  // from the first five bytes, or a hostile peer could park the
  // connection claiming a 4GiB frame.
  if (length > max_frame_bytes_) {
    error_ = Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte limit");
    return Outcome::kBad;
  }
  if (!KnownType(type)) {
    error_ = Status::InvalidArgument("unknown frame type " +
                                     std::to_string(static_cast<int>(type)));
    return Outcome::kBad;
  }
  if (avail < 5 + static_cast<size_t>(length)) return Outcome::kNeedMore;
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(p + 5, length);
  consumed_ += 5 + static_cast<size_t>(length);
  return Outcome::kFrame;
}

bool IsRetryableStatus(StatusCode code) {
  return code == StatusCode::kConflict || code == StatusCode::kUnavailable;
}

}  // namespace tchimera
