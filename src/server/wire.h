// The tchimera_serve wire protocol: length-prefixed binary frames.
//
//   frame  := length:u32le  type:u8  payload[length]
//
// `length` counts payload bytes only (not the 5-byte header) and is
// bounded by the receiver (ServerOptions::max_frame_bytes on the server
// side): an oversized prefix is a protocol error, answered with an error
// frame and a close — never an allocation the sender chose the size of.
//
// Frame types:
//
//   kHello   (server→client, once per connection)
//            payload = protocol_version:u32le
//   kRequest (client→server)
//            payload = flags:u8  statement-bytes (UTF-8 TQL)
//            flags bit 0 (kFlagEventualRead): the client tolerates
//            bounded staleness for this read — the server may route it
//            to a replica (Session::set_read_staleness(kEventual)).
//   kResult  (server→client) payload = result text of a successful
//            statement (the same text Session::Execute returns —
//            values/results rendered by the engine's printer, which is
//            the serializer the rest of the system shares).
//   kError   (server→client)
//            payload = code:u16le  retryable:u8  message-bytes
//            `code` is the StatusCode; `retryable` is 1 for errors the
//            client should back off and resend (admission-control
//            rejections, an exhausted conflict-retry budget), 0 for
//            errors where resending the same request cannot help.
//   kPing / kPong: liveness, empty payload.
//
// Requests on one connection are answered in order, one frame per
// request. The protocol is deliberately dumb: framing + status codes,
// with all statement semantics in the TQL text — the serializer and
// printers already define the value syntax, so the wire adds nothing to
// re-version when the model grows.
#ifndef TCHIMERA_SERVER_WIRE_H_
#define TCHIMERA_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tchimera {

inline constexpr uint32_t kWireProtocolVersion = 1;

enum class FrameType : uint8_t {
  kHello = 1,
  kRequest = 2,
  kResult = 3,
  kError = 4,
  kPing = 5,
  kPong = 6,
};

// Request flags (payload byte 0 of kRequest).
inline constexpr uint8_t kFlagEventualRead = 0x01;

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

// Appends the encoded frame to `out` (append, so a connection's output
// buffer accumulates frames without copies).
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

// Convenience encoders.
std::string EncodeHello();
std::string EncodeRequest(std::string_view statement, uint8_t flags);
void AppendError(std::string* out, StatusCode code, bool retryable,
                 std::string_view message);

// Decodes a kError payload back into (Status, retryable).
Status DecodeError(std::string_view payload, bool* retryable);
// Decodes a kHello payload; fails on a version this client cannot speak.
Status DecodeHello(std::string_view payload);

// Incremental frame decoder for one connection. Feed bytes as they
// arrive; Next() yields complete frames until the buffer runs dry or the
// stream turns out to be garbage. A FrameReader never allocates more
// than `max_frame_bytes` + one header for a single frame, whatever the
// peer claims in the length prefix.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Outcome {
    kFrame,     // *frame holds the next complete frame
    kNeedMore,  // the buffer holds only a frame prefix — feed more bytes
    kBad,       // protocol violation; error() says what, the stream is dead
  };

  void Feed(std::string_view bytes) { buffer_.append(bytes); }
  Outcome Next(Frame* frame);
  const Status& error() const { return error_; }
  // Bytes buffered but not yet consumed by Next (for input caps).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
};

// True for status codes the client should retry after backoff: the
// request was fine, the server's moment was not.
bool IsRetryableStatus(StatusCode code);

}  // namespace tchimera

#endif  // TCHIMERA_SERVER_WIRE_H_
