// Client library for the tchimera_serve wire protocol (wire.h).
//
// A Client is one connection: blocking, single-threaded, one request in
// flight (matching the server's per-connection ordering guarantee). Open
// one Client per thread; they are cheap.
//
// Error handling mirrors the server's backpressure contract: Execute()
// returns the server's Status verbatim, and last_error_retryable() says
// whether the server marked it retryable (admission rejection, exhausted
// conflict budget). ExecuteRetrying() packages the polite response —
// exponential backoff and resend — so callers that just want the
// statement to land eventually need one call.
#ifndef TCHIMERA_SERVER_CLIENT_H_
#define TCHIMERA_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "server/wire.h"

namespace tchimera {

struct ClientOptions {
  // Per-socket-operation timeout; also bounds connect. < 0 = no timeout.
  int timeout_ms = 30000;
  // Largest reply frame this client will accept.
  size_t max_frame_bytes = 16 << 20;
  // Set on every request: the client tolerates bounded staleness, so the
  // server may route reads to a replica.
  bool eventual_reads = false;
  // ExecuteRetrying: attempts and backoff schedule (doubling from
  // initial, capped). Deterministic — clients that need herd-avoiding
  // jitter layer it on top.
  int max_retries = 8;
  int initial_backoff_ms = 2;
  int max_backoff_ms = 200;
};

class Client {
 public:
  // Connects and validates the server's hello frame.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One statement, one reply. OK = the kResult text; error = the
  // server's Status (or a transport error, which is never retryable —
  // the connection is dead, reconnect instead).
  Result<std::string> Execute(std::string_view statement);

  // Execute with backoff-and-resend on retryable server errors.
  // Transport errors and non-retryable statuses surface immediately.
  Result<std::string> ExecuteRetrying(std::string_view statement);

  // Liveness round-trip.
  Status Ping();

  // Whether the last Execute error carried the server's retryable bit.
  bool last_error_retryable() const { return last_error_retryable_; }
  // Retryable errors absorbed by ExecuteRetrying since construction.
  uint64_t retries_absorbed() const { return retries_absorbed_; }

  // Closes the socket; every later call fails. Idempotent.
  void Close();

 private:
  Client(int fd, ClientOptions options);

  Status SendFrame(FrameType type, std::string_view payload);
  Status ReadFrame(Frame* frame);

  int fd_ = -1;
  ClientOptions options_;
  bool last_error_retryable_ = false;
  uint64_t retries_absorbed_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_SERVER_CLIENT_H_
