// Low-level socket plumbing shared by the server (server.h), the client
// library (client.h) and the CLIs.
//
// Everything here is written for a process that serves real connections:
// every call is EINTR-safe (a signal mid-read/-write/-connect restarts
// the operation instead of surfacing a phantom failure), partial
// transfers are looped to completion, and nothing ever raises SIGPIPE
// (sends use MSG_NOSIGNAL; IgnoreSigpipe() covers third-party code and
// the stdio paths). A client disconnecting mid-reply is an ordinary
// Status, never a process-killing signal.
#ifndef TCHIMERA_SERVER_NET_H_
#define TCHIMERA_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tchimera {

// Ignores SIGPIPE process-wide (idempotent). Every networked binary and
// CLI must call this first thing in main(): without it, a peer that
// closes its end mid-write kills the whole process — including a write
// that happens to race a perfectly healthy fdatasync elsewhere.
void IgnoreSigpipe();

// Raises RLIMIT_NOFILE's soft limit toward `want` (capped at the hard
// limit). Returns the resulting soft limit. Serving thousands of
// connections needs more than the conservative default on some systems.
uint64_t TryRaiseNofileLimit(uint64_t want);

// Sets or clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool nonblocking);

// A listening TCP socket on host:port (port 0 = ephemeral), nonblocking,
// SO_REUSEADDR, with `backlog` pending connections. Returns the fd.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog);

// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> LocalPort(int fd);

// Connects to host:port with a timeout; returns a *blocking* connected
// fd. EINTR during connect/poll is retried with the remaining time.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms);

// Writes all of `data` to a blocking socket. Loops over short writes,
// restarts on EINTR, uses MSG_NOSIGNAL (a closed peer is Status, not
// SIGPIPE). `timeout_ms` < 0 means no timeout.
Status SendAll(int fd, std::string_view data, int timeout_ms);

// Reads exactly `n` bytes into `buf` from a blocking socket, looping
// over short reads and EINTR. EOF before `n` bytes is an error
// (kUnavailable: the peer went away mid-frame).
Status RecvExactly(int fd, void* buf, size_t n, int timeout_ms);

// Closes `fd`, swallowing EINTR (Linux semantics: the fd is gone).
void CloseFd(int fd);

}  // namespace tchimera

#endif  // TCHIMERA_SERVER_NET_H_
