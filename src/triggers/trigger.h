// Temporal triggers — the Section 7 future-work item ("we plan to extend
// Chimera triggers ... with time; issues such as termination and
// confluence will need to be re-visited") made concrete at the TQL
// surface.
//
// An ECA rule:
//
//   trigger NAME on EVENT [of CLASS[.ATTR]] do <tql-statement>
//
//   EVENT := create | update | migrate | delete
//   CLASS filters by the subject's most specific class (subclasses
//         match: a trigger `of person` fires for employees too);
//   ATTR  further filters update events by the touched attribute;
//   the action is any TQL statement; `$self` inside it is replaced by the
//   subject's oid before execution.
//
// ActiveDatabase is the execution facade: statements go through it,
// matching triggers fire after a successful mutation, and trigger actions
// may recursively fire further triggers. Termination — the issue the
// paper flags — is handled by a cascade depth limit: exceeding it aborts
// the statement with FailedPrecondition and reports the trigger chain.
#ifndef TCHIMERA_TRIGGERS_TRIGGER_H_
#define TCHIMERA_TRIGGERS_TRIGGER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "constraints/constraint.h"
#include "core/db/database.h"
#include "query/interpreter.h"

namespace tchimera {

enum class TriggerEvent { kCreate, kUpdate, kMigrate, kDelete };

const char* TriggerEventName(TriggerEvent event);

struct Trigger {
  std::string name;
  TriggerEvent event = TriggerEvent::kUpdate;
  std::string class_filter;  // empty = any class
  std::string attr_filter;   // update events only; empty = any attribute
  std::string action;        // TQL with $self placeholder

  // Parses the textual form above.
  static Result<Trigger> Parse(std::string_view text);
  std::string ToString() const;
};

class ActiveDatabase {
 public:
  // Does not take ownership; `db` must outlive this facade.
  explicit ActiveDatabase(Database* db, size_t max_cascade_depth = 16)
      : db_(db), interp_(db), max_depth_(max_cascade_depth) {}

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }

  Status DefineTrigger(std::string_view text);
  Status DropTrigger(std::string_view name);
  std::vector<std::string> TriggerNames() const;

  // The attached temporal integrity constraints; `check` statements run
  // them after the model's own consistency check.
  ConstraintRegistry& constraints() { return constraints_; }
  const ConstraintRegistry& constraints() const { return constraints_; }

  // Opt-in static analysis for statements executed through this facade
  // (forwarded to the internal interpreter; see Interpreter::set_lint).
  void set_lint(DiagnosticEngine* diags) { interp_.set_lint(diags); }

  // Copies `other`'s trigger and constraint definitions into this
  // facade, replacing any it already had. Used to equip a per-transaction
  // facade (optimistic writers execute against a private database copy)
  // with the engine's registered definitions; both are cheap, copyable
  // value types.
  void CopyDefinitionsFrom(const ActiveDatabase& other) {
    triggers_ = other.triggers_;
    constraints_ = other.constraints_;
  }

  // The textual definition of every registered trigger, then every
  // constraint, each in the exact re-parseable form Execute accepts.
  // This is what a checkpoint persists (snapshot v3 DEFINE records, see
  // docs/PERSISTENCE.md) so definitions survive the journal being folded
  // into a snapshot.
  std::vector<std::string> DefinitionStatements() const;

  // Executes a statement; on a successful mutation, fires matching
  // triggers (and their cascades). Returns the statement's own output.
  //
  // Beyond plain TQL this facade also accepts the two Section 7
  // definition forms directly:
  //   trigger NAME on EVENT [of CLASS[.ATTR]] do <stmt>
  //   constraint NAME on CLASS (always|sometime) <expr>
  //   constraint NAME on CLASS (nondecreasing|immutable) ATTR
  // and extends `check` to also evaluate every registered constraint.
  Result<std::string> Execute(std::string_view statement);

  // Trigger firings since construction (diagnostics / benchmarks).
  size_t fired_count() const { return fired_; }

 private:
  struct Event {
    TriggerEvent kind;
    Oid subject;
    std::string attr;  // update events
  };

  // True if `trigger` matches `event` under the current schema.
  bool Matches(const Trigger& trigger, const Event& event) const;
  // Runs all matching triggers for `event`; `chain` carries the firing
  // path for the termination diagnostic.
  Status Fire(const Event& event, std::vector<std::string>* chain);
  Result<std::string> ExecuteInternal(std::string_view statement,
                                      std::vector<std::string>* chain);

  Database* db_;
  Interpreter interp_;
  size_t max_depth_;
  std::vector<Trigger> triggers_;
  ConstraintRegistry constraints_;
  size_t fired_ = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_TRIGGERS_TRIGGER_H_
