#include "triggers/trigger.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "query/parser.h"

namespace tchimera {

const char* TriggerEventName(TriggerEvent event) {
  switch (event) {
    case TriggerEvent::kCreate:
      return "create";
    case TriggerEvent::kUpdate:
      return "update";
    case TriggerEvent::kMigrate:
      return "migrate";
    case TriggerEvent::kDelete:
      return "delete";
  }
  return "?";
}

Result<Trigger> Trigger::Parse(std::string_view text) {
  std::string_view rest = StripWhitespace(text);
  auto take_word = [&rest]() -> std::string {
    rest = StripWhitespace(rest);
    size_t end = 0;
    while (end < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    std::string word(rest.substr(0, end));
    rest = rest.substr(end);
    return word;
  };
  if (take_word() != "trigger") {
    return Status::InvalidArgument(
        "expected 'trigger NAME on EVENT [of CLASS[.ATTR]] do <stmt>'");
  }
  Trigger t;
  t.name = take_word();
  if (!IsIdentifier(t.name)) {
    return Status::InvalidArgument("bad trigger name '" + t.name + "'");
  }
  if (take_word() != "on") {
    return Status::InvalidArgument("expected 'on' after the trigger name");
  }
  std::string event = take_word();
  if (event == "create") {
    t.event = TriggerEvent::kCreate;
  } else if (event == "update") {
    t.event = TriggerEvent::kUpdate;
  } else if (event == "migrate") {
    t.event = TriggerEvent::kMigrate;
  } else if (event == "delete") {
    t.event = TriggerEvent::kDelete;
  } else {
    return Status::InvalidArgument(
        "unknown trigger event '" + event +
        "' (expected create | update | migrate | delete)");
  }
  std::string word = take_word();
  if (word == "of") {
    std::string target = take_word();
    size_t dot = target.find('.');
    if (dot == std::string::npos) {
      t.class_filter = target;
    } else {
      t.class_filter = target.substr(0, dot);
      t.attr_filter = target.substr(dot + 1);
      if (t.event != TriggerEvent::kUpdate) {
        return Status::InvalidArgument(
            "attribute filters only apply to update triggers");
      }
    }
    if (!IsIdentifier(t.class_filter) ||
        (!t.attr_filter.empty() && !IsIdentifier(t.attr_filter))) {
      return Status::InvalidArgument("bad 'of' target '" + target + "'");
    }
    word = take_word();
  }
  if (word != "do") {
    return Status::InvalidArgument("expected 'do' before the action");
  }
  t.action = std::string(StripWhitespace(rest));
  if (t.action.empty()) {
    return Status::InvalidArgument("trigger '" + t.name +
                                   "' has an empty action");
  }
  return t;
}

std::string Trigger::ToString() const {
  std::string out = "trigger " + name + " on " + TriggerEventName(event);
  if (!class_filter.empty()) {
    out += " of " + class_filter;
    if (!attr_filter.empty()) out += "." + attr_filter;
  }
  out += " do " + action;
  return out;
}

Status ActiveDatabase::DefineTrigger(std::string_view text) {
  TCH_ASSIGN_OR_RETURN(Trigger t, Trigger::Parse(text));
  for (const Trigger& existing : triggers_) {
    if (existing.name == t.name) {
      return Status::AlreadyExists("trigger '" + t.name +
                                   "' already defined");
    }
  }
  // The action must at least parse now, not at firing time.
  TCH_RETURN_IF_ERROR(ParseStatement(
                          [&t] {
                            std::string probe = t.action;
                            size_t pos;
                            while ((pos = probe.find("$self")) !=
                                   std::string::npos) {
                              probe.replace(pos, 5, "i1");
                            }
                            return probe;
                          }())
                          .status());
  triggers_.push_back(std::move(t));
  return Status::OK();
}

Status ActiveDatabase::DropTrigger(std::string_view name) {
  for (auto it = triggers_.begin(); it != triggers_.end(); ++it) {
    if (it->name == name) {
      triggers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no trigger named '" + std::string(name) + "'");
}

std::vector<std::string> ActiveDatabase::TriggerNames() const {
  std::vector<std::string> out;
  out.reserve(triggers_.size());
  for (const Trigger& t : triggers_) out.push_back(t.name);
  return out;
}

std::vector<std::string> ActiveDatabase::DefinitionStatements() const {
  std::vector<std::string> out;
  out.reserve(triggers_.size() + constraints_.size());
  for (const Trigger& t : triggers_) out.push_back(t.ToString());
  for (const std::string& name : constraints_.Names()) {
    out.push_back(constraints_.Find(name)->ToString());
  }
  return out;
}

bool ActiveDatabase::Matches(const Trigger& trigger,
                             const Event& event) const {
  if (trigger.event != event.kind) return false;
  if (!trigger.attr_filter.empty() && trigger.attr_filter != event.attr) {
    return false;
  }
  if (trigger.class_filter.empty()) return true;
  const Object* obj = db_->GetObject(event.subject);
  if (obj == nullptr) return false;
  std::optional<std::string> cls = obj->CurrentClass();
  if (!cls.has_value()) return false;
  // Subclass closure: a trigger `of person` fires for employees.
  return db_->isa().IsSubclassOf(*cls, trigger.class_filter);
}

Result<std::string> ActiveDatabase::Execute(std::string_view statement) {
  std::string_view trimmed = StripWhitespace(statement);
  // The Section 7 definition forms are handled by this facade directly.
  std::string head;
  for (char c : trimmed.substr(0, 11)) {
    if (std::isspace(static_cast<unsigned char>(c))) break;
    head.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (head == "trigger") {
    TCH_RETURN_IF_ERROR(DefineTrigger(trimmed));
    return "trigger " + triggers_.back().name + " defined";
  }
  if (head == "constraint") {
    TCH_RETURN_IF_ERROR(constraints_.Define(trimmed));
    return "constraint " + constraints_.Names().back() + " defined";
  }
  std::vector<std::string> chain;
  TCH_ASSIGN_OR_RETURN(std::string out,
                       ExecuteInternal(trimmed, &chain));
  // `check` additionally evaluates the registered constraints.
  if (head == "check" && constraints_.size() > 0) {
    TCH_RETURN_IF_ERROR(constraints_.CheckAll(*db_));
    out += " (and " + std::to_string(constraints_.size()) +
           " temporal constraints hold)";
  }
  return out;
}

Result<std::string> ActiveDatabase::ExecuteInternal(
    std::string_view statement, std::vector<std::string>* chain) {
  if (chain->size() > max_depth_) {
    std::string path = Join(*chain, " -> ");
    return Status::FailedPrecondition(
        "trigger cascade exceeded depth " + std::to_string(max_depth_) +
        " (non-terminating rule set? chain: " + path + ")");
  }
  TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  TCH_ASSIGN_OR_RETURN(std::string out, interp_.ExecuteStatement(&stmt));

  // Derive the event (if any) from the executed statement.
  Event event;
  switch (stmt.kind) {
    case Statement::Kind::kCreate: {
      event.kind = TriggerEvent::kCreate;
      // CREATE's output is the new oid ("i<n>").
      event.subject = Oid{std::strtoull(out.c_str() + 1, nullptr, 10)};
      break;
    }
    case Statement::Kind::kUpdate:
      event.kind = TriggerEvent::kUpdate;
      event.subject = stmt.update->oid;
      event.attr = stmt.update->attr;
      break;
    case Statement::Kind::kMigrate:
      event.kind = TriggerEvent::kMigrate;
      event.subject = stmt.migrate->oid;
      break;
    case Statement::Kind::kDelete:
      event.kind = TriggerEvent::kDelete;
      event.subject = stmt.del->oid;
      break;
    default:
      return out;  // queries and clock ops fire nothing
  }
  TCH_RETURN_IF_ERROR(Fire(event, chain));
  return out;
}

Status ActiveDatabase::Fire(const Event& event,
                            std::vector<std::string>* chain) {
  // Snapshot the matching set first: actions may define further triggers.
  std::vector<Trigger> matching;
  for (const Trigger& t : triggers_) {
    if (Matches(t, event)) matching.push_back(t);
  }
  for (const Trigger& t : matching) {
    ++fired_;
    std::string action = t.action;
    std::string self = event.subject.ToString();
    size_t pos;
    while ((pos = action.find("$self")) != std::string::npos) {
      action.replace(pos, 5, self);
    }
    chain->push_back(t.name);
    Result<std::string> r = ExecuteInternal(action, chain);
    chain->pop_back();
    if (!r.ok()) {
      // A cascade-depth error already names the whole chain; propagate it
      // unwrapped instead of nesting one frame per level.
      if (r.status().message().find("trigger cascade exceeded") !=
          std::string::npos) {
        return r.status();
      }
      return Status::FailedPrecondition("trigger '" + t.name +
                                        "' action failed: " +
                                        r.status().ToString());
    }
  }
  return Status::OK();
}

}  // namespace tchimera
