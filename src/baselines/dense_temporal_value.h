// The per-instant representation of a temporal value: literally the set of
// pairs (t, f(t)) of Definition 3.5, one entry per instant, before the
// paper's "more efficient" interval-coalesced representation of
// Section 3.2 is applied.
//
// Exists for the representation benchmark (experiment T2a-rep in
// DESIGN.md): it quantifies the storage and scan-time gap between the two
// representations as value run lengths grow.
#ifndef TCHIMERA_BASELINES_DENSE_TEMPORAL_VALUE_H_
#define TCHIMERA_BASELINES_DENSE_TEMPORAL_VALUE_H_

#include <vector>

#include "core/values/temporal_function.h"
#include "core/values/value.h"

namespace tchimera {

class DenseTemporalValue {
 public:
  DenseTemporalValue() = default;

  // Expands `f` over [f.DomainStart(), horizon] into per-instant pairs.
  static DenseTemporalValue FromFunction(const TemporalFunction& f,
                                         TimePoint horizon);

  // Sets f(t) = v for every t in [from, to].
  void DefineRange(TimePoint from, TimePoint to, const Value& v);

  // f(t), or nullptr when undefined. O(log n).
  const Value* At(TimePoint t) const;

  size_t instant_count() const { return entries_.size(); }
  size_t ApproxBytes() const;

  // Converts back to the coalesced representation (equal adjacent values
  // merge into intervals).
  TemporalFunction Coalesced() const;

 private:
  struct Entry {
    TimePoint t;
    Value value;
  };
  std::vector<Entry> entries_;  // sorted by t, unique
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_DENSE_TEMPORAL_VALUE_H_
