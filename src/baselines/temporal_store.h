// Baseline temporal-store variants reproducing the design axes that
// Tables 1 and 2 of the paper compare across systems.
//
// The systems of those tables (OODAPLEX [21,6], TIGUKAT [11], MAD [13],
// OSAM* [19], 3DIS [15], Clifford-Croker [7]) are unavailable, so the
// repository implements the *design choices* that distinguish them as four
// schema-light stores behind one interface:
//
//   AttributeTimestampStore  attribute timestamping, values as functions
//                            from a temporal domain (the paper's choice;
//                            also [21, 6, 7]);
//   ObjectVersionStore       object timestamping, atomic-valued versions
//                            of the whole state (MAD [13], OSAM* [19]);
//   TripleStore              (oid, attribute, value) triples carrying a
//                            time interval and a version number
//                            (3DIS [15]);
//   SnapshotStore            no temporal support at all (plain Chimera) —
//                            the "conventional database" of Section 1.
//
// The stores are deliberately schema-light (objects are attribute bags):
// the benchmarks isolate the *timestamping strategy*, not the schema
// machinery. Every store self-reports its Table 1 / Table 2 row through
// Describe(), which the table-driver bench prints.
#ifndef TCHIMERA_BASELINES_TEMPORAL_STORE_H_
#define TCHIMERA_BASELINES_TEMPORAL_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/temporal/interval.h"
#include "core/values/value.h"

namespace tchimera {

// One row of Tables 1 and 2.
struct ModelDescriptor {
  std::string model_name;
  // Table 1 columns.
  std::string oo_data_model;
  std::string time_structure;
  std::string time_dimension;
  std::string values_and_objects;
  bool class_features = false;
  // Table 2 columns.
  std::string what_is_timestamped;
  std::string temporal_attribute_values;
  std::string kinds_of_attributes;
  bool histories_of_object_types = false;
};

class TemporalStore {
 public:
  using FieldInits = std::vector<std::pair<std::string, Value>>;

  virtual ~TemporalStore() = default;

  virtual ModelDescriptor Describe() const = 0;

  // Creates an object with the given attribute values at instant t;
  // returns its id.
  virtual uint64_t CreateObject(const FieldInits& init, TimePoint t) = 0;
  // Sets attribute `attr` of `id` to `v` from instant t onward.
  virtual Status UpdateAttribute(uint64_t id, const std::string& attr,
                                 Value v, TimePoint t) = 0;
  // The value of `attr` at instant t. Stores without history support fail
  // with TemporalError for past instants.
  virtual Result<Value> ReadAttribute(uint64_t id, const std::string& attr,
                                      TimePoint t) const = 0;
  // The full object state at instant t, as a record value.
  virtual Result<Value> SnapshotObject(uint64_t id, TimePoint t) const = 0;
  // The change history of one attribute as <interval, value> pairs.
  virtual Result<std::vector<std::pair<Interval, Value>>> History(
      uint64_t id, const std::string& attr) const = 0;

  virtual size_t object_count() const = 0;
  // Approximate resident bytes (the Table 2 storage comparison).
  virtual size_t ApproxBytes() const = 0;
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_TEMPORAL_STORE_H_
