#include "baselines/dense_temporal_value.h"

#include <algorithm>

namespace tchimera {

DenseTemporalValue DenseTemporalValue::FromFunction(
    const TemporalFunction& f, TimePoint horizon) {
  DenseTemporalValue out;
  for (const auto& seg : f.segments()) {
    TimePoint from = seg.interval.start();
    TimePoint to = std::min(ResolveInstant(seg.interval.end(), horizon),
                            horizon);
    for (TimePoint t = from; t <= to; ++t) {
      out.entries_.push_back({t, seg.value});
    }
  }
  return out;
}

void DenseTemporalValue::DefineRange(TimePoint from, TimePoint to,
                                     const Value& v) {
  for (TimePoint t = from; t <= to; ++t) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const Entry& e, TimePoint x) { return e.t < x; });
    if (it != entries_.end() && it->t == t) {
      it->value = v;
    } else {
      entries_.insert(it, {t, v});
    }
  }
}

const Value* DenseTemporalValue::At(TimePoint t) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const Entry& e, TimePoint x) { return e.t < x; });
  if (it == entries_.end() || it->t != t) return nullptr;
  return &it->value;
}

size_t DenseTemporalValue::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const Entry& e : entries_) {
    bytes += sizeof(e.t) + e.value.ApproxBytes();
  }
  return bytes;
}

TemporalFunction DenseTemporalValue::Coalesced() const {
  std::vector<TemporalFunction::Segment> segments;
  for (const Entry& e : entries_) {
    if (!segments.empty()) {
      auto& last = segments.back();
      if (last.interval.end() + 1 == e.t && last.value == e.value) {
        last.interval = Interval(last.interval.start(), e.t);
        continue;
      }
    }
    segments.push_back({Interval::At(e.t), e.value});
  }
  Result<TemporalFunction> f = TemporalFunction::Make(std::move(segments));
  return f.ok() ? std::move(f).value() : TemporalFunction();
}

}  // namespace tchimera
