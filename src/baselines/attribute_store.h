// Attribute timestamping with function-valued histories: the paper's own
// design (Table 2 row "Our model": attributes timestamped, temporal
// attribute values are functions from a temporal domain, temporal +
// immutable + non-temporal attributes).
//
// Attributes whose names are passed as `static_attrs` keep only their
// current value (the paper's non-temporal kind); all others keep a full
// coalesced temporal function.
#ifndef TCHIMERA_BASELINES_ATTRIBUTE_STORE_H_
#define TCHIMERA_BASELINES_ATTRIBUTE_STORE_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "baselines/temporal_store.h"
#include "core/values/temporal_function.h"

namespace tchimera {

class AttributeTimestampStore final : public TemporalStore {
 public:
  explicit AttributeTimestampStore(std::set<std::string> static_attrs = {})
      : static_attrs_(std::move(static_attrs)) {}

  ModelDescriptor Describe() const override;

  uint64_t CreateObject(const FieldInits& init, TimePoint t) override;
  Status UpdateAttribute(uint64_t id, const std::string& attr, Value v,
                         TimePoint t) override;
  Result<Value> ReadAttribute(uint64_t id, const std::string& attr,
                              TimePoint t) const override;
  Result<Value> SnapshotObject(uint64_t id, TimePoint t) const override;
  Result<std::vector<std::pair<Interval, Value>>> History(
      uint64_t id, const std::string& attr) const override;

  size_t object_count() const override { return objects_.size(); }
  size_t ApproxBytes() const override;

 private:
  struct StoredObject {
    std::map<std::string, TemporalFunction> temporal;
    std::map<std::string, Value> statics;
  };

  bool IsStaticAttr(const std::string& attr) const {
    return static_attrs_.count(attr) != 0;
  }

  std::set<std::string> static_attrs_;
  std::unordered_map<uint64_t, StoredObject> objects_;
  uint64_t next_id_ = 1;
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_ATTRIBUTE_STORE_H_
