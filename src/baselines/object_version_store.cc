#include "baselines/object_version_store.h"

#include <algorithm>

namespace tchimera {

ModelDescriptor ObjectVersionStore::Describe() const {
  ModelDescriptor d;
  d.model_name = "object versions (MAD / OSAM* style)";
  d.oo_data_model = "MAD / OSAM*";
  d.time_structure = "linear";
  d.time_dimension = "valid";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "objects";
  d.temporal_attribute_values = "atomic valued";
  d.kinds_of_attributes = "temporal + immutable";
  d.histories_of_object_types = false;
  return d;
}

uint64_t ObjectVersionStore::CreateObject(const FieldInits& init,
                                          TimePoint t) {
  std::vector<Value::Field> fields(init.begin(), init.end());
  Result<Value> record = Value::Record(std::move(fields));
  StoredObject obj;
  obj.versions.push_back(
      {t, record.ok() ? std::move(record).value() : Value::Null()});
  uint64_t id = next_id_++;
  objects_.emplace(id, std::move(obj));
  return id;
}

const ObjectVersionStore::Version* ObjectVersionStore::VersionAt(
    const StoredObject& obj, TimePoint t) {
  auto it = std::upper_bound(
      obj.versions.begin(), obj.versions.end(), t,
      [](TimePoint v, const Version& ver) { return v < ver.from; });
  if (it == obj.versions.begin()) return nullptr;
  return &*(it - 1);
}

Status ObjectVersionStore::UpdateAttribute(uint64_t id,
                                           const std::string& attr, Value v,
                                           TimePoint t) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  StoredObject& obj = it->second;
  if (t < obj.versions.back().from) {
    // Object-level timestamping orders whole-state versions by time;
    // retroactive single-attribute updates are not expressible (one more
    // cost of the design — see DESIGN.md).
    return Status::FailedPrecondition(
        "object-version store requires non-decreasing update times");
  }
  // Copy the whole current state — this is the cost the attribute-level
  // design avoids.
  std::vector<Value::Field> fields = obj.versions.back().state.Fields();
  bool found = false;
  for (auto& [name, value] : fields) {
    if (name == attr) {
      value = std::move(v);
      found = true;
      break;
    }
  }
  if (!found) fields.emplace_back(attr, std::move(v));
  Result<Value> record = Value::Record(std::move(fields));
  if (!record.ok()) return record.status();
  if (obj.versions.back().from == t) {
    obj.versions.back().state = std::move(record).value();
  } else {
    obj.versions.push_back({t, std::move(record).value()});
  }
  return Status::OK();
}

Result<Value> ObjectVersionStore::ReadAttribute(uint64_t id,
                                                const std::string& attr,
                                                TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  const Version* ver = VersionAt(it->second, t);
  if (ver == nullptr) return Value::Null();
  const Value* v = ver->state.FieldValue(attr);
  return v == nullptr ? Value::Null() : *v;
}

Result<Value> ObjectVersionStore::SnapshotObject(uint64_t id,
                                                 TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  const Version* ver = VersionAt(it->second, t);
  if (ver == nullptr) {
    return Status::TemporalError("object " + std::to_string(id) +
                                 " did not exist at " + InstantToString(t));
  }
  return ver->state;
}

Result<std::vector<std::pair<Interval, Value>>> ObjectVersionStore::History(
    uint64_t id, const std::string& attr) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  // Scan every version, coalescing runs of equal attribute values — the
  // work object-level timestamping must do to answer an attribute-history
  // question.
  std::vector<std::pair<Interval, Value>> out;
  const auto& versions = it->second.versions;
  for (size_t i = 0; i < versions.size(); ++i) {
    const Value* v = versions[i].state.FieldValue(attr);
    Value value = v == nullptr ? Value::Null() : *v;
    TimePoint from = versions[i].from;
    TimePoint to =
        i + 1 < versions.size() ? versions[i + 1].from - 1 : kNow;
    if (!out.empty() && out.back().second == value &&
        !IsNow(out.back().first.end()) &&
        out.back().first.end() + 1 == from) {
      out.back().first = Interval(out.back().first.start(), to);
    } else {
      out.emplace_back(Interval(from, to), std::move(value));
    }
  }
  return out;
}

size_t ObjectVersionStore::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, obj] : objects_) {
    bytes += sizeof(id) + sizeof(obj);
    for (const Version& v : obj.versions) {
      bytes += sizeof(v.from) + v.state.ApproxBytes();
    }
  }
  return bytes;
}

}  // namespace tchimera
