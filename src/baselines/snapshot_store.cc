#include "baselines/snapshot_store.h"

namespace tchimera {

ModelDescriptor SnapshotStore::Describe() const {
  ModelDescriptor d;
  d.model_name = "snapshot (non-temporal Chimera)";
  d.oo_data_model = "Chimera (base)";
  d.time_structure = "none";
  d.time_dimension = "none";
  d.values_and_objects = "both";
  d.class_features = true;
  d.what_is_timestamped = "nothing";
  d.temporal_attribute_values = "n/a";
  d.kinds_of_attributes = "non-temporal";
  d.histories_of_object_types = false;
  return d;
}

uint64_t SnapshotStore::CreateObject(const FieldInits& init, TimePoint t) {
  StoredObject obj;
  obj.last_write = t;
  for (const auto& [name, v] : init) obj.attrs[name] = v;
  uint64_t id = next_id_++;
  objects_.emplace(id, std::move(obj));
  return id;
}

Status SnapshotStore::UpdateAttribute(uint64_t id, const std::string& attr,
                                      Value v, TimePoint t) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  it->second.attrs[attr] = std::move(v);
  if (t > it->second.last_write) it->second.last_write = t;
  return Status::OK();
}

Result<Value> SnapshotStore::ReadAttribute(uint64_t id,
                                           const std::string& attr,
                                           TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (t < it->second.last_write) {
    return Status::TemporalError(
        "snapshot store cannot answer a past-instant read (asked " +
        InstantToString(t) + ", state is as of " +
        InstantToString(it->second.last_write) + ")");
  }
  auto ait = it->second.attrs.find(attr);
  return ait == it->second.attrs.end() ? Value::Null() : ait->second;
}

Result<Value> SnapshotStore::SnapshotObject(uint64_t id, TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (t < it->second.last_write) {
    return Status::TemporalError(
        "snapshot store cannot reconstruct a past state");
  }
  std::vector<Value::Field> fields(it->second.attrs.begin(),
                                   it->second.attrs.end());
  return Value::Record(std::move(fields));
}

Result<std::vector<std::pair<Interval, Value>>> SnapshotStore::History(
    uint64_t, const std::string& attr) const {
  return Status::TemporalError("snapshot store keeps no history for '" +
                               attr + "'");
}

size_t SnapshotStore::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, obj] : objects_) {
    bytes += sizeof(id) + sizeof(obj.last_write);
    for (const auto& [name, v] : obj.attrs) {
      bytes += name.capacity() + v.ApproxBytes();
    }
  }
  return bytes;
}

}  // namespace tchimera
