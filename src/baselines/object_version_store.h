// Object-level timestamping: time is associated with the entire object
// state, which is copied on every change (the MAD [13] / OSAM* [19] row of
// Table 2: "objects timestamped, atomic valued").
//
// Whole-object snapshots at any instant are a binary search away, but a
// one-attribute update copies the full state, and storage grows with
// (state size x number of changes) instead of (changed attribute size x
// number of changes).
#ifndef TCHIMERA_BASELINES_OBJECT_VERSION_STORE_H_
#define TCHIMERA_BASELINES_OBJECT_VERSION_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/temporal_store.h"

namespace tchimera {

class ObjectVersionStore final : public TemporalStore {
 public:
  ObjectVersionStore() = default;

  ModelDescriptor Describe() const override;

  uint64_t CreateObject(const FieldInits& init, TimePoint t) override;
  Status UpdateAttribute(uint64_t id, const std::string& attr, Value v,
                         TimePoint t) override;
  Result<Value> ReadAttribute(uint64_t id, const std::string& attr,
                              TimePoint t) const override;
  Result<Value> SnapshotObject(uint64_t id, TimePoint t) const override;
  Result<std::vector<std::pair<Interval, Value>>> History(
      uint64_t id, const std::string& attr) const override;

  size_t object_count() const override { return objects_.size(); }
  size_t ApproxBytes() const override;

 private:
  struct Version {
    TimePoint from;  // valid from this instant until the next version
    Value state;     // the full record
  };
  struct StoredObject {
    std::vector<Version> versions;  // sorted by `from`
  };

  // The version live at instant t, or nullptr if t precedes creation.
  static const Version* VersionAt(const StoredObject& obj, TimePoint t);

  std::unordered_map<uint64_t, StoredObject> objects_;
  uint64_t next_id_ = 1;
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_OBJECT_VERSION_STORE_H_
