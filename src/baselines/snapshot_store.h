// The non-temporal baseline: a conventional snapshot database ("the
// content of a database represents a snapshot of the reality in that only
// the current data are recorded", Section 1). Updates overwrite; reads at
// past instants fail — applications would have to manage histories
// themselves, the problem the paper sets out to solve.
#ifndef TCHIMERA_BASELINES_SNAPSHOT_STORE_H_
#define TCHIMERA_BASELINES_SNAPSHOT_STORE_H_

#include <map>
#include <string>
#include <unordered_map>

#include "baselines/temporal_store.h"

namespace tchimera {

class SnapshotStore final : public TemporalStore {
 public:
  SnapshotStore() = default;

  ModelDescriptor Describe() const override;

  uint64_t CreateObject(const FieldInits& init, TimePoint t) override;
  Status UpdateAttribute(uint64_t id, const std::string& attr, Value v,
                         TimePoint t) override;
  // Past-instant reads fail with TemporalError (the instant is compared
  // against the last write time per object).
  Result<Value> ReadAttribute(uint64_t id, const std::string& attr,
                              TimePoint t) const override;
  Result<Value> SnapshotObject(uint64_t id, TimePoint t) const override;
  Result<std::vector<std::pair<Interval, Value>>> History(
      uint64_t id, const std::string& attr) const override;

  size_t object_count() const override { return objects_.size(); }
  size_t ApproxBytes() const override;

 private:
  struct StoredObject {
    std::map<std::string, Value> attrs;
    TimePoint last_write = 0;
  };

  std::unordered_map<uint64_t, StoredObject> objects_;
  uint64_t next_id_ = 1;
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_SNAPSHOT_STORE_H_
