// Triple-based timestamping: the 3DIS [15] row of Table 2. Every fact is
// an (oid, attribute name, attribute value) triple carrying a time
// interval and a version number; an object is whatever shares an oid.
//
// Updates append a triple and close the previous one; reads scan the
// object's triples. Storage carries per-triple framing overhead (oid +
// attribute name + interval + version for every change), the cost the
// function representation amortizes across an attribute's whole history.
#ifndef TCHIMERA_BASELINES_TRIPLE_STORE_H_
#define TCHIMERA_BASELINES_TRIPLE_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/temporal_store.h"

namespace tchimera {

class TripleStore final : public TemporalStore {
 public:
  TripleStore() = default;

  ModelDescriptor Describe() const override;

  uint64_t CreateObject(const FieldInits& init, TimePoint t) override;
  Status UpdateAttribute(uint64_t id, const std::string& attr, Value v,
                         TimePoint t) override;
  Result<Value> ReadAttribute(uint64_t id, const std::string& attr,
                              TimePoint t) const override;
  Result<Value> SnapshotObject(uint64_t id, TimePoint t) const override;
  Result<std::vector<std::pair<Interval, Value>>> History(
      uint64_t id, const std::string& attr) const override;

  size_t object_count() const override { return objects_.size(); }
  size_t ApproxBytes() const override;
  // Total triples stored (diagnostics for the storage bench).
  size_t triple_count() const;

 private:
  struct Triple {
    std::string attr;
    Value value;
    Interval valid;
    uint64_t version;
  };

  std::unordered_map<uint64_t, std::vector<Triple>> objects_;
  uint64_t next_id_ = 1;
  uint64_t next_version_ = 1;
};

}  // namespace tchimera

#endif  // TCHIMERA_BASELINES_TRIPLE_STORE_H_
