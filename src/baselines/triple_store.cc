#include "baselines/triple_store.h"

namespace tchimera {

ModelDescriptor TripleStore::Describe() const {
  ModelDescriptor d;
  d.model_name = "interval triples (3DIS style)";
  d.oo_data_model = "3DIS";
  d.time_structure = "linear";
  d.time_dimension = "valid";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "attributes";
  d.temporal_attribute_values = "sets of triples";
  d.kinds_of_attributes = "temporal";
  d.histories_of_object_types = false;
  return d;
}

uint64_t TripleStore::CreateObject(const FieldInits& init, TimePoint t) {
  std::vector<Triple> triples;
  triples.reserve(init.size());
  for (const auto& [name, v] : init) {
    triples.push_back({name, v, Interval::FromUntilNow(t), next_version_++});
  }
  uint64_t id = next_id_++;
  objects_.emplace(id, std::move(triples));
  return id;
}

Status TripleStore::UpdateAttribute(uint64_t id, const std::string& attr,
                                    Value v, TimePoint t) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  // Close the currently-open triple for this attribute (reverse scan: the
  // open triple is the most recent one).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->attr == attr && rit->valid.is_ongoing()) {
      if (rit->valid.start() > t) {
        // Triples are interval-stamped in time order; retroactive updates
        // are not expressible in this design.
        return Status::FailedPrecondition(
            "triple store requires non-decreasing update times");
      }
      if (rit->valid.start() == t) {
        // Same-instant rewrite: drop the superseded triple.
        it->second.erase(std::next(rit).base());
      } else {
        rit->valid = Interval(rit->valid.start(), t - 1);
      }
      break;
    }
  }
  it->second.push_back(
      {attr, std::move(v), Interval::FromUntilNow(t), next_version_++});
  return Status::OK();
}

Result<Value> TripleStore::ReadAttribute(uint64_t id, const std::string& attr,
                                         TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  for (const Triple& triple : it->second) {
    if (triple.attr == attr && triple.valid.ContainsResolved(t)) {
      return triple.value;
    }
  }
  return Value::Null();
}

Result<Value> TripleStore::SnapshotObject(uint64_t id, TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  std::vector<Value::Field> fields;
  for (const Triple& triple : it->second) {
    if (triple.valid.ContainsResolved(t)) {
      fields.emplace_back(triple.attr, triple.value);
    }
  }
  return Value::Record(std::move(fields));
}

Result<std::vector<std::pair<Interval, Value>>> TripleStore::History(
    uint64_t id, const std::string& attr) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  std::vector<std::pair<Interval, Value>> out;
  for (const Triple& triple : it->second) {
    if (triple.attr == attr) {
      out.emplace_back(triple.valid, triple.value);
    }
  }
  return out;
}

size_t TripleStore::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, triples] : objects_) {
    bytes += sizeof(id);
    for (const Triple& t : triples) {
      bytes += sizeof(Triple) - sizeof(Value) + t.attr.capacity() +
               t.value.ApproxBytes();
    }
  }
  return bytes;
}

size_t TripleStore::triple_count() const {
  size_t n = 0;
  for (const auto& [unused, triples] : objects_) n += triples.size();
  return n;
}

}  // namespace tchimera
