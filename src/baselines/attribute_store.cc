#include "baselines/attribute_store.h"

namespace tchimera {

ModelDescriptor AttributeTimestampStore::Describe() const {
  ModelDescriptor d;
  d.model_name = "T_Chimera (attribute timestamping)";
  d.oo_data_model = "Chimera";
  d.time_structure = "linear";
  d.time_dimension = "valid";
  d.values_and_objects = "both";
  d.class_features = true;
  d.what_is_timestamped = "attributes";
  d.temporal_attribute_values = "functions";
  d.kinds_of_attributes = "temporal + immutable + non-temporal";
  d.histories_of_object_types = true;
  return d;
}

uint64_t AttributeTimestampStore::CreateObject(const FieldInits& init,
                                               TimePoint t) {
  StoredObject obj;
  for (const auto& [name, v] : init) {
    if (IsStaticAttr(name)) {
      obj.statics[name] = v;
    } else {
      TemporalFunction f;
      Status s = f.AssertFrom(t, v);
      (void)s;  // cannot fail on a fresh function
      obj.temporal.emplace(name, std::move(f));
    }
  }
  uint64_t id = next_id_++;
  objects_.emplace(id, std::move(obj));
  return id;
}

Status AttributeTimestampStore::UpdateAttribute(uint64_t id,
                                                const std::string& attr,
                                                Value v, TimePoint t) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (IsStaticAttr(attr)) {
    it->second.statics[attr] = std::move(v);
    return Status::OK();
  }
  return it->second.temporal[attr].AssertFrom(t, std::move(v));
}

Result<Value> AttributeTimestampStore::ReadAttribute(uint64_t id,
                                                     const std::string& attr,
                                                     TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (IsStaticAttr(attr)) {
    auto sit = it->second.statics.find(attr);
    return sit == it->second.statics.end() ? Value::Null() : sit->second;
  }
  auto fit = it->second.temporal.find(attr);
  if (fit == it->second.temporal.end()) return Value::Null();
  const Value* v = fit->second.At(t);
  return v == nullptr ? Value::Null() : *v;
}

Result<Value> AttributeTimestampStore::SnapshotObject(uint64_t id,
                                                      TimePoint t) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  std::vector<Value::Field> fields;
  for (const auto& [name, f] : it->second.temporal) {
    const Value* v = f.At(t);
    fields.emplace_back(name, v == nullptr ? Value::Null() : *v);
  }
  for (const auto& [name, v] : it->second.statics) {
    fields.emplace_back(name, v);
  }
  return Value::Record(std::move(fields));
}

Result<std::vector<std::pair<Interval, Value>>>
AttributeTimestampStore::History(uint64_t id, const std::string& attr) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (IsStaticAttr(attr)) {
    return Status::TemporalError("attribute '" + attr +
                                 "' is non-temporal: no history is kept");
  }
  auto fit = it->second.temporal.find(attr);
  std::vector<std::pair<Interval, Value>> out;
  if (fit != it->second.temporal.end()) {
    for (const auto& seg : fit->second.segments()) {
      out.emplace_back(seg.interval, seg.value);
    }
  }
  return out;
}

size_t AttributeTimestampStore::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, obj] : objects_) {
    bytes += sizeof(id) + sizeof(obj);
    for (const auto& [name, f] : obj.temporal) {
      bytes += name.capacity() + f.ApproxBytes();
    }
    for (const auto& [name, v] : obj.statics) {
      bytes += name.capacity() + v.ApproxBytes();
    }
  }
  return bytes;
}

}  // namespace tchimera
