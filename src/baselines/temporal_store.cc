#include "baselines/temporal_store.h"

// TemporalStore is an interface; this translation unit anchors its vtable.
