# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_project_management "/root/repo/build/examples/project_management")
set_tests_properties(example_project_management PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_employee_migration "/root/repo/build/examples/employee_migration")
set_tests_properties(example_employee_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_active_database "/root/repo/build/examples/active_database")
set_tests_properties(example_active_database PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
