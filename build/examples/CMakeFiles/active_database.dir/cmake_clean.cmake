file(REMOVE_RECURSE
  "CMakeFiles/active_database.dir/active_database.cpp.o"
  "CMakeFiles/active_database.dir/active_database.cpp.o.d"
  "active_database"
  "active_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
