# Empty dependencies file for active_database.
# This may be replaced when dependencies are built.
