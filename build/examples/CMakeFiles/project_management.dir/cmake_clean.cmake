file(REMOVE_RECURSE
  "CMakeFiles/project_management.dir/project_management.cpp.o"
  "CMakeFiles/project_management.dir/project_management.cpp.o.d"
  "project_management"
  "project_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
