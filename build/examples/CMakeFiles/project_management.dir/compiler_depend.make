# Empty compiler generated dependencies file for project_management.
# This may be replaced when dependencies are built.
