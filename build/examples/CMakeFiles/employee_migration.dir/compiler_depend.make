# Empty compiler generated dependencies file for employee_migration.
# This may be replaced when dependencies are built.
