file(REMOVE_RECURSE
  "CMakeFiles/employee_migration.dir/employee_migration.cpp.o"
  "CMakeFiles/employee_migration.dir/employee_migration.cpp.o.d"
  "employee_migration"
  "employee_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
