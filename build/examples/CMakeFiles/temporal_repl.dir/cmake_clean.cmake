file(REMOVE_RECURSE
  "CMakeFiles/temporal_repl.dir/temporal_repl.cpp.o"
  "CMakeFiles/temporal_repl.dir/temporal_repl.cpp.o.d"
  "temporal_repl"
  "temporal_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
