# Empty dependencies file for temporal_repl.
# This may be replaced when dependencies are built.
