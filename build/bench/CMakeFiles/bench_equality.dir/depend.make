# Empty dependencies file for bench_equality.
# This may be replaced when dependencies are built.
