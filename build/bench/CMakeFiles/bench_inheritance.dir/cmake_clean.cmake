file(REMOVE_RECURSE
  "CMakeFiles/bench_inheritance.dir/bench_inheritance.cc.o"
  "CMakeFiles/bench_inheritance.dir/bench_inheritance.cc.o.d"
  "bench_inheritance"
  "bench_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
