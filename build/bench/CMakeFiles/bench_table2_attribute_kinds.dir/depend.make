# Empty dependencies file for bench_table2_attribute_kinds.
# This may be replaced when dependencies are built.
