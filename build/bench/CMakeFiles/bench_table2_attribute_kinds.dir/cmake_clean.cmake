file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_attribute_kinds.dir/bench_table2_attribute_kinds.cc.o"
  "CMakeFiles/bench_table2_attribute_kinds.dir/bench_table2_attribute_kinds.cc.o.d"
  "bench_table2_attribute_kinds"
  "bench_table2_attribute_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_attribute_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
