# Empty dependencies file for bench_table2_timestamping.
# This may be replaced when dependencies are built.
