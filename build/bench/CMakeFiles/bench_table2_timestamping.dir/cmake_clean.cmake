file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_timestamping.dir/bench_table2_timestamping.cc.o"
  "CMakeFiles/bench_table2_timestamping.dir/bench_table2_timestamping.cc.o.d"
  "bench_table2_timestamping"
  "bench_table2_timestamping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_timestamping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
