# Empty compiler generated dependencies file for bench_table2_class_histories.
# This may be replaced when dependencies are built.
