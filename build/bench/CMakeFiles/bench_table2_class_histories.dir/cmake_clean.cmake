file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_class_histories.dir/bench_table2_class_histories.cc.o"
  "CMakeFiles/bench_table2_class_histories.dir/bench_table2_class_histories.cc.o.d"
  "bench_table2_class_histories"
  "bench_table2_class_histories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_class_histories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
