file(REMOVE_RECURSE
  "CMakeFiles/typing_property_test.dir/typing_property_test.cc.o"
  "CMakeFiles/typing_property_test.dir/typing_property_test.cc.o.d"
  "typing_property_test"
  "typing_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typing_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
