# Empty compiler generated dependencies file for typing_property_test.
# This may be replaced when dependencies are built.
