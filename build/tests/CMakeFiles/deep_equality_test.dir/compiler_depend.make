# Empty compiler generated dependencies file for deep_equality_test.
# This may be replaced when dependencies are built.
