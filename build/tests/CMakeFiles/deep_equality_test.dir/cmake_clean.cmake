file(REMOVE_RECURSE
  "CMakeFiles/deep_equality_test.dir/deep_equality_test.cc.o"
  "CMakeFiles/deep_equality_test.dir/deep_equality_test.cc.o.d"
  "deep_equality_test"
  "deep_equality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_equality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
