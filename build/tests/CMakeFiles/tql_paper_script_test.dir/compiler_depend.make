# Empty compiler generated dependencies file for tql_paper_script_test.
# This may be replaced when dependencies are built.
