file(REMOVE_RECURSE
  "CMakeFiles/tql_paper_script_test.dir/tql_paper_script_test.cc.o"
  "CMakeFiles/tql_paper_script_test.dir/tql_paper_script_test.cc.o.d"
  "tql_paper_script_test"
  "tql_paper_script_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tql_paper_script_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
