# Empty compiler generated dependencies file for subtyping_test.
# This may be replaced when dependencies are built.
