# Empty dependencies file for subtyping_test.
# This may be replaced when dependencies are built.
