file(REMOVE_RECURSE
  "CMakeFiles/subtyping_test.dir/subtyping_test.cc.o"
  "CMakeFiles/subtyping_test.dir/subtyping_test.cc.o.d"
  "subtyping_test"
  "subtyping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtyping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
