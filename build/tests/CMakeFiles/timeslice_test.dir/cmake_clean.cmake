file(REMOVE_RECURSE
  "CMakeFiles/timeslice_test.dir/timeslice_test.cc.o"
  "CMakeFiles/timeslice_test.dir/timeslice_test.cc.o.d"
  "timeslice_test"
  "timeslice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeslice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
