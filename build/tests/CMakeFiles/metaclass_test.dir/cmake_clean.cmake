file(REMOVE_RECURSE
  "CMakeFiles/metaclass_test.dir/metaclass_test.cc.o"
  "CMakeFiles/metaclass_test.dir/metaclass_test.cc.o.d"
  "metaclass_test"
  "metaclass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaclass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
