# Empty compiler generated dependencies file for metaclass_test.
# This may be replaced when dependencies are built.
