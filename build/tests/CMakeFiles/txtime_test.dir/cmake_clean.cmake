file(REMOVE_RECURSE
  "CMakeFiles/txtime_test.dir/txtime_test.cc.o"
  "CMakeFiles/txtime_test.dir/txtime_test.cc.o.d"
  "txtime_test"
  "txtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
