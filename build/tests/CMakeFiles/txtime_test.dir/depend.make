# Empty dependencies file for txtime_test.
# This may be replaced when dependencies are built.
