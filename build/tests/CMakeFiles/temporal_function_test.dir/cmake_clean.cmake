file(REMOVE_RECURSE
  "CMakeFiles/temporal_function_test.dir/temporal_function_test.cc.o"
  "CMakeFiles/temporal_function_test.dir/temporal_function_test.cc.o.d"
  "temporal_function_test"
  "temporal_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
