# Empty dependencies file for temporal_function_test.
# This may be replaced when dependencies are built.
