file(REMOVE_RECURSE
  "libtchimera.a"
)
