# Empty compiler generated dependencies file for tchimera.
# This may be replaced when dependencies are built.
