
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attribute_store.cc" "src/CMakeFiles/tchimera.dir/baselines/attribute_store.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/attribute_store.cc.o.d"
  "/root/repo/src/baselines/dense_temporal_value.cc" "src/CMakeFiles/tchimera.dir/baselines/dense_temporal_value.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/dense_temporal_value.cc.o.d"
  "/root/repo/src/baselines/object_version_store.cc" "src/CMakeFiles/tchimera.dir/baselines/object_version_store.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/object_version_store.cc.o.d"
  "/root/repo/src/baselines/snapshot_store.cc" "src/CMakeFiles/tchimera.dir/baselines/snapshot_store.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/snapshot_store.cc.o.d"
  "/root/repo/src/baselines/temporal_store.cc" "src/CMakeFiles/tchimera.dir/baselines/temporal_store.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/temporal_store.cc.o.d"
  "/root/repo/src/baselines/triple_store.cc" "src/CMakeFiles/tchimera.dir/baselines/triple_store.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/baselines/triple_store.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tchimera.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/tchimera.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/common/string_util.cc.o.d"
  "/root/repo/src/constraints/constraint.cc" "src/CMakeFiles/tchimera.dir/constraints/constraint.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/constraints/constraint.cc.o.d"
  "/root/repo/src/core/db/consistency.cc" "src/CMakeFiles/tchimera.dir/core/db/consistency.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/db/consistency.cc.o.d"
  "/root/repo/src/core/db/database.cc" "src/CMakeFiles/tchimera.dir/core/db/database.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/db/database.cc.o.d"
  "/root/repo/src/core/db/equality.cc" "src/CMakeFiles/tchimera.dir/core/db/equality.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/db/equality.cc.o.d"
  "/root/repo/src/core/db/timeslice.cc" "src/CMakeFiles/tchimera.dir/core/db/timeslice.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/db/timeslice.cc.o.d"
  "/root/repo/src/core/object/object.cc" "src/CMakeFiles/tchimera.dir/core/object/object.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/object/object.cc.o.d"
  "/root/repo/src/core/schema/class_def.cc" "src/CMakeFiles/tchimera.dir/core/schema/class_def.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/schema/class_def.cc.o.d"
  "/root/repo/src/core/schema/isa_graph.cc" "src/CMakeFiles/tchimera.dir/core/schema/isa_graph.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/schema/isa_graph.cc.o.d"
  "/root/repo/src/core/schema/refinement.cc" "src/CMakeFiles/tchimera.dir/core/schema/refinement.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/schema/refinement.cc.o.d"
  "/root/repo/src/core/temporal/clock.cc" "src/CMakeFiles/tchimera.dir/core/temporal/clock.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/temporal/clock.cc.o.d"
  "/root/repo/src/core/temporal/interval.cc" "src/CMakeFiles/tchimera.dir/core/temporal/interval.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/temporal/interval.cc.o.d"
  "/root/repo/src/core/temporal/interval_set.cc" "src/CMakeFiles/tchimera.dir/core/temporal/interval_set.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/temporal/interval_set.cc.o.d"
  "/root/repo/src/core/types/subtyping.cc" "src/CMakeFiles/tchimera.dir/core/types/subtyping.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/types/subtyping.cc.o.d"
  "/root/repo/src/core/types/type.cc" "src/CMakeFiles/tchimera.dir/core/types/type.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/types/type.cc.o.d"
  "/root/repo/src/core/types/type_parser.cc" "src/CMakeFiles/tchimera.dir/core/types/type_parser.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/types/type_parser.cc.o.d"
  "/root/repo/src/core/types/type_registry.cc" "src/CMakeFiles/tchimera.dir/core/types/type_registry.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/types/type_registry.cc.o.d"
  "/root/repo/src/core/values/temporal_function.cc" "src/CMakeFiles/tchimera.dir/core/values/temporal_function.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/values/temporal_function.cc.o.d"
  "/root/repo/src/core/values/typing.cc" "src/CMakeFiles/tchimera.dir/core/values/typing.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/values/typing.cc.o.d"
  "/root/repo/src/core/values/value.cc" "src/CMakeFiles/tchimera.dir/core/values/value.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/values/value.cc.o.d"
  "/root/repo/src/core/values/value_parser.cc" "src/CMakeFiles/tchimera.dir/core/values/value_parser.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/values/value_parser.cc.o.d"
  "/root/repo/src/core/values/value_printer.cc" "src/CMakeFiles/tchimera.dir/core/values/value_printer.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/core/values/value_printer.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/tchimera.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/ast.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/tchimera.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/interpreter.cc" "src/CMakeFiles/tchimera.dir/query/interpreter.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/interpreter.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/tchimera.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/tchimera.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/parser.cc.o.d"
  "/root/repo/src/query/token.cc" "src/CMakeFiles/tchimera.dir/query/token.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/token.cc.o.d"
  "/root/repo/src/query/type_checker.cc" "src/CMakeFiles/tchimera.dir/query/type_checker.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/query/type_checker.cc.o.d"
  "/root/repo/src/storage/deserializer.cc" "src/CMakeFiles/tchimera.dir/storage/deserializer.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/storage/deserializer.cc.o.d"
  "/root/repo/src/storage/journal.cc" "src/CMakeFiles/tchimera.dir/storage/journal.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/storage/journal.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "src/CMakeFiles/tchimera.dir/storage/serializer.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/storage/serializer.cc.o.d"
  "/root/repo/src/triggers/trigger.cc" "src/CMakeFiles/tchimera.dir/triggers/trigger.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/triggers/trigger.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/tchimera.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/project_schema.cc" "src/CMakeFiles/tchimera.dir/workload/project_schema.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/workload/project_schema.cc.o.d"
  "/root/repo/src/workload/random.cc" "src/CMakeFiles/tchimera.dir/workload/random.cc.o" "gcc" "src/CMakeFiles/tchimera.dir/workload/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
