// Tests for the common layer: Status, Result<T>, string utilities.
#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace tchimera {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::TypeError("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "TypeError: bad value");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= 10; ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "Unknown")
        << code;
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    TCH_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> err = Status::NotFound("gone");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto source = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto wrapper = [&](bool fail) -> Result<int> {
    TCH_ASSIGN_OR_RETURN(int v, source(fail));
    return v * 2;
  };
  EXPECT_EQ(*wrapper(false), 10);
  EXPECT_EQ(wrapper(true).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("define class", "define"));
  EXPECT_FALSE(StartsWith("def", "define"));
  EXPECT_TRUE(EndsWith("snapshot.tchdb", ".tchdb"));
  EXPECT_FALSE(EndsWith("x", ".tchdb"));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  const std::string tricky = "quote \" back\\slash\nnew\tline";
  std::string unescaped;
  ASSERT_TRUE(UnescapeString(EscapeString(tricky), &unescaped));
  EXPECT_EQ(unescaped, tricky);
  EXPECT_FALSE(UnescapeString("dangling\\", &unescaped));
  EXPECT_FALSE(UnescapeString("bad\\q", &unescaped));
}

TEST(StringUtilTest, IsIdentifier) {
  for (const char* good :
       {"a", "proper-ext", "m-project", "x_1", "_lead", "CamelToo"}) {
    EXPECT_TRUE(IsIdentifier(good)) << good;
  }
  for (const char* bad : {"", "9lead", "-lead", "has space", "dot.ted"}) {
    EXPECT_FALSE(IsIdentifier(bad)) << bad;
  }
}

}  // namespace
}  // namespace tchimera
