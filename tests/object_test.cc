// Tests for objects (Definition 5.1) and the state functions h_state,
// s_state, snapshot, ref (Table 3 / Sections 5.2-5.3).
#include <gtest/gtest.h>

#include "core/object/object.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

TEST(ObjectTest, FreshObjectShape) {
  Object obj(Oid{7}, "project", 20);
  EXPECT_EQ(obj.id(), (Oid{7}));
  EXPECT_EQ(obj.lifespan(), Interval::FromUntilNow(20));
  EXPECT_TRUE(obj.alive());
  EXPECT_EQ(obj.CurrentClass().value(), "project");
  EXPECT_EQ(obj.ClassAt(20).value(), "project");
  EXPECT_FALSE(obj.ClassAt(19).has_value());
  EXPECT_FALSE(obj.IsHistorical());
  EXPECT_EQ(obj.AttributeRecord().ToString(), "()");
}

TEST(ObjectTest, StaticAndTemporalAttributes) {
  Object obj(Oid{1}, "c", 0);
  obj.SetAttribute("objective", Value::String("Implementation"));
  ASSERT_TRUE(obj.AssertTemporalAttribute("name", 0,
                                          Value::String("IDEA")).ok());
  EXPECT_TRUE(obj.IsHistorical());
  EXPECT_TRUE(obj.HasStaticAttributes());
  EXPECT_EQ(obj.Attribute("objective")->AsString(), "Implementation");
  EXPECT_EQ(obj.Attribute("name")->kind(), ValueKind::kTemporal);
  EXPECT_EQ(obj.Attribute("ghost"), nullptr);
}

TEST(ObjectTest, HStateProjectsMeaningfulAttributes) {
  Object obj(Oid{1}, "c", 10);
  ASSERT_TRUE(obj.AssertTemporalAttribute("a", 10, I(1)).ok());
  ASSERT_TRUE(obj.DefineTemporalAttribute("b", Interval(20, 30), I(2)).ok());
  obj.SetAttribute("s", Value::String("x"));
  // At t=15 only `a` is meaningful (Definition 5.2).
  Value at15 = obj.HState(15).value();
  EXPECT_EQ(at15.ToString(), "(a:1)");
  // At t=25 both temporal attributes are meaningful.
  Value at25 = obj.HState(25).value();
  EXPECT_EQ(at25.ToString(), "(a:1,b:2)");
  // Outside the lifespan h_state is undefined.
  EXPECT_FALSE(obj.HState(9).ok());
  // s_state carries exactly the static attributes.
  EXPECT_EQ(obj.SState().ToString(), "(s:'x')");
}

TEST(ObjectTest, SnapshotRules) {
  // All-temporal object: snapshots exist at every instant of the
  // lifespan; undefined attributes project to null.
  Object ht(Oid{1}, "c", 10);
  ASSERT_TRUE(ht.AssertTemporalAttribute("a", 10, I(1)).ok());
  ASSERT_TRUE(ht.DefineTemporalAttribute("b", Interval(20, 30), I(2)).ok());
  EXPECT_EQ(ht.Snapshot(15, 100).value().ToString(), "(a:1,b:null)");
  EXPECT_EQ(ht.Snapshot(25, 100).value().ToString(), "(a:1,b:2)");
  EXPECT_FALSE(ht.Snapshot(5, 100).ok());  // before the lifespan
  // With static attributes, only snapshot(i, now) is defined
  // (Section 5.3).
  Object st(Oid{2}, "c", 10);
  st.SetAttribute("s", Value::String("x"));
  ASSERT_TRUE(st.AssertTemporalAttribute("a", 10, I(3)).ok());
  EXPECT_TRUE(st.Snapshot(100, 100).ok());
  EXPECT_TRUE(st.Snapshot(kNow, 100).ok());
  Result<Value> past = st.Snapshot(50, 100);
  EXPECT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kTemporalError);
}

TEST(ObjectTest, RefCollectsReferencesAtInstant) {
  Object obj(Oid{1}, "c", 0);
  obj.SetAttribute("w", Value::Set({Value::OfOid(Oid{7})}));
  TemporalFunction sub;
  ASSERT_TRUE(sub.Define(Interval(20, 45), Value::OfOid(Oid{4})).ok());
  ASSERT_TRUE(sub.AssertFrom(46, Value::OfOid(Oid{9})).ok());
  obj.SetAttribute("sub", Value::Temporal(sub));
  std::vector<Oid> at30 = obj.ReferencedOids(30);
  EXPECT_EQ(at30, (std::vector<Oid>{Oid{4}, Oid{7}}));
  std::vector<Oid> at50 = obj.ReferencedOids(50);
  EXPECT_EQ(at50, (std::vector<Oid>{Oid{7}, Oid{9}}));
  std::vector<Oid> all = obj.AllReferencedOids();
  EXPECT_EQ(all.size(), 3u);
}

TEST(ObjectTest, MigrationRecordsClassHistory) {
  Object obj(Oid{1}, "employee", 10);
  ASSERT_TRUE(obj.AssertTemporalAttribute("salary", 10, I(100)).ok());
  ASSERT_TRUE(obj.MigrateTo("manager", 30).ok());
  EXPECT_EQ(obj.ClassAt(29).value(), "employee");
  EXPECT_EQ(obj.ClassAt(30).value(), "manager");
  EXPECT_EQ(obj.CurrentClass().value(), "manager");
  // Migrating outside the lifespan is rejected.
  EXPECT_FALSE(obj.MigrateTo("person", 5).ok());
}

TEST(ObjectTest, RetainedTemporalAttributesAfterClose) {
  // Section 5.2: when a temporal attribute is dropped by a migration, its
  // past values are retained but its domain is closed.
  Object obj(Oid{1}, "manager", 10);
  ASSERT_TRUE(obj.AssertTemporalAttribute("dependents", 10, I(2)).ok());
  ASSERT_TRUE(obj.CloseTemporalAttribute("dependents", 29).ok());
  const Value* v = obj.Attribute("dependents");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsTemporal().At(20)->AsInteger(), 2);
  EXPECT_EQ(v->AsTemporal().At(30), nullptr);
  // Closing a static or missing attribute is an error.
  obj.SetAttribute("s", I(1));
  EXPECT_FALSE(obj.CloseTemporalAttribute("s", 5).ok());
  EXPECT_FALSE(obj.CloseTemporalAttribute("ghost", 5).ok());
}

TEST(ObjectTest, NormalizedClassHistoryForStaticObjects) {
  // Definition 5.1: a static object's class history holds the single pair
  // <[now,now], current class>.
  Object st(Oid{1}, "a", 10);
  st.SetAttribute("x", I(1));
  ASSERT_TRUE(st.MigrateTo("b", 20).ok());
  TemporalFunction normalized = st.NormalizedClassHistory(50);
  ASSERT_EQ(normalized.segment_count(), 1u);
  EXPECT_EQ(normalized.segments()[0].interval, Interval::At(50));
  EXPECT_EQ(normalized.segments()[0].value, Value::String("b"));
  // Historical objects keep the full history.
  Object ht(Oid{2}, "a", 10);
  ASSERT_TRUE(ht.AssertTemporalAttribute("x", 10, I(1)).ok());
  ASSERT_TRUE(ht.MigrateTo("b", 20).ok());
  EXPECT_EQ(ht.NormalizedClassHistory(50).segment_count(), 2u);
}

TEST(ObjectTest, CloseLifespanFreezesEverything) {
  Object obj(Oid{1}, "c", 10);
  ASSERT_TRUE(obj.AssertTemporalAttribute("a", 10, I(1)).ok());
  ASSERT_TRUE(obj.CloseLifespan(40).ok());
  EXPECT_FALSE(obj.alive());
  EXPECT_EQ(obj.lifespan(), Interval(10, 40));
  EXPECT_EQ(obj.Attribute("a")->AsTemporal().RawDomain().ToString(),
            "{[10,40]}");
  EXPECT_EQ(obj.class_history().RawDomain().ToString(), "{[10,40]}");
  EXPECT_FALSE(obj.CloseLifespan(50).ok());  // no reincarnation
  // Closing before creation is a temporal error.
  Object late(Oid{2}, "c", 10);
  EXPECT_FALSE(late.CloseLifespan(5).ok());
}

TEST(ObjectTest, TemporalUpdateOnStaticAttributeFails) {
  Object obj(Oid{1}, "c", 0);
  obj.SetAttribute("s", I(1));
  Status s = obj.AssertTemporalAttribute("s", 5, I(2));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tchimera
